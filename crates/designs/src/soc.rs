//! A parameterized RV32IM system-on-chip generator emitting FIRRTL.
//!
//! This is the evaluation substrate standing in for Rocket Chip and BOOM
//! (see DESIGN.md's substitution table). The SoC is a real synchronous
//! processor:
//!
//! * a multi-cycle RV32IM core (fetch/decode/execute in one state,
//!   memory operations and multiply/divide stall for configurable
//!   latencies — the stalls are what give memory-bound workloads their
//!   very low activity factors, exactly the behavior the paper exploits);
//! * word-addressed instruction and data memories (loaded through the
//!   simulator's back door);
//! * a 32×32 register file memory with two combinational read ports;
//! * an MMIO window: `tohost` (terminates simulation via `stop`),
//!   `putchar` (a `printf`), a cycle counter, and per-lane trigger
//!   registers;
//! * `lanes` × `lane_depth` **accelerator lanes**: pipelined hash lanes
//!   that sit idle unless software stores to their trigger address or a
//!   periodic background tick fires — the mostly-idle bulk logic that
//!   dominates real SoCs (FPUs, accelerators, DMA engines) and that
//!   essential signal simulation skips;
//! * performance counters (retired instructions, loads, stores, branches).
//!
//! Three presets approximate the paper's designs by scale:
//! [`SocConfig::r16`], [`SocConfig::r18`], [`SocConfig::boom`] (node and
//! edge counts are reported by the Table I harness; see EXPERIMENTS.md
//! for the measured sizes).

use std::fmt::Write;

/// MMIO base byte address (stores with bit 31 set are MMIO).
pub const MMIO_BASE: u32 = 0x8000_0000;
/// Byte offset of the `tohost` terminator within MMIO.
pub const MMIO_TOHOST: u32 = 0x0;
/// Byte offset of the putchar port within MMIO.
pub const MMIO_PUTCHAR: u32 = 0x4;
/// Byte offset of the first lane trigger; lane `i` is at `+ 4*i`.
pub const MMIO_LANE_BASE: u32 = 0x100;

/// SoC generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocConfig {
    /// Circuit name.
    pub name: String,
    /// Instruction memory size in 32-bit words (power of two).
    pub imem_words: usize,
    /// Data memory size in 32-bit words (power of two).
    pub dmem_words: usize,
    /// Extra stall cycles for near loads/stores (models memory latency).
    pub mem_latency: u32,
    /// Extra stall cycles for *far* accesses (byte addresses with bit 14
    /// set) — a simple cache-miss model that gives pointer-chasing
    /// workloads their memory-bound character.
    pub far_latency: u32,
    /// Extra stall cycles for multiply/divide.
    pub mul_latency: u32,
    /// Number of accelerator lanes.
    pub lanes: usize,
    /// Pipeline stages per lane.
    pub lane_depth: usize,
    /// Arithmetic ops per lane stage (controls node count per stage).
    pub lane_width_ops: usize,
    /// Background tick period exponent: a lane self-activates every
    /// `2^tick_shift` cycles (staggered per lane).
    pub tick_shift: u32,
}

impl SocConfig {
    /// Minimal configuration for tests: a bare core.
    pub fn tiny() -> SocConfig {
        SocConfig {
            name: "soc".into(),
            imem_words: 1 << 12,
            dmem_words: 1 << 12,
            mem_latency: 2,
            far_latency: 12,
            mul_latency: 4,
            lanes: 2,
            lane_depth: 2,
            lane_width_ops: 2,
            tick_shift: 6,
        }
    }

    /// The `r16` analog (Rocket Chip 2016 scale point).
    pub fn r16() -> SocConfig {
        SocConfig {
            name: "r16".into(),
            imem_words: 1 << 14,
            dmem_words: 1 << 14,
            mem_latency: 4,
            far_latency: 30,
            mul_latency: 8,
            lanes: 24,
            lane_depth: 8,
            lane_width_ops: 6,
            tick_shift: 10,
        }
    }

    /// The `r18` analog (Rocket Chip 2018: a notably larger default SoC).
    pub fn r18() -> SocConfig {
        SocConfig {
            name: "r18".into(),
            imem_words: 1 << 14,
            dmem_words: 1 << 14,
            mem_latency: 6,
            far_latency: 48,
            mul_latency: 12,
            lanes: 56,
            lane_depth: 10,
            lane_width_ops: 7,
            tick_shift: 12,
        }
    }

    /// The `boom` analog (the big out-of-order design point).
    pub fn boom() -> SocConfig {
        SocConfig {
            name: "boom".into(),
            imem_words: 1 << 14,
            dmem_words: 1 << 14,
            mem_latency: 4,
            far_latency: 24,
            mul_latency: 10,
            lanes: 104,
            lane_depth: 12,
            lane_width_ops: 8,
            tick_shift: 5,
        }
    }

    fn imem_addr_bits(&self) -> u32 {
        (self.imem_words as f64).log2().ceil() as u32
    }

    fn dmem_addr_bits(&self) -> u32 {
        (self.dmem_words as f64).log2().ceil() as u32
    }
}

/// Generates the SoC as FIRRTL source text.
pub fn generate_soc(config: &SocConfig) -> String {
    let mut out = String::new();
    let w = &mut out;
    let name = &config.name;
    let _ = writeln!(w, "circuit {name} :");
    emit_lane_module(w, config);
    let _ = writeln!(w, "  module {name} :");
    let _ = writeln!(w, "    input clock : Clock");
    let _ = writeln!(w, "    input reset : UInt<1>");
    let _ = writeln!(w, "    output done : UInt<1>");
    let _ = writeln!(w, "    output tohost : UInt<32>");
    let _ = writeln!(w, "    output instret : UInt<32>");
    let _ = writeln!(w, "    output cycle_count : UInt<32>");
    let _ = writeln!(w, "    output lane_checksum : UInt<32>");
    let _ = writeln!(w, "    output perf_loads : UInt<32>");
    let _ = writeln!(w, "    output perf_stores : UInt<32>");
    let _ = writeln!(w, "    output perf_branches : UInt<32>");

    emit_memories(w, config);
    emit_state(w, config);
    emit_fetch_decode(w, config);
    emit_alu(w);
    emit_muldiv(w);
    emit_control(w, config);
    emit_lanes_glue(w, config);
    emit_outputs(w);
    out
}

fn emit_lane_module(w: &mut String, config: &SocConfig) {
    let d = config.lane_depth;
    let _ = writeln!(w, "  module lane :");
    let _ = writeln!(w, "    input clock : Clock");
    let _ = writeln!(w, "    input reset : UInt<1>");
    let _ = writeln!(w, "    input trigger : UInt<1>");
    let _ = writeln!(w, "    input tick : UInt<1>");
    let _ = writeln!(w, "    input data_in : UInt<32>");
    let _ = writeln!(w, "    output acc_out : UInt<32>");
    // Stage 0 latches on trigger or background tick.
    let _ = writeln!(
        w,
        "    reg v0 : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))"
    );
    let _ = writeln!(
        w,
        "    reg val0 : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))"
    );
    let _ = writeln!(w, "    val0 <= or(trigger, tick)");
    let _ = writeln!(w, "    when trigger :");
    let _ = writeln!(w, "      v0 <= data_in");
    let _ = writeln!(w, "    else when tick :");
    let _ = writeln!(w, "      v0 <= xor(v0, UInt<32>(\"h9e3779b9\"))");
    for i in 1..=d {
        let p = i - 1;
        let _ = writeln!(
            w,
            "    reg v{i} : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))"
        );
        let _ = writeln!(
            w,
            "    reg val{i} : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))"
        );
        let _ = writeln!(w, "    val{i} <= val{p}");
        // Only compute when the stage has a valid token (conditional
        // activity the partitioner can exploit).
        let _ = writeln!(w, "    when val{p} :");
        // A chain of mixing operations per stage.
        let mut expr = format!("v{p}");
        for k in 0..config.lane_width_ops {
            let c = 0x85eb_ca6bu64 ^ ((i as u64) << 8) ^ (k as u64);
            expr = match k % 3 {
                0 => format!("bits(add({expr}, UInt<32>({c})), 31, 0)"),
                1 => format!("xor({expr}, bits(shl({expr}, 5), 31, 0))"),
                _ => format!("bits(mul({expr}, UInt<16>({m})), 31, 0)", m = c & 0xffff),
            };
        }
        let _ = writeln!(w, "      v{i} <= {expr}");
    }
    let _ = writeln!(
        w,
        "    reg acc : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))"
    );
    let _ = writeln!(w, "    when val{d} :");
    let _ = writeln!(w, "      acc <= xor(acc, v{d})");
    let _ = writeln!(w, "    acc_out <= acc");
}

fn emit_memories(w: &mut String, config: &SocConfig) {
    let ia = config.imem_addr_bits();
    let da = config.dmem_addr_bits();
    let _ = writeln!(w, "    mem imem :");
    let _ = writeln!(w, "      data-type => UInt<32>");
    let _ = writeln!(w, "      depth => {}", config.imem_words);
    let _ = writeln!(w, "      read-latency => 0");
    let _ = writeln!(w, "      write-latency => 1");
    let _ = writeln!(w, "      reader => fetch");
    let _ = writeln!(w, "      read-under-write => undefined");
    let _ = writeln!(w, "    mem dmem :");
    let _ = writeln!(w, "      data-type => UInt<32>");
    let _ = writeln!(w, "      depth => {}", config.dmem_words);
    let _ = writeln!(w, "      read-latency => 0");
    let _ = writeln!(w, "      write-latency => 1");
    let _ = writeln!(w, "      reader => ld");
    let _ = writeln!(w, "      writer => st");
    let _ = writeln!(w, "      read-under-write => undefined");
    let _ = writeln!(w, "    mem regfile :");
    let _ = writeln!(w, "      data-type => UInt<32>");
    let _ = writeln!(w, "      depth => 32");
    let _ = writeln!(w, "      read-latency => 0");
    let _ = writeln!(w, "      write-latency => 1");
    let _ = writeln!(w, "      reader => rp1 rp2");
    let _ = writeln!(w, "      writer => wp");
    let _ = writeln!(w, "      read-under-write => undefined");
    let _ = writeln!(w, "    imem.fetch.clk <= clock");
    let _ = writeln!(w, "    imem.fetch.en <= UInt<1>(1)");
    let _ = writeln!(w, "    imem.fetch.addr <= bits(pc, {}, 2)", ia + 1);
    let _ = writeln!(w, "    dmem.ld.clk <= clock");
    let _ = writeln!(w, "    dmem.ld.en <= UInt<1>(1)");
    let _ = writeln!(w, "    dmem.ld.addr <= bits(pend_addr, {}, 2)", da + 1);
    let _ = writeln!(w, "    dmem.st.clk <= clock");
    let _ = writeln!(w, "    regfile.rp1.clk <= clock");
    let _ = writeln!(w, "    regfile.rp1.en <= UInt<1>(1)");
    let _ = writeln!(w, "    regfile.rp1.addr <= rs1");
    let _ = writeln!(w, "    regfile.rp2.clk <= clock");
    let _ = writeln!(w, "    regfile.rp2.en <= UInt<1>(1)");
    let _ = writeln!(w, "    regfile.rp2.addr <= rs2");
    let _ = writeln!(w, "    regfile.wp.clk <= clock");
}

fn emit_state(w: &mut String, _config: &SocConfig) {
    // Machine state: pc, FSM state, stall counter, pending writeback.
    for line in [
        "reg pc : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))",
        "reg state : UInt<2>, clock with : (reset => (reset, UInt<2>(0)))",
        "reg wait_ctr : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))",
        "reg pend_addr : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))",
        "reg pend_rd : UInt<5>, clock with : (reset => (reset, UInt<5>(0)))",
        "reg pend_val : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))",
        "reg pend_is_load : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))",
        "reg pend_pc : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))",
        "reg done_r : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))",
        "reg tohost_r : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))",
        "reg instret_r : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))",
        "reg cycle_r : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))",
        "reg perf_loads_r : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))",
        "reg perf_stores_r : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))",
        "reg perf_branches_r : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))",
    ] {
        let _ = writeln!(w, "    {line}");
    }
    let _ = writeln!(w, "    cycle_r <= bits(add(cycle_r, UInt<32>(1)), 31, 0)");
}

fn emit_fetch_decode(w: &mut String, _config: &SocConfig) {
    for line in [
        "node inst = imem.fetch.data",
        "node opcode = bits(inst, 6, 0)",
        "node rd = bits(inst, 11, 7)",
        "node funct3 = bits(inst, 14, 12)",
        "node rs1 = bits(inst, 19, 15)",
        "node rs2 = bits(inst, 24, 20)",
        "node funct7 = bits(inst, 31, 25)",
        // Immediates, sign-extended through SInt pads.
        "node imm_i = asUInt(pad(asSInt(bits(inst, 31, 20)), 32))",
        "node imm_s = asUInt(pad(asSInt(cat(bits(inst, 31, 25), bits(inst, 11, 7))), 32))",
        "node imm_b = asUInt(pad(asSInt(cat(bits(inst, 31, 31), cat(bits(inst, 7, 7), cat(bits(inst, 30, 25), cat(bits(inst, 11, 8), UInt<1>(0)))))), 32))",
        "node imm_u = cat(bits(inst, 31, 12), UInt<12>(0))",
        "node imm_j = asUInt(pad(asSInt(cat(bits(inst, 31, 31), cat(bits(inst, 19, 12), cat(bits(inst, 20, 20), cat(bits(inst, 30, 21), UInt<1>(0)))))), 32))",
        // Register reads with x0 hardwired to zero.
        "node rs1_raw = regfile.rp1.data",
        "node rs2_raw = regfile.rp2.data",
        "node rs1_val = mux(eq(rs1, UInt<5>(0)), UInt<32>(0), rs1_raw)",
        "node rs2_val = mux(eq(rs2, UInt<5>(0)), UInt<32>(0), rs2_raw)",
        // Opcode classes.
        "node is_op = eq(opcode, UInt<7>(\"b0110011\"))",
        "node is_op_imm = eq(opcode, UInt<7>(\"b0010011\"))",
        "node is_load = eq(opcode, UInt<7>(\"b0000011\"))",
        "node is_store = eq(opcode, UInt<7>(\"b0100011\"))",
        "node is_branch = eq(opcode, UInt<7>(\"b1100011\"))",
        "node is_lui = eq(opcode, UInt<7>(\"b0110111\"))",
        "node is_auipc = eq(opcode, UInt<7>(\"b0010111\"))",
        "node is_jal = eq(opcode, UInt<7>(\"b1101111\"))",
        "node is_jalr = eq(opcode, UInt<7>(\"b1100111\"))",
        "node is_mext = and(is_op, eq(funct7, UInt<7>(1)))",
    ] {
        let _ = writeln!(w, "    {line}");
    }
}

fn emit_alu(w: &mut String) {
    for line in [
        "node alu_b = mux(is_op_imm, imm_i, rs2_val)",
        "node shamt = bits(alu_b, 4, 0)",
        // funct7 bit 5 selects sub/sra for register ops; for immediates it
        // selects srai only (addi has no subtraction form).
        "node alt = bits(funct7, 5, 5)",
        "node add_res = bits(add(rs1_val, alu_b), 31, 0)",
        "node sub_res = bits(sub(rs1_val, alu_b), 31, 0)",
        "node sll_res = bits(dshl(rs1_val, shamt), 31, 0)",
        "node slt_res = pad(lt(asSInt(rs1_val), asSInt(alu_b)), 32)",
        "node sltu_res = pad(lt(rs1_val, alu_b), 32)",
        "node xor_res = xor(rs1_val, alu_b)",
        "node srl_res = dshr(rs1_val, shamt)",
        "node sra_res = asUInt(dshr(asSInt(rs1_val), shamt))",
        "node or_res = or(rs1_val, alu_b)",
        "node and_res = and(rs1_val, alu_b)",
        "node use_sub = and(is_op, alt)",
        "node f3_0 = mux(use_sub, sub_res, add_res)",
        "node f3_5 = mux(alt, sra_res, srl_res)",
        // funct3-indexed result.
        "node alu_lo = mux(eq(funct3, UInt<3>(0)), f3_0, mux(eq(funct3, UInt<3>(1)), sll_res, mux(eq(funct3, UInt<3>(2)), slt_res, sltu_res)))",
        "node alu_hi = mux(eq(funct3, UInt<3>(4)), xor_res, mux(eq(funct3, UInt<3>(5)), f3_5, mux(eq(funct3, UInt<3>(6)), or_res, and_res)))",
        "node alu_res = mux(lt(funct3, UInt<3>(4)), alu_lo, alu_hi)",
        // Branch conditions.
        "node cmp_eq = eq(rs1_val, rs2_val)",
        "node cmp_lt = lt(asSInt(rs1_val), asSInt(rs2_val))",
        "node cmp_ltu = lt(rs1_val, rs2_val)",
        "node br_taken_raw = mux(eq(funct3, UInt<3>(0)), cmp_eq, mux(eq(funct3, UInt<3>(1)), not(cmp_eq), mux(eq(funct3, UInt<3>(4)), cmp_lt, mux(eq(funct3, UInt<3>(5)), not(cmp_lt), mux(eq(funct3, UInt<3>(6)), cmp_ltu, not(cmp_ltu))))))",
        "node br_taken = bits(br_taken_raw, 0, 0)",
        // Targets.
        "node pc_plus4 = bits(add(pc, UInt<32>(4)), 31, 0)",
        "node br_target = bits(add(pc, imm_b), 31, 0)",
        "node jal_target = bits(add(pc, imm_j), 31, 0)",
        "node jalr_target = and(bits(add(rs1_val, imm_i), 31, 0), UInt<32>(\"hfffffffe\"))",
        "node mem_addr = bits(add(rs1_val, mux(is_store, imm_s, imm_i)), 31, 0)",
        "node is_mmio = bits(mem_addr, 31, 31)",
    ] {
        let _ = writeln!(w, "    {line}");
    }
}

fn emit_muldiv(w: &mut String) {
    for line in [
        "node sprod = asUInt(mul(asSInt(rs1_val), asSInt(rs2_val)))",
        "node uprod = mul(rs1_val, rs2_val)",
        "node mul_lo = bits(uprod, 31, 0)",
        "node mulh_res = bits(sprod, 63, 32)",
        "node mulhu_res = bits(uprod, 63, 32)",
        // RISC-V semantics: x/0 = -1, x%0 = x.
        "node div_zero = eq(rs2_val, UInt<32>(0))",
        "node sdiv = asUInt(div(asSInt(rs1_val), asSInt(rs2_val)))",
        "node udiv = div(rs1_val, rs2_val)",
        "node srem = asUInt(rem(asSInt(rs1_val), asSInt(rs2_val)))",
        "node urem = rem(rs1_val, rs2_val)",
        "node div_res = mux(div_zero, UInt<32>(\"hffffffff\"), bits(sdiv, 31, 0))",
        "node divu_res = mux(div_zero, UInt<32>(\"hffffffff\"), bits(udiv, 31, 0))",
        "node rem_res = mux(div_zero, rs1_val, bits(srem, 31, 0))",
        "node remu_res = mux(div_zero, rs1_val, bits(urem, 31, 0))",
        "node mext_res = mux(eq(funct3, UInt<3>(0)), mul_lo, mux(eq(funct3, UInt<3>(1)), mulh_res, mux(eq(funct3, UInt<3>(3)), mulhu_res, mux(eq(funct3, UInt<3>(4)), div_res, mux(eq(funct3, UInt<3>(5)), divu_res, mux(eq(funct3, UInt<3>(6)), rem_res, remu_res))))))",
    ] {
        let _ = writeln!(w, "    {line}");
    }
}

fn emit_control(w: &mut String, config: &SocConfig) {
    let da = config.dmem_addr_bits();
    let mem_lat = config.mem_latency;
    let far_lat = config.far_latency;
    let mul_lat = config.mul_latency;
    for line in [
        "node in_exec = eq(state, UInt<2>(0))",
        "node in_mem = eq(state, UInt<2>(1))",
        "node in_mul = eq(state, UInt<2>(2))",
        "node running = and(in_exec, not(done_r))",
        // Default writeback value by instruction class.
        "node wb_alu = mux(is_lui, imm_u, mux(is_auipc, bits(add(pc, imm_u), 31, 0), mux(or(is_jal, is_jalr), pc_plus4, alu_res)))",
        // Next pc for non-stalling instructions.
        "node pc_branch = mux(br_taken, br_target, pc_plus4)",
        "node next_pc = mux(is_jal, jal_target, mux(is_jalr, jalr_target, mux(is_branch, pc_branch, pc_plus4)))",
        "node issue_mem = and(running, or(is_load, is_store))",
        "node issue_mul = and(running, is_mext)",
        "node plain_wb = and(running, not(or(issue_mem, issue_mul)))",
        // MMIO decode (stores only).
        "node store_fire = and(issue_mem, is_store)",
        "node mmio_store = and(store_fire, bits(is_mmio, 0, 0))",
        "node mmio_off = bits(mem_addr, 15, 0)",
        "node tohost_fire = and(mmio_store, eq(mmio_off, UInt<16>(0)))",
        "node putchar_fire = and(mmio_store, eq(mmio_off, UInt<16>(4)))",
        // Far accesses (bit 14 of the byte address) model cache misses.
        "node is_far = bits(mem_addr, 14, 14)",
    ] {
        let _ = writeln!(w, "    {line}");
    }

    // Register file write port: plain ALU writeback now, or pending
    // load/mul writeback when the stall finishes.
    for line in [
        "node stall_done = and(or(in_mem, in_mul), eq(wait_ctr, UInt<8>(0)))",
        "node pend_wb = and(stall_done, or(pend_is_load, in_mul))",
        "node pend_data = mux(pend_is_load, dmem.ld.data, pend_val)",
        "node wb_rd = mux(in_exec, rd, pend_rd)",
        "node wb_data = mux(in_exec, wb_alu, pend_data)",
        "node wants_rd = or(or(is_op, is_op_imm), or(or(is_lui, is_auipc), or(is_jal, is_jalr)))",
        "node wb_en_exec = and(plain_wb, wants_rd)",
        "node wb_en = and(or(wb_en_exec, pend_wb), neq(wb_rd, UInt<5>(0)))",
        "regfile.wp.en <= wb_en",
        "regfile.wp.addr <= wb_rd",
        "regfile.wp.data <= wb_data",
        "regfile.wp.mask <= UInt<1>(1)",
    ] {
        let _ = writeln!(w, "    {line}");
    }

    // Data memory store port: fires in the issue cycle (the stall models
    // latency; the write itself is synchronous).
    let _ = writeln!(
        w,
        "    node dmem_store = and(store_fire, not(bits(is_mmio, 0, 0)))"
    );
    let _ = writeln!(w, "    dmem.st.en <= dmem_store");
    let _ = writeln!(w, "    dmem.st.addr <= bits(mem_addr, {}, 2)", da + 1);
    let _ = writeln!(w, "    dmem.st.data <= rs2_val");
    let _ = writeln!(w, "    dmem.st.mask <= UInt<1>(1)");

    // The FSM.
    let _ = writeln!(w, "    when running :");
    let _ = writeln!(w, "      when issue_mem :");
    let _ = writeln!(w, "        state <= UInt<2>(1)");
    let _ = writeln!(
        w,
        "        wait_ctr <= mux(bits(is_far, 0, 0), UInt<8>({far_lat}), UInt<8>({mem_lat}))"
    );
    let _ = writeln!(w, "        pend_addr <= mem_addr");
    let _ = writeln!(w, "        pend_rd <= rd");
    let _ = writeln!(w, "        pend_is_load <= is_load");
    let _ = writeln!(w, "        pend_pc <= pc_plus4");
    let _ = writeln!(
        w,
        "        perf_loads_r <= bits(add(perf_loads_r, pad(is_load, 32)), 31, 0)"
    );
    let _ = writeln!(
        w,
        "        perf_stores_r <= bits(add(perf_stores_r, pad(is_store, 32)), 31, 0)"
    );
    let _ = writeln!(w, "      else when issue_mul :");
    let _ = writeln!(w, "        state <= UInt<2>(2)");
    let _ = writeln!(w, "        wait_ctr <= UInt<8>({mul_lat})");
    let _ = writeln!(w, "        pend_val <= mext_res");
    let _ = writeln!(w, "        pend_rd <= rd");
    let _ = writeln!(w, "        pend_is_load <= UInt<1>(0)");
    let _ = writeln!(w, "        pend_pc <= pc_plus4");
    let _ = writeln!(w, "      else :");
    let _ = writeln!(w, "        pc <= next_pc");
    let _ = writeln!(
        w,
        "        instret_r <= bits(add(instret_r, UInt<32>(1)), 31, 0)"
    );
    let _ = writeln!(
        w,
        "        perf_branches_r <= bits(add(perf_branches_r, pad(is_branch, 32)), 31, 0)"
    );
    let _ = writeln!(w, "    else :");
    let _ = writeln!(w, "      when stall_done :");
    let _ = writeln!(w, "        state <= UInt<2>(0)");
    let _ = writeln!(w, "        pc <= pend_pc");
    let _ = writeln!(
        w,
        "        instret_r <= bits(add(instret_r, UInt<32>(1)), 31, 0)"
    );
    let _ = writeln!(w, "      else :");
    let _ = writeln!(
        w,
        "        wait_ctr <= bits(sub(wait_ctr, UInt<8>(1)), 7, 0)"
    );

    // MMIO effects.
    let _ = writeln!(w, "    when tohost_fire :");
    let _ = writeln!(w, "      done_r <= UInt<1>(1)");
    let _ = writeln!(w, "      tohost_r <= rs2_val");
    let _ = writeln!(
        w,
        "    printf(clock, putchar_fire, \"%c\", bits(rs2_val, 7, 0))"
    );
    let _ = writeln!(w, "    stop(clock, tohost_fire, 0)");
}

fn emit_lanes_glue(w: &mut String, config: &SocConfig) {
    let shift = config.tick_shift;
    let hi = shift - 1;
    for i in 0..config.lanes {
        let off = MMIO_LANE_BASE as u64 + 4 * i as u64;
        let phase = (i as u64 * 37) & ((1u64 << shift) - 1);
        let _ = writeln!(w, "    inst lane{i} of lane");
        let _ = writeln!(w, "    lane{i}.clock <= clock");
        let _ = writeln!(w, "    lane{i}.reset <= reset");
        let _ = writeln!(
            w,
            "    lane{i}.trigger <= and(mmio_store, eq(mmio_off, UInt<16>({off})))"
        );
        let _ = writeln!(
            w,
            "    lane{i}.tick <= eq(bits(cycle_r, {hi}, 0), UInt<{shift}>({phase}))"
        );
        let _ = writeln!(w, "    lane{i}.data_in <= rs2_val");
    }
    let mut checksum = String::from("UInt<32>(0)");
    for i in 0..config.lanes {
        checksum = format!("xor({checksum}, lane{i}.acc_out)");
    }
    let _ = writeln!(w, "    node lanes_xor = {checksum}");
}

fn emit_outputs(w: &mut String) {
    for line in [
        "done <= done_r",
        "tohost <= tohost_r",
        "instret <= instret_r",
        "cycle_count <= cycle_r",
        "lane_checksum <= lanes_xor",
        "perf_loads <= perf_loads_r",
        "perf_stores <= perf_stores_r",
        "perf_branches <= perf_branches_r",
    ] {
        let _ = writeln!(w, "    {line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essent_netlist::Netlist;

    fn build(config: &SocConfig) -> Netlist {
        let src = generate_soc(config);
        let parsed =
            essent_firrtl::parse(&src).unwrap_or_else(|e| panic!("{e}\n--- source ---\n{src}"));
        let lowered = essent_firrtl::passes::lower(parsed).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    #[test]
    fn tiny_soc_builds() {
        let n = build(&SocConfig::tiny());
        assert!(n.signal_count() > 200, "got {}", n.signal_count());
        assert!(n.find_mem("imem").is_some());
        assert!(n.find_mem("dmem").is_some());
        assert!(n.find_mem("regfile").is_some());
        assert!(n.find("done").is_some());
    }

    #[test]
    fn presets_scale_in_size() {
        let tiny = build(&SocConfig::tiny()).signal_count();
        let r16 = build(&SocConfig::r16()).signal_count();
        let r18 = build(&SocConfig::r18()).signal_count();
        assert!(tiny < r16, "{tiny} < {r16}");
        assert!(r16 < r18, "{r16} < {r18}");
    }
}
