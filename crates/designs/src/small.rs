//! Small generated designs used by examples, tests, and micro-benchmarks.

use std::fmt::Write;

/// A `width`-bit free-running counter with synchronous reset.
pub fn counter(width: u32) -> String {
    format!(
        "circuit counter :\n  module counter :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<{width}>\n    reg r : UInt<{width}>, clock with : (reset => (reset, UInt<{width}>(0)))\n    r <= tail(add(r, UInt<{width}>(1)), 1)\n    q <= r\n"
    )
}

/// A `depth`-stage shift register of `width`-bit values with enable.
pub fn shift_register(width: u32, depth: usize) -> String {
    let mut body = String::new();
    for i in 0..depth {
        let _ = writeln!(body, "    reg s{i} : UInt<{width}>, clock");
    }
    let _ = writeln!(body, "    when en :");
    let _ = writeln!(body, "      s0 <= din");
    for i in 1..depth {
        let _ = writeln!(body, "      s{i} <= s{}", i - 1);
    }
    let _ = writeln!(body, "    dout <= s{}", depth - 1);
    format!(
        "circuit shiftreg :\n  module shiftreg :\n    input clock : Clock\n    input en : UInt<1>\n    input din : UInt<{width}>\n    output dout : UInt<{width}>\n{body}"
    )
}

/// Euclid's GCD datapath: load two operands with `start`, read the result
/// when `done` rises. A classic low-activity design — once the result
/// converges, nothing toggles until the next `start`.
pub fn gcd(width: u32) -> String {
    format!(
        "circuit gcd :\n  module gcd :\n    input clock : Clock\n    input reset : UInt<1>\n    input start : UInt<1>\n    input a : UInt<{width}>\n    input b : UInt<{width}>\n    output result : UInt<{width}>\n    output done : UInt<1>\n    reg x : UInt<{width}>, clock with : (reset => (reset, UInt<{width}>(0)))\n    reg y : UInt<{width}>, clock with : (reset => (reset, UInt<{width}>(0)))\n    when start :\n      x <= a\n      y <= b\n    else :\n      when neq(y, UInt<{width}>(0)) :\n        when gt(x, y) :\n          x <= tail(sub(x, y), 1)\n        else :\n          y <= tail(sub(y, x), 1)\n    result <= x\n    done <= eq(y, UInt<{width}>(0))\n"
    )
}

/// A direct-form FIR filter with `taps` constant coefficients.
pub fn fir(width: u32, taps: usize) -> String {
    let mut body = String::new();
    for i in 0..taps {
        let _ = writeln!(
            body,
            "    reg z{i} : UInt<{width}>, clock with : (reset => (reset, UInt<{width}>(0)))"
        );
    }
    let _ = writeln!(body, "    when en :");
    let _ = writeln!(body, "      z0 <= x");
    for i in 1..taps {
        let _ = writeln!(body, "      z{i} <= z{}", i - 1);
    }
    // y = sum coeff_i * z_i, coefficients 1, 3, 5, ...
    let mut acc = "mul(z0, UInt<8>(1))".to_string();
    for i in 1..taps {
        let c = (2 * i + 1) % 251;
        acc = format!("add({acc}, mul(z{i}, UInt<8>({c})))");
    }
    let _ = writeln!(body, "    node sum = {acc}");
    let _ = writeln!(body, "    y <= bits(sum, {}, 0)", width - 1);
    format!(
        "circuit fir :\n  module fir :\n    input clock : Clock\n    input reset : UInt<1>\n    input en : UInt<1>\n    input x : UInt<{width}>\n    output y : UInt<{width}>\n{body}"
    )
}

/// A direct-mapped cache model: `sets` one-word lines with tag matching,
/// combinational hit detection, and single-cycle fill from a backing
/// request port. A classic mixed-activity design: the tag/data arrays
/// only toggle on misses.
pub fn cache(sets: usize, tag_bits: u32) -> String {
    let idx_bits = (sets as f64).log2().ceil().max(1.0) as u32;
    let addr_bits = idx_bits + tag_bits;
    let mut body = String::new();
    let _ = writeln!(body, "    mem tags :");
    let _ = writeln!(body, "      data-type => UInt<{}>", tag_bits + 1); // +valid bit
    let _ = writeln!(body, "      depth => {sets}");
    let _ = writeln!(body, "      read-latency => 0");
    let _ = writeln!(body, "      write-latency => 1");
    let _ = writeln!(body, "      reader => r");
    let _ = writeln!(body, "      writer => w");
    let _ = writeln!(body, "    mem data :");
    let _ = writeln!(body, "      data-type => UInt<32>");
    let _ = writeln!(body, "      depth => {sets}");
    let _ = writeln!(body, "      read-latency => 0");
    let _ = writeln!(body, "      write-latency => 1");
    let _ = writeln!(body, "      reader => r");
    let _ = writeln!(body, "      writer => w");
    let hi = addr_bits - 1;
    let tag_lo = idx_bits;
    for line in [
        format!("node idx = bits(addr, {}, 0)", idx_bits - 1),
        format!("node tag = bits(addr, {hi}, {tag_lo})"),
        "tags.r.clk <= clock".into(),
        "tags.r.en <= UInt<1>(1)".into(),
        "tags.r.addr <= idx".into(),
        "data.r.clk <= clock".into(),
        "data.r.en <= UInt<1>(1)".into(),
        "data.r.addr <= idx".into(),
        format!("node entry_valid = bits(tags.r.data, {tag_bits}, {tag_bits})"),
        format!("node entry_tag = bits(tags.r.data, {}, 0)", tag_bits - 1),
        "node tag_match = and(entry_valid, eq(entry_tag, tag))".into(),
        "node is_hit = and(lookup_en, bits(tag_match, 0, 0))".into(),
        "hit <= is_hit".into(),
        "rdata <= data.r.data".into(),
        // Fill path: on fill_en, install (tag, fill_data) at idx.
        "tags.w.clk <= clock".into(),
        "tags.w.en <= fill_en".into(),
        "tags.w.addr <= idx".into(),
        "tags.w.data <= cat(UInt<1>(1), tag)".to_string(),
        "tags.w.mask <= UInt<1>(1)".into(),
        "data.w.clk <= clock".into(),
        "data.w.en <= fill_en".into(),
        "data.w.addr <= idx".into(),
        "data.w.data <= fill_data".into(),
        "data.w.mask <= UInt<1>(1)".into(),
    ] {
        let _ = writeln!(body, "    {line}");
    }
    format!(
        "circuit cache :\n  module cache :\n    input clock : Clock\n    input reset : UInt<1>\n    input lookup_en : UInt<1>\n    input addr : UInt<{addr_bits}>\n    input fill_en : UInt<1>\n    input fill_data : UInt<32>\n    output hit : UInt<1>\n    output rdata : UInt<32>\n{body}"
    )
}

/// A 32-bit Galois LFSR (taps 32, 22, 2, 1), handy as a busy design with
/// near-total activity — the opposite regime from [`gcd`].
pub fn lfsr() -> String {
    "circuit lfsr :\n  module lfsr :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<32>\n    reg r : UInt<32>, clock with : (reset => (reset, UInt<32>(1)))\n    node lsb = bits(r, 0, 0)\n    node shifted = pad(shr(r, 1), 32)\n    node tapped = xor(shifted, mux(lsb, UInt<32>(\"h80200003\"), UInt<32>(0)))\n    r <= tapped\n    q <= r\n".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use essent_netlist::Netlist;

    fn build(src: &str) -> Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    #[test]
    fn all_small_designs_build() {
        for src in [
            counter(8),
            counter(64),
            shift_register(16, 4),
            gcd(16),
            fir(16, 5),
            lfsr(),
            cache(16, 8),
        ] {
            let n = build(&src);
            assert!(n.signal_count() > 0);
        }
    }

    #[test]
    fn gcd_computes() {
        use essent_bits::Bits;
        use essent_netlist::interp::Interpreter;
        let n = build(&gcd(16));
        let mut sim = Interpreter::new(&n);
        sim.poke("reset", Bits::from_u64(0, 1));
        sim.poke("start", Bits::from_u64(1, 1));
        sim.poke("a", Bits::from_u64(48, 16));
        sim.poke("b", Bits::from_u64(36, 16));
        sim.step(1);
        sim.poke("start", Bits::from_u64(0, 1));
        for _ in 0..64 {
            sim.step(1);
            if sim.peek("done").to_u64() == Some(1) {
                break;
            }
        }
        assert_eq!(sim.peek("done").to_u64(), Some(1));
        assert_eq!(sim.peek("result").to_u64(), Some(12));
    }

    #[test]
    fn cache_hits_after_fill() {
        use essent_bits::Bits;
        use essent_netlist::interp::Interpreter;
        let n = build(&cache(16, 8));
        let mut sim = Interpreter::new(&n);
        let addr = 0b1010_1010_0101u64; // tag 0xAA, index 5
        sim.poke("addr", Bits::from_u64(addr, 12));
        sim.poke("lookup_en", Bits::from_u64(1, 1));
        sim.step(1);
        assert_eq!(sim.peek("hit").to_u64(), Some(0), "cold cache misses");
        // Fill the line, then look it up again.
        sim.poke("fill_en", Bits::from_u64(1, 1));
        sim.poke("fill_data", Bits::from_u64(0xDEAD, 32));
        sim.step(1);
        sim.poke("fill_en", Bits::from_u64(0, 1));
        sim.step(1);
        assert_eq!(sim.peek("hit").to_u64(), Some(1), "filled line hits");
        assert_eq!(sim.peek("rdata").to_u64(), Some(0xDEAD));
        // A different tag at the same index conflicts (miss).
        sim.poke("addr", Bits::from_u64(0b0101_0101_0101, 12));
        sim.step(1);
        assert_eq!(sim.peek("hit").to_u64(), Some(0), "conflicting tag misses");
    }

    #[test]
    fn shift_register_delays() {
        use essent_bits::Bits;
        use essent_netlist::interp::Interpreter;
        let n = build(&shift_register(8, 3));
        let mut sim = Interpreter::new(&n);
        sim.poke("en", Bits::from_u64(1, 1));
        for v in [7u64, 8, 9, 10] {
            sim.poke("din", Bits::from_u64(v, 8));
            sim.step(1);
        }
        // Peeks observe cycle 3's evaluation, which sees the state
        // committed at the end of cycle 2: s2 holds the first value.
        assert_eq!(sim.peek("dout").to_u64(), Some(7));
    }
}
