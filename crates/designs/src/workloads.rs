//! The three software workloads of the paper's evaluation (Table II),
//! written in RV32IM assembly, plus a runner harness.
//!
//! * [`dhrystone`] — a Dhrystone-like mixed-integer benchmark: record
//!   copies, string-ish word loops, function calls, and branchy control;
//! * [`matmul`] — dense integer matrix multiplication (compute-bound,
//!   heavy `mul` use);
//! * [`pchase`] — a pointer-chasing microbenchmark: a permutation cycle
//!   of dependent loads, so the core spends most cycles stalled on
//!   memory. This is the paper's lowest-activity workload (8.4M cycles on
//!   r16 versus 489K for dhrystone at equal work scale).
//!
//! Every program terminates by storing a checksum to the `tohost` MMIO
//! address, which fires the design's `stop`.

use crate::asm::{assemble, AsmError};
use essent_bits::Bits;
use essent_sim::Simulator;

/// A named, assembled workload.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: String,
    pub words: Vec<u32>,
}

/// Common prologue: `t6` holds the MMIO base.
const PROLOGUE: &str = "    lui t6, 0x80000\n";

/// Common epilogue: store `a0` to tohost and spin.
const EPILOGUE: &str = "
    sw a0, 0(t6)        # tohost <- checksum; fires stop()
halt:
    j halt
";

/// Dhrystone-like mixed integer benchmark.
///
/// Each iteration copies a 16-word record, sums it, runs a branchy
/// classification over the sum, and calls a small leaf function — the mix
/// of loads, stores, ALU ops, calls, and branches that gives Dhrystone
/// its moderate activity factor.
pub fn dhrystone(iterations: u32) -> Result<Workload, AsmError> {
    let source = format!(
        "{PROLOGUE}
    li s0, {iterations}    # loop counter
    li s1, 0             # checksum
    li s2, 0x100         # record A base
    li s3, 0x200         # record B base

    # initialize record A with i*3+1
    li t0, 0
init:
    slli t1, t0, 2
    add t1, t1, s2
    slli t2, t0, 1
    add t2, t2, t0
    addi t2, t2, 1
    sw t2, 0(t1)
    addi t0, t0, 1
    li t3, 16
    blt t0, t3, init

outer:
    # copy A -> B (record assignment)
    li t0, 0
copy:
    slli t1, t0, 2
    add t2, t1, s2
    lw t3, 0(t2)
    add t4, t1, s3
    sw t3, 0(t4)
    addi t0, t0, 1
    li t5, 16
    blt t0, t5, copy

    # sum B
    li t0, 0
    li a1, 0
sum:
    slli t1, t0, 2
    add t2, t1, s3
    lw t3, 0(t2)
    add a1, a1, t3
    addi t0, t0, 1
    li t5, 16
    blt t0, t5, sum

    # branchy classification (Proc-style control)
    li t0, 300
    blt a1, t0, small_case
    li t1, 500
    blt a1, t1, mid_case
    addi s1, s1, 7
    j classified
small_case:
    addi s1, s1, 3
    j classified
mid_case:
    addi s1, s1, 5
classified:

    # leaf call: a0 = f(a1) = (a1 ^ 0x5a) + s0
    mv a0, a1
    jal ra, leaf
    add s1, s1, a0

    addi s0, s0, -1
    bnez s0, outer

    mv a0, s1
{EPILOGUE}

leaf:
    xori a0, a0, 0x5a
    add a0, a0, s0
    ret
"
    );
    Ok(Workload {
        name: "dhrystone".into(),
        words: assemble(&source)?,
    })
}

/// Dense `n × n` integer matrix multiply, repeated `reps` times.
///
/// A is at 0x400, B follows, C follows; elements initialized
/// arithmetically; the checksum is the sum of C's diagonal.
pub fn matmul(n: u32, reps: u32) -> Result<Workload, AsmError> {
    let a = 0x400;
    let b = a + 4 * n * n;
    let c = b + 4 * n * n;
    let source = format!(
        "{PROLOGUE}
    li s0, {n}           # n
    li s1, {a}           # A
    li s2, {b}           # B
    li s3, {c}           # C
    li s11, {reps}

    # init A[i] = i+1, B[i] = 2i+1
    li t0, 0
    mul t1, s0, s0
initm:
    slli t2, t0, 2
    add t3, t2, s1
    addi t4, t0, 1
    sw t4, 0(t3)
    add t3, t2, s2
    slli t4, t0, 1
    addi t4, t4, 1
    sw t4, 0(t3)
    addi t0, t0, 1
    blt t0, t1, initm

rep:
    li s4, 0             # i
iloop:
    li s5, 0             # j
jloop:
    li s6, 0             # k
    li a1, 0             # acc
kloop:
    # A[i*n+k]
    mul t0, s4, s0
    add t0, t0, s6
    slli t0, t0, 2
    add t0, t0, s1
    lw t1, 0(t0)
    # B[k*n+j]
    mul t2, s6, s0
    add t2, t2, s5
    slli t2, t2, 2
    add t2, t2, s2
    lw t3, 0(t2)
    mul t4, t1, t3
    add a1, a1, t4
    addi s6, s6, 1
    blt s6, s0, kloop
    # C[i*n+j] = acc
    mul t0, s4, s0
    add t0, t0, s5
    slli t0, t0, 2
    add t0, t0, s3
    sw a1, 0(t0)
    addi s5, s5, 1
    blt s5, s0, jloop
    addi s4, s4, 1
    blt s4, s0, iloop
    addi s11, s11, -1
    bnez s11, rep

    # checksum: sum of diagonal
    li a0, 0
    li t0, 0
diag:
    mul t1, t0, s0
    add t1, t1, t0
    slli t1, t1, 2
    add t1, t1, s3
    lw t2, 0(t1)
    add a0, a0, t2
    addi t0, t0, 1
    blt t0, s0, diag
{EPILOGUE}
"
    );
    Ok(Workload {
        name: "matmul".into(),
        words: assemble(&source)?,
    })
}

/// Pointer chase: builds a permutation cycle of `nodes` linked words
/// (stride 17, coprime with any power-of-two node count), then follows
/// `steps` dependent loads. Nearly every cycle is a memory stall.
pub fn pchase(nodes: u32, steps: u32) -> Result<Workload, AsmError> {
    assert!(nodes.is_power_of_two(), "nodes must be a power of two");
    // The node array lives in the SoC's far-memory region (byte bit 14
    // set), so every chase step pays the cache-miss latency.
    let base = 0x4000;
    let mask = nodes - 1;
    let source = format!(
        "{PROLOGUE}
    li s0, {nodes}
    li s1, {base}
    li s2, {mask}

    # build: mem[base + 4*i] = base + 4*((i + 17) & mask)
    li t0, 0
build:
    addi t1, t0, 17
    and t1, t1, s2
    slli t1, t1, 2
    add t1, t1, s1
    slli t2, t0, 2
    add t2, t2, s1
    sw t1, 0(t2)
    addi t0, t0, 1
    blt t0, s0, build

    # chase
    li s3, {steps}
    mv t0, s1
chase:
    lw t0, 0(t0)
    addi s3, s3, -1
    bnez s3, chase

    mv a0, t0
{EPILOGUE}
"
    );
    Ok(Workload {
        name: "pchase".into(),
        words: assemble(&source)?,
    })
}

/// Result of running a workload to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Simulated cycles until `stop` fired (or the cap).
    pub cycles: u64,
    /// Retired instructions reported by the design.
    pub instret: u64,
    /// The checksum the program stored to `tohost`.
    pub tohost: u64,
    /// Whether the program reached its `tohost` store.
    pub finished: bool,
}

/// Loads `workload` into the SoC's instruction memory, releases reset,
/// and runs until the design stops (or `max_cycles`).
///
/// # Panics
///
/// Panics if the design lacks the SoC interface (`imem`, `reset`,
/// `instret`, `tohost`).
pub fn run_workload<S: Simulator + ?Sized>(
    sim: &mut S,
    workload: &Workload,
    max_cycles: u64,
) -> RunResult {
    for (i, &word) in workload.words.iter().enumerate() {
        sim.write_mem("imem", i, Bits::from_u64(word as u64, 32));
    }
    sim.poke("reset", Bits::from_u64(1, 1));
    sim.step(2);
    sim.poke("reset", Bits::from_u64(0, 1));
    let start = sim.cycle();
    let mut remaining = max_cycles;
    const CHUNK: u64 = 8192;
    while remaining > 0 && sim.halted().is_none() {
        let n = remaining.min(CHUNK);
        sim.step(n);
        remaining -= n;
    }
    // The stop fires during the final cycle, so output ports (combinational
    // views of the previous state) are one cycle stale; read the committed
    // registers directly.
    RunResult {
        cycles: sim.cycle() - start,
        instret: sim.peek("instret_r").to_u64().unwrap_or(0),
        tohost: sim.peek("tohost_r").to_u64().unwrap_or(0),
        finished: sim.halted().is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soc::{generate_soc, SocConfig};
    use essent_netlist::Netlist;
    use essent_sim::{EngineConfig, EssentSim, FullCycleSim};

    fn tiny_netlist() -> Netlist {
        let src = generate_soc(&SocConfig::tiny());
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(&src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    #[test]
    fn workloads_assemble() {
        assert!(!dhrystone(2).unwrap().words.is_empty());
        assert!(!matmul(4, 1).unwrap().words.is_empty());
        assert!(!pchase(64, 100).unwrap().words.is_empty());
    }

    #[test]
    fn simple_program_computes_on_soc() {
        // sum 1..=10 -> 55 to tohost.
        let program = Workload {
            name: "sum".into(),
            words: assemble(
                "    lui t6, 0x80000\n    li a0, 0\n    li t0, 10\nloop:\n    add a0, a0, t0\n    addi t0, t0, -1\n    bnez t0, loop\n    sw a0, 0(t6)\nhalt:\n    j halt\n",
            )
            .unwrap(),
        };
        let n = tiny_netlist();
        let mut sim = FullCycleSim::new(&n, &EngineConfig::default());
        let result = run_workload(&mut sim, &program, 20_000);
        assert!(result.finished, "program must reach tohost");
        assert_eq!(result.tohost, 55);
    }

    #[test]
    fn loads_and_stores_roundtrip_on_soc() {
        let program = Workload {
            name: "mem".into(),
            words: assemble(
                "    lui t6, 0x80000\n    li t0, 0x123\n    sw t0, 0x40(zero)\n    lw a0, 0x40(zero)\n    addi a0, a0, 1\n    sw a0, 0(t6)\nhalt:\n    j halt\n",
            )
            .unwrap(),
        };
        let n = tiny_netlist();
        let mut sim = FullCycleSim::new(&n, &EngineConfig::default());
        let result = run_workload(&mut sim, &program, 20_000);
        assert!(result.finished);
        assert_eq!(result.tohost, 0x124);
    }

    #[test]
    fn muldiv_work_on_soc() {
        let program = Workload {
            name: "muldiv".into(),
            words: assemble(
                "    lui t6, 0x80000\n    li t0, -6\n    li t1, 7\n    mul t2, t0, t1      # -42\n    li t3, -42\n    div t4, t3, t1      # -6\n    rem t5, t3, t1      # 0? no: -42 % 7 = 0\n    li a1, 100\n    li a2, 9\n    rem a3, a1, a2      # 1\n    sub a0, t2, t4      # -42 - -6 = -36\n    add a0, a0, a3      # -35\n    sw a0, 0(t6)\nhalt:\n    j halt\n",
            )
            .unwrap(),
        };
        let n = tiny_netlist();
        let mut sim = FullCycleSim::new(&n, &EngineConfig::default());
        let result = run_workload(&mut sim, &program, 20_000);
        assert!(result.finished);
        assert_eq!(result.tohost as u32, (-35i32) as u32);
    }

    #[test]
    fn matmul_result_is_correct_on_soc() {
        // 2x2: A = [1 2; 3 4], B = [1 3; 5 7]; C = [11 17; 23 37];
        // diagonal sum = 11 + 37 = 48.
        let wl = matmul(2, 1).unwrap();
        let n = tiny_netlist();
        let mut sim = EssentSim::new(&n, &EngineConfig::default());
        let result = run_workload(&mut sim, &wl, 100_000);
        assert!(result.finished);
        assert_eq!(result.tohost, 48);
    }

    #[test]
    fn pchase_terminates_with_valid_pointer() {
        let wl = pchase(64, 500).unwrap();
        let n = tiny_netlist();
        let mut sim = FullCycleSim::new(&n, &EngineConfig::default());
        let result = run_workload(&mut sim, &wl, 200_000);
        assert!(result.finished);
        // The final pointer is inside the node array.
        assert!(result.tohost >= 0x4000 && result.tohost < 0x4000 + 64 * 4);
    }

    #[test]
    fn engines_agree_on_dhrystone() {
        let wl = dhrystone(3).unwrap();
        let n = tiny_netlist();
        let mut full = FullCycleSim::new(&n, &EngineConfig::default());
        let mut essent = EssentSim::new(&n, &EngineConfig::default());
        let rf = run_workload(&mut full, &wl, 200_000);
        let re = run_workload(&mut essent, &wl, 200_000);
        assert!(rf.finished && re.finished);
        assert_eq!(rf.tohost, re.tohost);
        assert_eq!(rf.cycles, re.cycles);
        assert_eq!(rf.instret, re.instret);
    }
}
