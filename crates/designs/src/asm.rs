//! A two-pass RV32IM assembler for the evaluation workloads.
//!
//! Supports the instruction subset the workloads use: the full RV32I
//! base integer set (loads/stores are word-sized), the M-extension
//! multiply/divide group, labels, decimal/hex immediates, `.word` data,
//! comments (`#`), and the common pseudo-instructions (`li`, `mv`, `j`,
//! `nop`, `ret`, `beqz`, `bnez`, `call` as `jal ra`).

use std::collections::HashMap;
use std::fmt;

/// Error produced on malformed assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles a program into 32-bit words starting at address 0.
///
/// # Errors
///
/// Returns [`AsmError`] on unknown mnemonics/registers, out-of-range
/// immediates, or undefined labels.
///
/// # Examples
///
/// ```
/// let words = essent_designs::asm::assemble("
///     li a0, 5
///     li a1, 0
/// loop:
///     add a1, a1, a0
///     addi a0, a0, -1
///     bnez a0, loop
/// ")?;
/// assert_eq!(words.len(), 5);
/// # Ok::<(), essent_designs::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Vec<u32>, AsmError> {
    let lines: Vec<(usize, String)> = source
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let no_comment = l.split('#').next().unwrap_or("");
            (i + 1, no_comment.trim().to_string())
        })
        .filter(|(_, l)| !l.is_empty())
        .collect();

    // Pass 1: label addresses (expansion-size aware).
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut pc = 0u32;
    let mut items: Vec<(usize, String, u32)> = Vec::new(); // (line, text, pc)
    for (line, text) in &lines {
        let mut rest = text.as_str();
        while let Some(colon) = rest.find(':') {
            let (label, after) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(label.to_string(), pc).is_some() {
                return Err(AsmError {
                    line: *line,
                    message: format!("duplicate label `{label}`"),
                });
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let size = instr_size(rest, *line)?;
        items.push((*line, rest.to_string(), pc));
        pc += 4 * size;
    }

    // Pass 2: encode.
    let mut words = Vec::new();
    for (line, text, pc) in &items {
        encode(text, *pc, &labels, *line, &mut words)?;
    }
    Ok(words)
}

/// Number of 32-bit words an instruction expands to.
fn instr_size(text: &str, line: usize) -> Result<u32, AsmError> {
    let (mnemonic, ops) = split_instr(text);
    Ok(match mnemonic {
        "li" => {
            let imm = parse_imm_str(ops.get(1).copied().unwrap_or("0"), line)?;
            if fits_i12(imm) {
                1
            } else {
                2
            }
        }
        "call" => 1,
        _ => 1,
    })
}

fn split_instr(text: &str) -> (&str, Vec<&str>) {
    let mut parts = text.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().unwrap_or("");
    let ops: Vec<&str> = parts
        .next()
        .map(|rest| rest.split(',').map(str::trim).collect())
        .unwrap_or_default();
    (mnemonic, ops)
}

fn fits_i12(v: i64) -> bool {
    (-2048..=2047).contains(&v)
}

/// Parses a register name (`x5`, `t0`, `a1`, ...).
pub fn reg(name: &str) -> Option<u32> {
    let name = name.trim();
    if let Some(n) = name.strip_prefix('x') {
        return n.parse::<u32>().ok().filter(|&r| r < 32);
    }
    Some(match name {
        "zero" => 0,
        "ra" => 1,
        "sp" => 2,
        "gp" => 3,
        "tp" => 4,
        "t0" => 5,
        "t1" => 6,
        "t2" => 7,
        "s0" | "fp" => 8,
        "s1" => 9,
        "a0" => 10,
        "a1" => 11,
        "a2" => 12,
        "a3" => 13,
        "a4" => 14,
        "a5" => 15,
        "a6" => 16,
        "a7" => 17,
        "s2" => 18,
        "s3" => 19,
        "s4" => 20,
        "s5" => 21,
        "s6" => 22,
        "s7" => 23,
        "s8" => 24,
        "s9" => 25,
        "s10" => 26,
        "s11" => 27,
        "t3" => 28,
        "t4" => 29,
        "t5" => 30,
        "t6" => 31,
        _ => return None,
    })
}

fn parse_imm_str(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = body.strip_prefix("0b") {
        i64::from_str_radix(bin, 2)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| AsmError {
        line,
        message: format!("bad immediate `{s}`"),
    })?;
    Ok(if neg { -value } else { value })
}

struct Ctx<'a> {
    labels: &'a HashMap<String, u32>,
    pc: u32,
    line: usize,
}

impl Ctx<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, AsmError> {
        Err(AsmError {
            line: self.line,
            message: message.into(),
        })
    }

    fn reg(&self, s: Option<&&str>) -> Result<u32, AsmError> {
        let s = s.ok_or_else(|| AsmError {
            line: self.line,
            message: "missing register operand".into(),
        })?;
        reg(s).ok_or_else(|| AsmError {
            line: self.line,
            message: format!("unknown register `{s}`"),
        })
    }

    fn imm(&self, s: Option<&&str>) -> Result<i64, AsmError> {
        let s = s.ok_or_else(|| AsmError {
            line: self.line,
            message: "missing immediate operand".into(),
        })?;
        parse_imm_str(s, self.line)
    }

    /// Branch/jump target: a label or numeric offset.
    fn target(&self, s: Option<&&str>) -> Result<i64, AsmError> {
        let s = s.ok_or_else(|| AsmError {
            line: self.line,
            message: "missing branch target".into(),
        })?;
        if let Some(&addr) = self.labels.get(*s) {
            Ok(addr as i64 - self.pc as i64)
        } else {
            parse_imm_str(s, self.line)
        }
    }

    /// `imm(rs)` memory operand.
    fn mem_operand(&self, s: Option<&&str>) -> Result<(i64, u32), AsmError> {
        let s = s.ok_or_else(|| AsmError {
            line: self.line,
            message: "missing memory operand".into(),
        })?;
        let open = s.find('(').ok_or_else(|| AsmError {
            line: self.line,
            message: format!("expected imm(reg), got `{s}`"),
        })?;
        let close = s.rfind(')').ok_or_else(|| AsmError {
            line: self.line,
            message: "missing `)`".into(),
        })?;
        let imm = if s[..open].trim().is_empty() {
            0
        } else {
            parse_imm_str(&s[..open], self.line)?
        };
        let r = reg(&s[open + 1..close]).ok_or_else(|| AsmError {
            line: self.line,
            message: format!("unknown register in `{s}`"),
        })?;
        Ok((imm, r))
    }
}

// Encoders.
fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(imm: i64, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    ((imm as u32 & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn s_type(imm: i64, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32 & 0xfff;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | ((imm & 0x1f) << 7) | opcode
}

fn b_type(imm: i64, rs2: u32, rs1: u32, funct3: u32) -> u32 {
    let imm = imm as u32 & 0x1fff;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 1) << 7)
        | 0b1100011
}

fn u_type(imm: i64, rd: u32, opcode: u32) -> u32 {
    ((imm as u32 & 0xfffff) << 12) | (rd << 7) | opcode
}

fn j_type(imm: i64, rd: u32) -> u32 {
    let imm = imm as u32 & 0x1fffff;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | (rd << 7)
        | 0b1101111
}

fn encode(
    text: &str,
    pc: u32,
    labels: &HashMap<String, u32>,
    line: usize,
    out: &mut Vec<u32>,
) -> Result<(), AsmError> {
    let (mnemonic, ops) = split_instr(text);
    let ctx = Ctx { labels, pc, line };
    let op = |i: usize| ops.get(i);

    const OP: u32 = 0b0110011;
    const OP_IMM: u32 = 0b0010011;
    const LOAD: u32 = 0b0000011;
    const STORE: u32 = 0b0100011;

    let word = match mnemonic {
        // R-type ALU.
        "add" => r_type(
            0,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b000,
            ctx.reg(op(0))?,
            OP,
        ),
        "sub" => r_type(
            0b0100000,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b000,
            ctx.reg(op(0))?,
            OP,
        ),
        "sll" => r_type(
            0,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b001,
            ctx.reg(op(0))?,
            OP,
        ),
        "slt" => r_type(
            0,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b010,
            ctx.reg(op(0))?,
            OP,
        ),
        "sltu" => r_type(
            0,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b011,
            ctx.reg(op(0))?,
            OP,
        ),
        "xor" => r_type(
            0,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b100,
            ctx.reg(op(0))?,
            OP,
        ),
        "srl" => r_type(
            0,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b101,
            ctx.reg(op(0))?,
            OP,
        ),
        "sra" => r_type(
            0b0100000,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b101,
            ctx.reg(op(0))?,
            OP,
        ),
        "or" => r_type(
            0,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b110,
            ctx.reg(op(0))?,
            OP,
        ),
        "and" => r_type(
            0,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b111,
            ctx.reg(op(0))?,
            OP,
        ),
        // M extension.
        "mul" => r_type(
            1,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b000,
            ctx.reg(op(0))?,
            OP,
        ),
        "mulh" => r_type(
            1,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b001,
            ctx.reg(op(0))?,
            OP,
        ),
        "mulhu" => r_type(
            1,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b011,
            ctx.reg(op(0))?,
            OP,
        ),
        "div" => r_type(
            1,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b100,
            ctx.reg(op(0))?,
            OP,
        ),
        "divu" => r_type(
            1,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b101,
            ctx.reg(op(0))?,
            OP,
        ),
        "rem" => r_type(
            1,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b110,
            ctx.reg(op(0))?,
            OP,
        ),
        "remu" => r_type(
            1,
            ctx.reg(op(2))?,
            ctx.reg(op(1))?,
            0b111,
            ctx.reg(op(0))?,
            OP,
        ),
        // I-type ALU.
        "addi" => i_type(
            ctx.imm(op(2))?,
            ctx.reg(op(1))?,
            0b000,
            ctx.reg(op(0))?,
            OP_IMM,
        ),
        "slti" => i_type(
            ctx.imm(op(2))?,
            ctx.reg(op(1))?,
            0b010,
            ctx.reg(op(0))?,
            OP_IMM,
        ),
        "sltiu" => i_type(
            ctx.imm(op(2))?,
            ctx.reg(op(1))?,
            0b011,
            ctx.reg(op(0))?,
            OP_IMM,
        ),
        "xori" => i_type(
            ctx.imm(op(2))?,
            ctx.reg(op(1))?,
            0b100,
            ctx.reg(op(0))?,
            OP_IMM,
        ),
        "ori" => i_type(
            ctx.imm(op(2))?,
            ctx.reg(op(1))?,
            0b110,
            ctx.reg(op(0))?,
            OP_IMM,
        ),
        "andi" => i_type(
            ctx.imm(op(2))?,
            ctx.reg(op(1))?,
            0b111,
            ctx.reg(op(0))?,
            OP_IMM,
        ),
        "slli" => i_type(
            ctx.imm(op(2))? & 0x1f,
            ctx.reg(op(1))?,
            0b001,
            ctx.reg(op(0))?,
            OP_IMM,
        ),
        "srli" => i_type(
            ctx.imm(op(2))? & 0x1f,
            ctx.reg(op(1))?,
            0b101,
            ctx.reg(op(0))?,
            OP_IMM,
        ),
        "srai" => i_type(
            (ctx.imm(op(2))? & 0x1f) | 0x400,
            ctx.reg(op(1))?,
            0b101,
            ctx.reg(op(0))?,
            OP_IMM,
        ),
        // Loads/stores (word).
        "lw" => {
            let (imm, rs1) = ctx.mem_operand(op(1))?;
            i_type(imm, rs1, 0b010, ctx.reg(op(0))?, LOAD)
        }
        "sw" => {
            let (imm, rs1) = ctx.mem_operand(op(1))?;
            s_type(imm, ctx.reg(op(0))?, rs1, 0b010, STORE)
        }
        // Branches.
        "beq" => b_type(ctx.target(op(2))?, ctx.reg(op(1))?, ctx.reg(op(0))?, 0b000),
        "bne" => b_type(ctx.target(op(2))?, ctx.reg(op(1))?, ctx.reg(op(0))?, 0b001),
        "blt" => b_type(ctx.target(op(2))?, ctx.reg(op(1))?, ctx.reg(op(0))?, 0b100),
        "bge" => b_type(ctx.target(op(2))?, ctx.reg(op(1))?, ctx.reg(op(0))?, 0b101),
        "bltu" => b_type(ctx.target(op(2))?, ctx.reg(op(1))?, ctx.reg(op(0))?, 0b110),
        "bgeu" => b_type(ctx.target(op(2))?, ctx.reg(op(1))?, ctx.reg(op(0))?, 0b111),
        // Upper immediates and jumps.
        "lui" => u_type(ctx.imm(op(1))?, ctx.reg(op(0))?, 0b0110111),
        "auipc" => u_type(ctx.imm(op(1))?, ctx.reg(op(0))?, 0b0010111),
        "jal" => {
            if ops.len() == 1 {
                j_type(ctx.target(op(0))?, 1)
            } else {
                j_type(ctx.target(op(1))?, ctx.reg(op(0))?)
            }
        }
        "jalr" => {
            if ops.len() == 1 {
                i_type(0, ctx.reg(op(0))?, 0b000, 1, 0b1100111)
            } else {
                let (imm, rs1) = ctx.mem_operand(op(1))?;
                i_type(imm, rs1, 0b000, ctx.reg(op(0))?, 0b1100111)
            }
        }
        // Pseudo-instructions.
        "nop" => i_type(0, 0, 0b000, 0, OP_IMM),
        "mv" => i_type(0, ctx.reg(op(1))?, 0b000, ctx.reg(op(0))?, OP_IMM),
        "li" => {
            let rd = ctx.reg(op(0))?;
            let imm = ctx.imm(op(1))?;
            if fits_i12(imm) {
                i_type(imm, 0, 0b000, rd, OP_IMM)
            } else {
                // lui + addi with carry correction for negative low part.
                let low = imm << 52 >> 52; // sign-extended low 12
                let high = ((imm - low) >> 12) & 0xfffff;
                out.push(u_type(high, rd, 0b0110111));
                i_type(low, rd, 0b000, rd, OP_IMM)
            }
        }
        "j" => j_type(ctx.target(op(0))?, 0),
        "call" => j_type(ctx.target(op(0))?, 1),
        "ret" => i_type(0, 1, 0b000, 0, 0b1100111),
        "beqz" => b_type(ctx.target(op(1))?, 0, ctx.reg(op(0))?, 0b000),
        "bnez" => b_type(ctx.target(op(1))?, 0, ctx.reg(op(0))?, 0b001),
        ".word" => {
            let v = ctx.imm(op(0))?;
            v as u32
        }
        other => return ctx.err(format!("unknown mnemonic `{other}`")),
    };
    out.push(word);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_known_instructions() {
        // Cross-checked against the RISC-V spec encodings.
        assert_eq!(assemble("add x1, x2, x3").unwrap(), vec![0x003100b3]);
        assert_eq!(assemble("addi x1, x2, -1").unwrap(), vec![0xfff10093]);
        assert_eq!(assemble("lw x5, 8(x6)").unwrap(), vec![0x00832283]);
        assert_eq!(assemble("sw x5, 12(x6)").unwrap(), vec![0x00532623]);
        assert_eq!(assemble("lui x7, 0xfffff").unwrap(), vec![0xfffff3b7]);
        assert_eq!(assemble("jal x0, 8").unwrap(), vec![0x0080006f]);
        assert_eq!(assemble("mul x1, x2, x3").unwrap(), vec![0x023100b3]);
    }

    #[test]
    fn branch_offsets_resolve_labels() {
        let words = assemble("start:\n  addi x1, x1, 1\n  beq x1, x2, start\n").unwrap();
        assert_eq!(words.len(), 2);
        // beq back 4 bytes: imm = -4.
        assert_eq!(words[1], b_type(-4, 2, 1, 0b000));
    }

    #[test]
    fn li_expands_for_large_immediates() {
        let small = assemble("li a0, 100").unwrap();
        assert_eq!(small.len(), 1);
        let large = assemble("li a0, 0x12345").unwrap();
        assert_eq!(large.len(), 2);
        // lui a0, 0x12; addi a0, a0, 0x345
        assert_eq!(large[0], u_type(0x12, 10, 0b0110111));
        assert_eq!(large[1], i_type(0x345, 10, 0, 10, 0b0010011));
    }

    #[test]
    fn li_negative_low_part_carries() {
        // 0x12FFF: low 12 bits 0xFFF = -1 sign-extended, so high must be
        // 0x13 to compensate.
        let words = assemble("li a0, 0x12fff").unwrap();
        assert_eq!(words[0], u_type(0x13, 10, 0b0110111));
        assert_eq!(words[1], i_type(-1, 10, 0, 10, 0b0010011));
    }

    #[test]
    fn labels_with_pseudo_sizes_stay_aligned() {
        let words = assemble("  li a0, 0x12345\nhere:\n  j here\n").unwrap();
        assert_eq!(words.len(), 3);
        assert_eq!(words[2], j_type(0, 0)); // jump to self
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let words = assemble("# full comment\n\n  nop # trailing\n").unwrap();
        assert_eq!(words.len(), 1);
    }

    #[test]
    fn abi_register_names() {
        assert_eq!(reg("zero"), Some(0));
        assert_eq!(reg("ra"), Some(1));
        assert_eq!(reg("a0"), Some(10));
        assert_eq!(reg("t6"), Some(31));
        assert_eq!(reg("x31"), Some(31));
        assert_eq!(reg("x32"), None);
        assert_eq!(reg("bogus"), None);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbadop x1, x2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("badop"));
    }

    #[test]
    fn binary_and_hex_immediates() {
        assert_eq!(
            assemble("li a0, 0b1010").unwrap(),
            assemble("li a0, 10").unwrap()
        );
        assert_eq!(
            assemble("li a0, -0x10").unwrap(),
            assemble("li a0, -16").unwrap()
        );
    }

    #[test]
    fn word_directive() {
        assert_eq!(assemble(".word 0xdeadbeef").unwrap(), vec![0xdeadbeef]);
    }
}
