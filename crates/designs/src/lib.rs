//! Evaluation designs and software workloads.
//!
//! The paper evaluates on Rocket Chip (2016 and 2018 configurations) and
//! BOOM running three RISC-V programs. Chisel and those generators are
//! not available offline, so this crate provides the substitution
//! documented in DESIGN.md: a parameterized RV32IM system-on-chip
//! generator that emits FIRRTL ([`soc`]), an RV32IM assembler ([`asm`]),
//! and the three software workloads ([`workloads`]) — a Dhrystone-like
//! mixed-integer benchmark, a dense matrix multiply, and a dependent-load
//! pointer chase. The workloads reproduce the paper's activity regimes:
//! compute-bound (higher activity) through memory-stall-bound (very low
//! activity).
//!
//! Small teaching designs ([`small`]) exercise the frontend and engines
//! in tests and examples.
//!
//! # Examples
//!
//! ```
//! use essent_designs::soc::{SocConfig, generate_soc};
//!
//! let firrtl = generate_soc(&SocConfig::tiny());
//! let circuit = essent_firrtl::parse(&firrtl)?;
//! assert_eq!(circuit.name, "soc");
//! # Ok::<(), essent_firrtl::ParseError>(())
//! ```

pub mod asm;
pub mod small;
pub mod soc;
pub mod workloads;
