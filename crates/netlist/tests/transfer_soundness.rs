//! Soundness oracle for the abstract transfer functions.
//!
//! For every `OpKind` at operand widths ≤ 6, generate abstract operands
//! (⊤, partial known-bits masks, and value ranges), enumerate **every**
//! concrete operand tuple the abstract operands contain, run the real
//! `eval_op` kernels on each tuple, and require the abstract result to
//! contain each concrete result. This is the definition of transfer-
//! function soundness — any abstraction that ever excludes a reachable
//! concrete value could mis-fold a comparison or narrow a live bit.
//!
//! Widths/signedness combinations follow the FIRRTL inference rules the
//! netlist builder produces (and the kernel `debug_assert`s demand, e.g.
//! `cat`'s `dst = a.w + b.w`).

use essent_bits::{words, Bits};
use essent_netlist::analysis::absval::{value_of, AbsVal};
use essent_netlist::analysis::transfer::transfer;
use essent_netlist::eval::{eval_op, Operand};
use essent_netlist::OpKind;

/// Deterministic xorshift64* — no external PRNG needed for a test.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn low_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// A random abstract value at (width, signed): ⊤, a known-bits mask with
/// a few free bits, or the hull of two random concrete values.
fn sample(rng: &mut Rng, width: u32, signed: bool) -> AbsVal {
    let mut v = AbsVal::top(width, signed);
    if width == 0 {
        return v;
    }
    match rng.below(3) {
        0 => {} // ⊤
        1 => {
            let unknown = rng.below(u64::from(width).min(4) + 1) as u32;
            let pattern = rng.next() & low_mask(width);
            let mut known = low_mask(width);
            for _ in 0..unknown {
                known &= !(1u64 << rng.below(u64::from(width)));
            }
            v.zeros[0] |= !pattern & known;
            v.ones[0] |= pattern & known;
            v.canonicalize();
        }
        _ => {
            let a = [rng.next() & low_mask(width)];
            let b = [rng.next() & low_mask(width)];
            let x = value_of(&a, width, signed);
            let y = value_of(&b, width, signed);
            v.range = Some((x.min(y), x.max(y)));
            v.canonicalize();
        }
    }
    v
}

/// Every concrete value the abstract value contains (widths ≤ 6 keep
/// this exhaustive and tiny).
fn concretize(v: &AbsVal) -> Vec<Bits> {
    assert!(v.width <= 6, "oracle widths stay enumerable");
    (0..1u64 << v.width)
        .map(|x| Bits::from_u64(x, v.width))
        .filter(|b| v.contains(b))
        .collect()
}

/// The oracle: abstract transfer vs. exhaustive concrete evaluation.
fn check(kind: OpKind, params: &[u64], dst_w: u32, dst_signed: bool, srcs: &[AbsVal]) {
    let refs: Vec<&AbsVal> = srcs.iter().collect();
    let out = transfer(kind, params, dst_w, dst_signed, &refs);
    assert_eq!(out.width, dst_w);
    assert_eq!(out.signed, dst_signed);

    let concrete: Vec<Vec<Bits>> = srcs.iter().map(concretize).collect();
    let mut index = vec![0usize; srcs.len()];
    'outer: loop {
        let combo: Vec<&Bits> = index.iter().zip(&concrete).map(|(&i, c)| &c[i]).collect();
        let operands: Vec<Operand> = combo
            .iter()
            .zip(srcs)
            .map(|(b, s)| Operand::new(b.limbs(), s.width, s.signed))
            .collect();
        let mut dst = vec![0u64; words(dst_w)];
        eval_op(kind, params, &mut dst, dst_w, &operands);
        let result = Bits::from_limbs(dst, dst_w);
        assert!(
            out.contains(&result),
            "unsound transfer: {kind:?} params={params:?} dst_w={dst_w} dst_signed={dst_signed}\n\
             operands: {combo:?}\nabstract operands: {srcs:?}\n\
             concrete result {result:?} not contained in {out:?}"
        );
        // Odometer over the cartesian product.
        for pos in (0..index.len()).rev() {
            index[pos] += 1;
            if index[pos] < concrete[pos].len() {
                continue 'outer;
            }
            index[pos] = 0;
        }
        break;
    }
}

const SAMPLES: u64 = 6;

/// Binary ops under FIRRTL's same-signedness convention.
#[test]
fn binary_ops_are_sound() {
    use OpKind::*;
    let mut rng = Rng(0x9e3779b97f4a7c15);
    for signed in [false, true] {
        for aw in 1..=6u32 {
            for bw in [1, aw, 6] {
                for kind in [
                    Add, Sub, Mul, Div, Rem, Lt, Leq, Gt, Geq, Eq, Neq, And, Or, Xor, Cat, Dshl,
                    Dshr,
                ] {
                    // cat/dshl/dshr read the second operand as unsigned
                    // (a raw layout or a shift amount).
                    let b_signed = signed && !matches!(kind, Cat | Dshl | Dshr);
                    let (dst_w, dst_signed) = match kind {
                        Add | Sub => (aw.max(bw) + 1, signed),
                        Mul => (aw + bw, signed),
                        Div => (aw + u32::from(signed), signed),
                        Rem => (aw.min(bw), signed),
                        Lt | Leq | Gt | Geq | Eq | Neq => (1, false),
                        And | Or | Xor => (aw.max(bw), false),
                        Cat => (aw + bw, false),
                        // Keep the width explosion enumerable.
                        Dshl => (aw + (1u32 << bw.min(3)) - 1, signed),
                        Dshr => (aw, signed),
                        _ => unreachable!(),
                    };
                    let bw = if kind == Dshl { bw.min(3) } else { bw };
                    for _ in 0..SAMPLES {
                        let a = sample(&mut rng, aw, signed);
                        let b = sample(&mut rng, bw, b_signed);
                        check(kind, &[], dst_w, dst_signed, &[a, b]);
                    }
                }
            }
        }
    }
}

/// Unary and parameterized ops.
#[test]
fn unary_and_param_ops_are_sound() {
    use OpKind::*;
    let mut rng = Rng(0xd1b54a32d192ed03);
    for signed in [false, true] {
        for aw in 1..=6u32 {
            for _ in 0..SAMPLES {
                let a = sample(&mut rng, aw, signed);
                check(Not, &[], aw, false, std::slice::from_ref(&a));
                check(Neg, &[], aw + 1, true, std::slice::from_ref(&a));
                check(Andr, &[], 1, false, std::slice::from_ref(&a));
                check(Orr, &[], 1, false, std::slice::from_ref(&a));
                check(Xorr, &[], 1, false, std::slice::from_ref(&a));

                let sh = rng.below(5);
                check(Shl, &[sh], aw + sh as u32, signed, std::slice::from_ref(&a));
                let sh = rng.below(8);
                check(
                    Shr,
                    &[sh],
                    (aw as i64 - sh as i64).max(1) as u32,
                    signed,
                    std::slice::from_ref(&a),
                );

                let lo = rng.below(u64::from(aw)) as u32;
                let hi = lo + rng.below(u64::from(aw - lo)) as u32;
                check(
                    Bits,
                    &[u64::from(hi), u64::from(lo)],
                    hi - lo + 1,
                    false,
                    std::slice::from_ref(&a),
                );

                // Copy adapts to arbitrary destination types.
                let dst_w = 1 + rng.below(7) as u32;
                check(Copy, &[], dst_w, rng.below(2) == 1, &[a]);
            }
        }
    }
}

/// Three-operand mux, including partially-known selectors.
#[test]
fn mux_is_sound() {
    let mut rng = Rng(0xafc58ed867e34c11);
    for signed in [false, true] {
        for aw in 1..=6u32 {
            for bw in [1, aw, 6] {
                for _ in 0..SAMPLES {
                    let sel = sample(&mut rng, 1, false);
                    let a = sample(&mut rng, aw, signed);
                    let b = sample(&mut rng, bw, signed);
                    check(OpKind::Mux, &[], aw.max(bw), signed, &[sel, a, b]);
                }
            }
        }
    }
}

/// Regression pins for corner semantics the kernels define explicitly:
/// division by zero yields 0, remainder by zero yields the dividend, and
/// the empty AND-reduction is true.
#[test]
fn corner_semantics_are_contained() {
    let zero = AbsVal::exact(&Bits::zero(4), false);
    let x = AbsVal::top(4, false);
    let div = transfer(OpKind::Div, &[], 4, false, &[&x, &zero]);
    assert!(div.contains(&Bits::zero(4)));
    let rem = transfer(OpKind::Rem, &[], 4, false, &[&x, &zero]);
    for v in 0..16u64 {
        assert!(
            rem.contains(&Bits::from_u64(v, 4)),
            "rem-by-zero keeps dividend"
        );
    }
}
