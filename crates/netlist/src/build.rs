//! Builds a [`Netlist`] from a fully lowered FIRRTL circuit.
//!
//! Expects the output of [`essent_firrtl::passes::lower`]: a single
//! module, ground types only, no `when`s, and exactly one connect per
//! driven sink. Expressions are flattened into three-address form with
//! interned intermediates (structural hashing gives common-subexpression
//! elimination during construction), widths are inferred bottom-up with
//! the FIRRTL spec rules, and registers/memories are split into
//! source/sink node pairs so the resulting combinational graph is acyclic
//! for any synchronous design.

use crate::netlist::*;
use crate::width::{self, Ty};
use essent_bits::Bits;
use essent_firrtl::{Circuit, Direction, Expr, PrimOp, Stmt, Type};
use std::collections::HashMap;
use std::fmt;

/// Error produced when a lowered circuit cannot be turned into a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError(pub String);

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist build error: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

impl From<width::WidthError> for BuildError {
    fn from(e: width::WidthError) -> Self {
        BuildError(e.to_string())
    }
}

impl Netlist {
    /// Builds the design graph from a lowered circuit.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when the circuit is not fully lowered, uses
    /// more than one clock for its registers, contains a combinational
    /// cycle, or fails width inference.
    pub fn from_circuit(circuit: &Circuit) -> Result<Netlist, BuildError> {
        if circuit.modules.len() != 1 {
            return Err(BuildError(
                "expected a lowered single-module circuit (run essent_firrtl::passes::lower)"
                    .into(),
            ));
        }
        let module = circuit.top();
        let mut b = Builder::default();
        b.netlist.name = circuit.name.clone();

        // Ports.
        for port in &module.ports {
            let ty = port_ty(&port.ty).ok_or_else(|| {
                BuildError(format!(
                    "port `{}` has aggregate type (not lowered)",
                    port.name
                ))
            })?;
            let id = b.declare(&port.name, ty, SignalDef::Input)?;
            match port.direction {
                Direction::Input => b.netlist.inputs.push(id),
                Direction::Output => {
                    b.netlist.signals[id.index()].def = SignalDef::Const(Bits::zero(ty.width));
                    b.netlist.outputs.push(id);
                }
            }
        }

        // Declarations and node definitions, in order.
        for stmt in &module.body {
            b.handle_decl(stmt)?;
        }
        // Connects and side effects.
        for stmt in &module.body {
            b.handle_connect(stmt)?;
        }
        b.finalize(module)?;

        let netlist = b.netlist;
        check_acyclic(&netlist)?;
        Ok(netlist)
    }
}

fn port_ty(ty: &Type) -> Option<Ty> {
    match ty {
        Type::UInt(Some(w)) => Some(Ty::new(*w, false)),
        Type::SInt(Some(w)) => Some(Ty::new(*w, true)),
        Type::Clock | Type::Reset => Some(Ty::new(1, false)),
        _ => None,
    }
}

/// Structural interning key for an op definition: kind, operands, static
/// parameters, width, and signedness.
type OpKey = (OpKind, Vec<SignalId>, Vec<u64>, u32, bool);

#[derive(Default)]
struct Builder {
    netlist: Netlist,
    names: HashMap<String, SignalId>,
    intern: HashMap<OpKey, SignalId>,
    consts: HashMap<(Vec<u64>, u32, bool), SignalId>,
    temp_counter: usize,
    /// reg name → converted driving value (from its connect).
    reg_drive: HashMap<String, SignalId>,
    /// reg name → (reset cond expr, init expr) captured at declaration.
    reg_reset: HashMap<String, (Expr, Expr)>,
    /// (reg name, clock expr) pairs for the single-clock check.
    reg_clocks: Vec<(String, Expr)>,
}

impl Builder {
    fn declare(&mut self, name: &str, ty: Ty, def: SignalDef) -> Result<SignalId, BuildError> {
        if self.names.contains_key(name) {
            return Err(BuildError(format!("duplicate signal `{name}`")));
        }
        let id = SignalId(self.netlist.signals.len() as u32);
        self.netlist.signals.push(Signal {
            name: name.to_string(),
            width: ty.width,
            signed: ty.signed,
            def,
        });
        self.names.insert(name.to_string(), id);
        Ok(id)
    }

    fn ty_of(&self, id: SignalId) -> Ty {
        let s = &self.netlist.signals[id.index()];
        Ty::new(s.width, s.signed)
    }

    fn emit_const(&mut self, value: Bits, signed: bool) -> SignalId {
        let key = (value.limbs().to_vec(), value.width(), signed);
        if let Some(&id) = self.consts.get(&key) {
            return id;
        }
        let id = SignalId(self.netlist.signals.len() as u32);
        let name = format!("_C{}", self.consts.len());
        self.netlist.signals.push(Signal {
            name,
            width: value.width(),
            signed,
            def: SignalDef::Const(value),
        });
        self.consts.insert(key, id);
        id
    }

    fn emit_op(&mut self, kind: OpKind, args: Vec<SignalId>, params: Vec<u64>, ty: Ty) -> SignalId {
        let key = (kind, args.clone(), params.clone(), ty.width, ty.signed);
        if let Some(&id) = self.intern.get(&key) {
            return id;
        }
        let id = SignalId(self.netlist.signals.len() as u32);
        let name = format!("_T{}", self.temp_counter);
        self.temp_counter += 1;
        self.netlist.signals.push(Signal {
            name,
            width: ty.width,
            signed: ty.signed,
            def: SignalDef::Op(Op { kind, args, params }),
        });
        self.intern.insert(key, id);
        id
    }

    /// Emits a width/sign-adapting copy unless the source already matches.
    fn adapt(&mut self, src: SignalId, ty: Ty) -> SignalId {
        if self.ty_of(src) == ty {
            src
        } else {
            self.emit_op(OpKind::Copy, vec![src], vec![], ty)
        }
    }

    fn convert(&mut self, expr: &Expr) -> Result<SignalId, BuildError> {
        match expr {
            Expr::Ref(name) => self
                .names
                .get(name)
                .copied()
                .ok_or_else(|| BuildError(format!("reference to unknown signal `{name}`"))),
            Expr::SubField(..) => {
                // Memory port field: canonical dotted name was declared.
                let name = essent_firrtl::print_expr(expr);
                self.names
                    .get(&name)
                    .copied()
                    .ok_or_else(|| BuildError(format!("unknown memory port field `{name}`")))
            }
            Expr::UIntLit { value, .. } => Ok(self.emit_const(value.clone(), false)),
            Expr::SIntLit { value, .. } => Ok(self.emit_const(value.clone(), true)),
            Expr::Mux(sel, high, low) => {
                let s = self.convert(sel)?;
                let h = self.convert(high)?;
                let l = self.convert(low)?;
                let ty = width::infer(
                    OpKind::Mux,
                    &[self.ty_of(s), self.ty_of(h), self.ty_of(l)],
                    &[],
                )?;
                Ok(self.emit_op(OpKind::Mux, vec![s, h, l], vec![], ty))
            }
            Expr::ValidIf(_cond, value) => {
                // validif(c, v) simulates as v (don't-care resolved to the
                // value), matching the firrtl reference lowering.
                self.convert(value)
            }
            Expr::Prim { op, args, params } => self.convert_prim(*op, args, params),
            other => Err(BuildError(format!(
                "expression not lowered: `{}`",
                essent_firrtl::print_expr(other)
            ))),
        }
    }

    fn convert_prim(
        &mut self,
        op: PrimOp,
        args: &[Expr],
        params: &[u64],
    ) -> Result<SignalId, BuildError> {
        let ids = args
            .iter()
            .map(|a| self.convert(a))
            .collect::<Result<Vec<_>, _>>()?;
        let tys: Vec<Ty> = ids.iter().map(|&i| self.ty_of(i)).collect();

        // Normalize spec sugar into the netlist op set.
        let (kind, params): (OpKind, Vec<u64>) = match op {
            PrimOp::Pad => {
                let ty = Ty::new(tys[0].width.max(params[0] as u32), tys[0].signed);
                return Ok(self.adapt(ids[0], ty));
            }
            PrimOp::AsUInt => {
                let ty = Ty::new(tys[0].width, false);
                // Reinterpretation, not extension: same width, so the raw
                // pattern is preserved by Copy.
                return Ok(self.adapt(ids[0], ty));
            }
            PrimOp::AsSInt => {
                let ty = Ty::new(tys[0].width, true);
                return Ok(self.adapt(ids[0], ty));
            }
            PrimOp::AsClock => {
                let ty = Ty::new(1, false);
                return Ok(self.adapt(ids[0], ty));
            }
            PrimOp::Cvt => {
                let ty = Ty::new(tys[0].width + (!tys[0].signed) as u32, true);
                return Ok(self.adapt(ids[0], ty));
            }
            PrimOp::Head => {
                let n = params[0] as u32;
                if n == 0 || n > tys[0].width {
                    return Err(BuildError(format!(
                        "head({n}) out of range for width {}",
                        tys[0].width
                    )));
                }
                (
                    OpKind::Bits,
                    vec![(tys[0].width - 1) as u64, (tys[0].width - n) as u64],
                )
            }
            PrimOp::Tail => {
                let n = params[0] as u32;
                if n >= tys[0].width {
                    return Err(BuildError(format!(
                        "tail({n}) out of range for width {}",
                        tys[0].width
                    )));
                }
                (OpKind::Bits, vec![(tys[0].width - n - 1) as u64, 0])
            }
            PrimOp::Add => (OpKind::Add, vec![]),
            PrimOp::Sub => (OpKind::Sub, vec![]),
            PrimOp::Mul => (OpKind::Mul, vec![]),
            PrimOp::Div => (OpKind::Div, vec![]),
            PrimOp::Rem => (OpKind::Rem, vec![]),
            PrimOp::Lt => (OpKind::Lt, vec![]),
            PrimOp::Leq => (OpKind::Leq, vec![]),
            PrimOp::Gt => (OpKind::Gt, vec![]),
            PrimOp::Geq => (OpKind::Geq, vec![]),
            PrimOp::Eq => (OpKind::Eq, vec![]),
            PrimOp::Neq => (OpKind::Neq, vec![]),
            PrimOp::Shl => (OpKind::Shl, params.to_vec()),
            PrimOp::Shr => (OpKind::Shr, params.to_vec()),
            PrimOp::Dshl => (OpKind::Dshl, vec![]),
            PrimOp::Dshr => (OpKind::Dshr, vec![]),
            PrimOp::Neg => (OpKind::Neg, vec![]),
            PrimOp::Not => (OpKind::Not, vec![]),
            PrimOp::And => (OpKind::And, vec![]),
            PrimOp::Or => (OpKind::Or, vec![]),
            PrimOp::Xor => (OpKind::Xor, vec![]),
            PrimOp::Andr => (OpKind::Andr, vec![]),
            PrimOp::Orr => (OpKind::Orr, vec![]),
            PrimOp::Xorr => (OpKind::Xorr, vec![]),
            PrimOp::Cat => (OpKind::Cat, vec![]),
            PrimOp::Bits => (OpKind::Bits, params.to_vec()),
        };
        let ty = width::infer(kind, &tys, &params)?;
        Ok(self.emit_op(kind, ids, params, ty))
    }

    fn handle_decl(&mut self, stmt: &Stmt) -> Result<(), BuildError> {
        match stmt {
            Stmt::Wire { name, ty, .. } => {
                let ty = port_ty(ty)
                    .ok_or_else(|| BuildError(format!("wire `{name}` not lowered to ground")))?;
                self.declare(name, ty, SignalDef::Const(Bits::zero(ty.width)))?;
            }
            Stmt::Reg {
                name,
                ty,
                clock,
                reset,
                ..
            } => {
                let ty = port_ty(ty)
                    .ok_or_else(|| BuildError(format!("reg `{name}` not lowered to ground")))?;
                let reg_id = RegId(self.netlist.regs.len() as u32);
                let out = self.declare(name, ty, SignalDef::RegOut(reg_id))?;
                let next = self.declare(
                    &format!("{name}$next"),
                    ty,
                    SignalDef::Const(Bits::zero(ty.width)),
                )?;
                self.netlist.regs.push(Register {
                    name: name.clone(),
                    width: ty.width,
                    signed: ty.signed,
                    out,
                    next,
                });
                if let Some((cond, init)) = reset {
                    self.reg_reset
                        .insert(name.clone(), (cond.clone(), init.clone()));
                }
                self.reg_clocks.push((name.clone(), clock.clone()));
            }
            Stmt::Mem(decl) => self.declare_mem(decl)?,
            Stmt::Node { name, value, .. } => {
                let src = self.convert(value)?;
                // Give the interned value a stable public name by aliasing:
                // the node becomes a zero-cost Copy of the computed signal.
                let ty = self.ty_of(src);
                self.declare(
                    name,
                    ty,
                    SignalDef::Op(Op {
                        kind: OpKind::Copy,
                        args: vec![src],
                        params: vec![],
                    }),
                )?;
            }
            _ => {}
        }
        Ok(())
    }

    fn declare_mem(&mut self, decl: &essent_firrtl::MemDecl) -> Result<(), BuildError> {
        let data_ty = port_ty(&decl.data_type).ok_or_else(|| {
            BuildError(format!("memory `{}` data-type must be ground", decl.name))
        })?;
        if decl.depth == 0 {
            return Err(BuildError(format!("memory `{}` has zero depth", decl.name)));
        }
        let aw = addr_width(decl.depth);
        let mem_id = MemId(self.netlist.mems.len() as u32);
        let mut memory = Memory {
            name: decl.name.clone(),
            width: data_ty.width,
            signed: data_ty.signed,
            depth: decl.depth,
            readers: Vec::new(),
            writers: Vec::new(),
        };
        let bit = Ty::new(1, false);
        let addr_ty = Ty::new(aw, false);
        let zero_def = |w: u32| SignalDef::Const(Bits::zero(w));
        for r in &decl.readers {
            let base = format!("{}.{r}", decl.name);
            let addr = self.declare(&format!("{base}.addr"), addr_ty, zero_def(aw))?;
            let en = self.declare(&format!("{base}.en"), bit, zero_def(1))?;
            self.declare(&format!("{base}.clk"), bit, zero_def(1))?;
            let port = memory.readers.len();
            let data = self.declare(
                &format!("{base}.data"),
                data_ty,
                SignalDef::MemRead { mem: mem_id, port },
            )?;
            memory.readers.push(ReadPort {
                name: r.clone(),
                addr,
                en,
                data,
            });
        }
        for w in &decl.writers {
            let base = format!("{}.{w}", decl.name);
            let addr = self.declare(&format!("{base}.addr"), addr_ty, zero_def(aw))?;
            let en = self.declare(&format!("{base}.en"), bit, zero_def(1))?;
            self.declare(&format!("{base}.clk"), bit, zero_def(1))?;
            let data = self.declare(&format!("{base}.data"), data_ty, zero_def(data_ty.width))?;
            let mask = self.declare(&format!("{base}.mask"), bit, zero_def(1))?;
            memory.writers.push(WritePort {
                name: w.clone(),
                addr,
                en,
                mask,
                data,
            });
        }
        // Readwriters lower to a reader + writer pair with wmode gating;
        // the gating ops are created in `finalize` once connects are known.
        for rw in &decl.readwriters {
            let base = format!("{}.{rw}", decl.name);
            let addr = self.declare(&format!("{base}.addr"), addr_ty, zero_def(aw))?;
            let en = self.declare(&format!("{base}.en"), bit, zero_def(1))?;
            self.declare(&format!("{base}.clk"), bit, zero_def(1))?;
            let wmode = self.declare(&format!("{base}.wmode"), bit, zero_def(1))?;
            let wdata = self.declare(&format!("{base}.wdata"), data_ty, zero_def(data_ty.width))?;
            let wmask = self.declare(&format!("{base}.wmask"), bit, zero_def(1))?;
            let port = memory.readers.len();
            let rdata = self.declare(
                &format!("{base}.rdata"),
                data_ty,
                SignalDef::MemRead { mem: mem_id, port },
            )?;
            // Placeholder enables; replaced by gated versions in finalize.
            memory.readers.push(ReadPort {
                name: format!("{rw}$r"),
                addr,
                en,
                data: rdata,
            });
            memory.writers.push(WritePort {
                name: format!("{rw}$w"),
                addr,
                en: wmode,
                mask: wmask,
                data: wdata,
            });
            let _ = (en, wdata);
        }
        self.netlist.mems.push(memory);
        Ok(())
    }

    fn handle_connect(&mut self, stmt: &Stmt) -> Result<(), BuildError> {
        match stmt {
            Stmt::Connect { loc, value, .. } => {
                let key = essent_firrtl::print_expr(loc);
                let Some(&target) = self.names.get(&key) else {
                    return Err(BuildError(format!("connect to unknown sink `{key}`")));
                };
                match self.netlist.signals[target.index()].def {
                    SignalDef::RegOut(_) => {
                        let src = self.convert(value)?;
                        self.reg_drive.insert(key, src);
                    }
                    SignalDef::MemRead { .. } => {
                        return Err(BuildError(format!("cannot drive memory read data `{key}`")));
                    }
                    _ => {
                        let src = self.convert(value)?;
                        let ty = self.ty_of(target);
                        let adapted = self.adapt(src, ty);
                        self.netlist.signals[target.index()].def = SignalDef::Op(Op {
                            kind: OpKind::Copy,
                            args: vec![adapted],
                            params: vec![],
                        });
                    }
                }
            }
            Stmt::Invalidate { .. } => {
                // Leftover invalidates mean "drive zero", which is already
                // the placeholder default.
            }
            Stmt::Stop { name, en, code, .. } => {
                let en = self.convert(en)?;
                self.netlist.stops.push(Stop {
                    name: name.clone(),
                    en,
                    code: *code,
                });
            }
            Stmt::Printf {
                name,
                en,
                fmt,
                args,
                ..
            } => {
                let en = self.convert(en)?;
                let args = args
                    .iter()
                    .map(|a| self.convert(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.netlist.printfs.push(Printf {
                    name: name.clone(),
                    en,
                    fmt: fmt.clone(),
                    args,
                });
            }
            _ => {}
        }
        Ok(())
    }

    fn finalize(&mut self, _module: &essent_firrtl::Module) -> Result<(), BuildError> {
        // Single-clock check: resolve each register's clock through wire
        // copies down to its defining input signal.
        let mut clock_roots: Vec<SignalId> = Vec::new();
        for (reg_name, clock) in self.reg_clocks.clone() {
            let mut id = self
                .convert(&clock)
                .map_err(|e| BuildError(format!("register `{reg_name}` clock: {e}")))?;
            // Chase copy/alias chains to the source.
            let mut hops = 0;
            while let SignalDef::Op(op) = &self.netlist.signals[id.index()].def {
                if op.kind == OpKind::Copy {
                    id = op.args[0];
                    hops += 1;
                    if hops > self.netlist.signals.len() {
                        break;
                    }
                } else {
                    break;
                }
            }
            if !clock_roots.contains(&id) {
                clock_roots.push(id);
            }
        }
        if clock_roots.len() > 1 {
            let names: Vec<&str> = clock_roots
                .iter()
                .map(|&id| self.netlist.signals[id.index()].name.as_str())
                .collect();
            return Err(BuildError(format!(
                "multi-clock designs are not supported (registers clocked by {names:?})"
            )));
        }

        // Register next-values: driven value (or hold), with reset folded in.
        for i in 0..self.netlist.regs.len() {
            let reg = self.netlist.regs[i].clone();
            let ty = Ty::new(reg.width, reg.signed);
            let driven = self.reg_drive.get(&reg.name).copied().unwrap_or(reg.out);
            let driven = self.adapt(driven, ty);
            let final_src = if let Some((cond, init)) = self.reg_reset.get(&reg.name).cloned() {
                let c = self.convert(&cond)?;
                if self.ty_of(c).width != 1 {
                    return Err(BuildError(format!(
                        "reset condition of `{}` must be 1 bit",
                        reg.name
                    )));
                }
                let init = self.convert(&init)?;
                let init = self.adapt(init, ty);
                self.emit_op(OpKind::Mux, vec![c, init, driven], vec![], ty)
            } else {
                driven
            };
            self.netlist.signals[reg.next.index()].def = SignalDef::Op(Op {
                kind: OpKind::Copy,
                args: vec![final_src],
                params: vec![],
            });
        }

        // Readwriter gating: reader enabled when `en & !wmode`, writer when
        // `en & wmode` (mask handled separately).
        for m in 0..self.netlist.mems.len() {
            for r in 0..self.netlist.mems[m].readers.len() {
                let (name, en) = {
                    let port = &self.netlist.mems[m].readers[r];
                    (port.name.clone(), port.en)
                };
                if let Some(base) = name.strip_suffix("$r") {
                    let wmode_name = format!("{}.{base}.wmode", self.netlist.mems[m].name);
                    let wmode = self.names[&wmode_name];
                    let not_w = self.emit_op(OpKind::Not, vec![wmode], vec![], Ty::new(1, false));
                    let gated =
                        self.emit_op(OpKind::And, vec![en, not_w], vec![], Ty::new(1, false));
                    self.netlist.mems[m].readers[r].en = gated;
                }
            }
            for w in 0..self.netlist.mems[m].writers.len() {
                let name = self.netlist.mems[m].writers[w].name.clone();
                if let Some(base) = name.strip_suffix("$w") {
                    let en_name = format!("{}.{base}.en", self.netlist.mems[m].name);
                    let en = self.names[&en_name];
                    let wmode = self.netlist.mems[m].writers[w].en;
                    let gated =
                        self.emit_op(OpKind::And, vec![en, wmode], vec![], Ty::new(1, false));
                    self.netlist.mems[m].writers[w].en = gated;
                }
            }
        }
        Ok(())
    }
}

fn addr_width(depth: usize) -> u32 {
    let mut w = 0u32;
    while (1usize << w) < depth {
        w += 1;
    }
    w.max(1)
}

/// Verifies the combinational graph is acyclic (paper Section II: true
/// combinational loops would need supernode convergence iteration, which
/// the supported subset excludes).
fn check_acyclic(netlist: &Netlist) -> Result<(), BuildError> {
    match crate::graph::topo_order(netlist) {
        Ok(_) => Ok(()),
        Err(cycle) => {
            let names: Vec<&str> = cycle
                .iter()
                .take(8)
                .map(|id| netlist.signal(*id).name.as_str())
                .collect();
            Err(BuildError(format!(
                "combinational cycle through: {}",
                names.join(" -> ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn netlist_of(src: &str) -> Netlist {
        let circuit = essent_firrtl::parse(src).unwrap();
        let lowered = essent_firrtl::passes::lower(circuit).unwrap();
        Netlist::from_circuit(&lowered).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
    }

    #[test]
    fn builds_combinational_pipeline() {
        let n = netlist_of("circuit C :\n  module C :\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<9>\n    o <= add(a, b)\n");
        let o = n.find("o").unwrap();
        assert_eq!(n.signal(o).width, 9);
        // o is a Copy of the interned add.
        match &n.signal(o).def {
            SignalDef::Op(op) => {
                assert_eq!(op.kind, OpKind::Copy);
                let add = &n.signal(op.args[0]);
                match &add.def {
                    SignalDef::Op(op) => assert_eq!(op.kind, OpKind::Add),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cse_interns_identical_expressions() {
        let n = netlist_of("circuit D :\n  module D :\n    input a : UInt<8>\n    input b : UInt<8>\n    output x : UInt<9>\n    output y : UInt<9>\n    x <= add(a, b)\n    y <= add(a, b)\n");
        let adds = n
            .signals()
            .iter()
            .filter(|s| matches!(&s.def, SignalDef::Op(op) if op.kind == OpKind::Add))
            .count();
        assert_eq!(adds, 1, "identical adds must intern to one node");
    }

    #[test]
    fn register_with_reset_folds_mux() {
        let n = netlist_of("circuit R :\n  module R :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<4>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(7)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    q <= r\n");
        assert_eq!(n.regs().len(), 1);
        let reg = &n.regs()[0];
        // next = Copy(mux(reset, 7, tail(add(r, 1))))
        match &n.signal(reg.next).def {
            SignalDef::Op(op) => {
                assert_eq!(op.kind, OpKind::Copy);
                match &n.signal(op.args[0]).def {
                    SignalDef::Op(mux) => assert_eq!(mux.kind, OpKind::Mux),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undriven_register_holds() {
        let n = netlist_of("circuit H :\n  module H :\n    input clock : Clock\n    output q : UInt<4>\n    reg r : UInt<4>, clock\n    q <= r\n");
        let reg = &n.regs()[0];
        match &n.signal(reg.next).def {
            SignalDef::Op(op) => {
                assert_eq!(op.kind, OpKind::Copy);
                assert_eq!(op.args[0], reg.out);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_ports_wire_up() {
        let n = netlist_of("circuit M :\n  module M :\n    input clock : Clock\n    input addr : UInt<3>\n    input wen : UInt<1>\n    input wdata : UInt<8>\n    output rdata : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 8\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n      read-under-write => undefined\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= addr\n    m.w.clk <= clock\n    m.w.en <= wen\n    m.w.addr <= addr\n    m.w.data <= wdata\n    m.w.mask <= UInt<1>(1)\n    rdata <= m.r.data\n");
        assert_eq!(n.mems().len(), 1);
        let m = &n.mems()[0];
        assert_eq!(m.depth, 8);
        assert_eq!(m.readers.len(), 1);
        assert_eq!(m.writers.len(), 1);
        // rdata forwards the MemRead signal.
        let rdata = n.find("rdata").unwrap();
        match &n.signal(rdata).def {
            SignalDef::Op(op) => {
                assert!(matches!(
                    n.signal(op.args[0]).def,
                    SignalDef::MemRead { .. }
                ));
            }
            other => panic!("{other:?}"),
        }
        // The read port depends on addr and en.
        let data_sig = m.readers[0].data;
        let deps = n.deps(data_sig);
        assert!(deps.contains(&m.readers[0].addr));
        assert!(deps.contains(&m.readers[0].en));
    }

    #[test]
    fn head_tail_pad_normalize() {
        let n = netlist_of("circuit N :\n  module N :\n    input a : UInt<8>\n    output h : UInt<3>\n    output t : UInt<5>\n    output p : UInt<12>\n    h <= head(a, 3)\n    t <= tail(a, 3)\n    p <= pad(a, 12)\n");
        let kinds: Vec<OpKind> = n
            .signals()
            .iter()
            .filter_map(|s| match &s.def {
                SignalDef::Op(op) if op.kind != OpKind::Copy => Some(op.kind),
                _ => None,
            })
            .collect();
        // head/tail become Bits; pad becomes Copy (filtered out).
        assert!(kinds.iter().all(|k| *k == OpKind::Bits), "{kinds:?}");
    }

    #[test]
    fn detects_combinational_cycle() {
        let src = "circuit L :\n  module L :\n    output o : UInt<1>\n    wire a : UInt<1>\n    wire b : UInt<1>\n    a <= b\n    b <= a\n    o <= a\n";
        let circuit = essent_firrtl::parse(src).unwrap();
        let lowered = essent_firrtl::passes::lower(circuit).unwrap();
        let err = Netlist::from_circuit(&lowered).unwrap_err();
        assert!(err.0.contains("cycle"), "{err}");
    }

    #[test]
    fn register_feedback_is_not_a_cycle() {
        // r -> add -> r$next is fine: the register split breaks the loop.
        netlist_of("circuit F :\n  module F :\n    input clock : Clock\n    output q : UInt<4>\n    reg r : UInt<4>, clock\n    r <= tail(add(r, UInt<4>(1)), 1)\n    q <= r\n");
    }

    #[test]
    fn rejects_multi_clock() {
        let src = "circuit K :\n  module K :\n    input clk1 : Clock\n    input clk2 : Clock\n    output q : UInt<1>\n    reg a : UInt<1>, clk1\n    reg b : UInt<1>, clk2\n    a <= b\n    b <= a\n    q <= a\n";
        let circuit = essent_firrtl::parse(src).unwrap();
        let lowered = essent_firrtl::passes::lower(circuit).unwrap();
        let err = Netlist::from_circuit(&lowered).unwrap_err();
        assert!(err.0.contains("multi-clock"), "{err}");
    }

    #[test]
    fn stats_and_sinks() {
        let n = netlist_of("circuit S :\n  module S :\n    input clock : Clock\n    input a : UInt<4>\n    output o : UInt<4>\n    reg r : UInt<4>, clock\n    r <= a\n    o <= r\n");
        let stats = n.stats();
        assert_eq!(stats.regs, 1);
        assert!(stats.signals >= 4);
        let sinks = n.sink_signals();
        assert!(sinks.contains(&n.regs()[0].next));
        assert!(sinks.contains(&n.find("o").unwrap()));
    }
}
