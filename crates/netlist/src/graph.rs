//! Graph algorithms over the netlist: topological scheduling, strongly
//! connected components, fan-out construction, and reachability.
//!
//! The combinational graph has an edge `a -> b` when signal `b`'s
//! definition reads signal `a` ([`Netlist::deps`]). Register outputs and
//! inputs are sources; register next-values, memory write fields, and
//! outputs are sinks. Because the builder splits every state element,
//! a well-formed synchronous design yields a DAG here.

use crate::netlist::{Netlist, SignalId};

/// Computes a topological order of all signals (dependencies first).
///
/// # Errors
///
/// On a combinational cycle, returns the signals of one cycle.
pub fn topo_order(netlist: &Netlist) -> Result<Vec<SignalId>, Vec<SignalId>> {
    let n = netlist.signal_count();
    let mut indegree = vec![0u32; n];
    let fanouts = fanout_lists(netlist);
    for (i, d) in indegree.iter_mut().enumerate() {
        *d = netlist.deps(SignalId(i as u32)).len() as u32;
    }
    let mut queue: Vec<SignalId> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(|i| SignalId(i as u32))
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let id = queue[head];
        head += 1;
        order.push(id);
        for &succ in &fanouts[id.index()] {
            indegree[succ.index()] -= 1;
            if indegree[succ.index()] == 0 {
                queue.push(succ);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        // Extract one cycle for the error message: walk predecessors among
        // the unordered residue until a repeat.
        let leftover: Vec<usize> = (0..n).filter(|&i| indegree[i] > 0).collect();
        let mut cycle = Vec::new();
        if let Some(&start) = leftover.first() {
            let mut seen = vec![false; n];
            let mut cur = start;
            loop {
                if seen[cur] {
                    break;
                }
                seen[cur] = true;
                cycle.push(SignalId(cur as u32));
                // Follow any dependency that is also stuck.
                let next = netlist
                    .deps(SignalId(cur as u32))
                    .into_iter()
                    .find(|d| indegree[d.index()] > 0);
                match next {
                    Some(d) => cur = d.index(),
                    None => break,
                }
            }
        }
        Err(cycle)
    }
}

/// Builds the fan-out adjacency lists: `fanouts[a]` holds every signal
/// whose definition reads `a` (duplicates preserved when a signal is read
/// twice — callers that need sets must dedup).
pub fn fanout_lists(netlist: &Netlist) -> Vec<Vec<SignalId>> {
    let n = netlist.signal_count();
    let mut fanouts = vec![Vec::new(); n];
    for i in 0..n {
        let id = SignalId(i as u32);
        for dep in netlist.deps(id) {
            fanouts[dep.index()].push(id);
        }
    }
    fanouts
}

/// Tarjan's strongly-connected-components algorithm (iterative), returning
/// components in reverse topological order.
///
/// Used to diagnose combinational loops and in tests of the acyclicity
/// guarantees. Singleton components without self-loops are "trivial".
pub fn tarjan_scc(netlist: &Netlist) -> Vec<Vec<SignalId>> {
    let n = netlist.signal_count();
    let fanouts = fanout_lists(netlist);
    let mut index = vec![u32::MAX; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    // Iterative DFS with an explicit frame stack.
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    for root in 0..n {
        if index[root] != u32::MAX {
            continue;
        }
        let mut frames = vec![Frame::Enter(root)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut child) => {
                    let mut descended = false;
                    while child < fanouts[v].len() {
                        let w = fanouts[v][child].index();
                        child += 1;
                        if index[w] == u32::MAX {
                            frames.push(Frame::Resume(v, child));
                            frames.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if lowlink[v] == index[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component.push(SignalId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        components.push(component);
                    }
                    // Propagate lowlink to parent.
                    if let Some(Frame::Resume(parent, _)) = frames.last() {
                        let p = *parent;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                }
            }
        }
    }
    components
}

/// Computes the set of signals reachable (transitively, along fan-out
/// edges) from `sources`, including the sources themselves.
pub fn reachable_from(netlist: &Netlist, sources: &[SignalId]) -> Vec<bool> {
    let fanouts = fanout_lists(netlist);
    let mut seen = vec![false; netlist.signal_count()];
    let mut stack: Vec<SignalId> = sources.to_vec();
    for s in sources {
        seen[s.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &succ in &fanouts[id.index()] {
            if !seen[succ.index()] {
                seen[succ.index()] = true;
                stack.push(succ);
            }
        }
    }
    seen
}

/// Computes the set of signals that reach (transitively, along dependency
/// edges) any of `sinks`, including the sinks themselves. This is the
/// "live" set used by dead-code elimination.
pub fn reaching(netlist: &Netlist, sinks: &[SignalId]) -> Vec<bool> {
    let mut seen = vec![false; netlist.signal_count()];
    let mut stack: Vec<SignalId> = sinks.to_vec();
    for s in sinks {
        seen[s.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for dep in netlist.deps(id) {
            if !seen[dep.index()] {
                seen[dep.index()] = true;
                stack.push(dep);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::*;
    use essent_bits::Bits;

    /// Hand-builds a tiny netlist: in -> a -> b -> out, reg feedback.
    fn diamond() -> Netlist {
        let mut n = Netlist::default();
        let mut push = |name: &str, def: SignalDef| {
            let id = SignalId(n.signals.len() as u32);
            n.signals.push(Signal {
                name: name.into(),
                width: 4,
                signed: false,
                def,
            });
            id
        };
        let input = push("in", SignalDef::Input);
        let reg_out = push("r", SignalDef::RegOut(RegId(0)));
        let a = push(
            "a",
            SignalDef::Op(Op {
                kind: OpKind::Add,
                args: vec![input, reg_out],
                params: vec![],
            }),
        );
        let b = push(
            "b",
            SignalDef::Op(Op {
                kind: OpKind::Not,
                args: vec![a],
                params: vec![],
            }),
        );
        let next = push(
            "r$next",
            SignalDef::Op(Op {
                kind: OpKind::Copy,
                args: vec![b],
                params: vec![],
            }),
        );
        n.regs.push(Register {
            name: "r".into(),
            width: 4,
            signed: false,
            out: reg_out,
            next,
        });
        n.inputs.push(input);
        n.outputs.push(b);
        n
    }

    #[test]
    fn topo_order_respects_deps() {
        let n = diamond();
        let order = topo_order(&n).unwrap();
        let pos: Vec<usize> = (0..n.signal_count())
            .map(|i| order.iter().position(|s| s.index() == i).unwrap())
            .collect();
        // a (2) after in (0) and r (1); b (3) after a; next (4) after b.
        assert!(pos[2] > pos[0] && pos[2] > pos[1]);
        assert!(pos[3] > pos[2]);
        assert!(pos[4] > pos[3]);
    }

    #[test]
    fn scc_of_dag_is_all_singletons() {
        let n = diamond();
        let comps = tarjan_scc(&n);
        assert_eq!(comps.len(), n.signal_count());
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn scc_detects_intentional_cycle() {
        let mut n = diamond();
        // Introduce a cycle: redefine `a` to also read `b`.
        if let SignalDef::Op(op) = &mut n.signals[2].def {
            op.args.push(SignalId(3));
        }
        assert!(topo_order(&n).is_err());
        let comps = tarjan_scc(&n);
        assert!(comps.iter().any(|c| c.len() == 2), "{comps:?}");
    }

    #[test]
    fn reachability_both_directions() {
        let n = diamond();
        let from_input = reachable_from(&n, &[SignalId(0)]);
        assert!(from_input[2] && from_input[3] && from_input[4]);
        assert!(!from_input[1], "register output is not downstream of input");
        let live = reaching(&n, &[SignalId(4)]);
        assert!(live.iter().all(|&b| b), "everything feeds r$next");
    }

    #[test]
    fn fanout_lists_match_deps() {
        let n = diamond();
        let fan = fanout_lists(&n);
        assert_eq!(fan[0], vec![SignalId(2)]);
        assert_eq!(fan[2], vec![SignalId(3)]);
    }

    #[test]
    fn topo_handles_const_only() {
        let mut n = Netlist::default();
        n.signals.push(Signal {
            name: "c".into(),
            width: 1,
            signed: false,
            def: SignalDef::Const(Bits::from_u64(1, 1)),
        });
        assert_eq!(topo_order(&n).unwrap().len(), 1);
    }
}
