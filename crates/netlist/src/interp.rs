//! A slow, obviously-correct reference interpreter over the netlist.
//!
//! This is the golden model for the cross-engine equivalence tests: it
//! allocates a [`Bits`] per evaluation and walks the full topological
//! order every cycle, trading all performance for clarity. The optimized
//! engines in `essent-sim` must agree with it bit-for-bit on every signal,
//! every cycle.

use crate::eval::{eval_op, Operand};
use crate::graph;
use crate::netlist::{Netlist, SignalDef, SignalId};
use essent_bits::{words, Bits};

/// Reference simulator: exact FIRRTL cycle semantics, no optimizations.
///
/// # Examples
///
/// ```
/// use essent_netlist::{interp::Interpreter, Netlist};
/// let src = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";
/// let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src)?)?;
/// let netlist = Netlist::from_circuit(&lowered)?;
/// let mut sim = Interpreter::new(&netlist);
/// sim.poke("reset", Bits::from_u64(0, 1));
/// sim.step(5);
/// // Peeks observe the combinational values of the last evaluated cycle
/// // (cycle 4, during which the register still held 4).
/// assert_eq!(sim.peek("q").to_u64(), Some(4));
/// # use essent_bits::Bits;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Interpreter {
    netlist: Netlist,
    order: Vec<SignalId>,
    values: Vec<Bits>,
    reg_state: Vec<Bits>,
    mem_state: Vec<Vec<Bits>>,
    cycle: u64,
    halted: Option<u64>,
    printf_log: Vec<String>,
}

impl Interpreter {
    /// Builds an interpreter with all state zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational cycle (the builder
    /// rejects those, so this only fires on hand-constructed graphs).
    pub fn new(netlist: &Netlist) -> Self {
        let order = graph::topo_order(netlist).expect("netlist must be acyclic");
        let values = netlist
            .signals()
            .iter()
            .map(|s| Bits::zero(s.width))
            .collect();
        let reg_state = netlist.regs().iter().map(|r| Bits::zero(r.width)).collect();
        let mem_state = netlist
            .mems()
            .iter()
            .map(|m| vec![Bits::zero(m.width); m.depth])
            .collect();
        Interpreter {
            netlist: netlist.clone(),
            order,
            values,
            reg_state,
            mem_state,
            cycle: 0,
            halted: None,
            printf_log: Vec::new(),
        }
    }

    /// Sets an input signal's value for subsequent cycles.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown or not an input.
    pub fn poke(&mut self, name: &str, value: Bits) {
        let id = self.netlist.expect_signal(name);
        assert!(
            matches!(self.netlist.signal(id).def, SignalDef::Input),
            "`{name}` is not an input"
        );
        let width = self.netlist.signal(id).width;
        self.values[id.index()] = value.extend(width, false);
    }

    /// Reads a signal's value as of the last evaluated cycle.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn peek(&self, name: &str) -> Bits {
        let id = self.netlist.expect_signal(name);
        self.values[id.index()].clone()
    }

    /// Reads a signal by id.
    pub fn peek_id(&self, id: SignalId) -> &Bits {
        &self.values[id.index()]
    }

    /// Overwrites one memory word (testbench back-door, e.g. program
    /// loading).
    ///
    /// # Errors
    ///
    /// Returns [`MemRefError`] on an unknown memory name or an
    /// out-of-range address (instead of panicking, so harnesses driving
    /// the golden model with external memory maps can surface bad
    /// references as structured diagnostics).
    pub fn write_mem(&mut self, mem: &str, addr: usize, value: Bits) -> Result<(), MemRefError> {
        let id = self
            .netlist
            .find_mem(mem)
            .ok_or_else(|| MemRefError::NoSuchMem {
                mem: mem.to_string(),
            })?;
        let m = &self.netlist.mems()[id.index()];
        if addr >= m.depth {
            return Err(MemRefError::AddrOutOfRange {
                mem: mem.to_string(),
                addr,
                depth: m.depth,
            });
        }
        let w = m.width;
        self.mem_state[id.index()][addr] = value.extend(w, false);
        Ok(())
    }

    /// Reads one memory word (testbench back-door).
    ///
    /// # Errors
    ///
    /// Returns [`MemRefError`] on an unknown memory name or an
    /// out-of-range address.
    pub fn read_mem(&self, mem: &str, addr: usize) -> Result<Bits, MemRefError> {
        let id = self
            .netlist
            .find_mem(mem)
            .ok_or_else(|| MemRefError::NoSuchMem {
                mem: mem.to_string(),
            })?;
        let m = &self.netlist.mems()[id.index()];
        if addr >= m.depth {
            return Err(MemRefError::AddrOutOfRange {
                mem: mem.to_string(),
                addr,
                depth: m.depth,
            });
        }
        Ok(self.mem_state[id.index()][addr].clone())
    }

    /// Simulated cycles completed so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// `Some(code)` once a `stop` has fired.
    pub fn halted(&self) -> Option<u64> {
        self.halted
    }

    /// Messages produced by `printf` statements, in order.
    pub fn printf_log(&self) -> &[String] {
        &self.printf_log
    }

    /// Runs `n` cycles (or fewer if a `stop` fires). Returns the number of
    /// cycles actually simulated.
    pub fn step(&mut self, n: u64) -> u64 {
        for i in 0..n {
            if self.halted.is_some() {
                return i;
            }
            self.eval_cycle();
            self.commit();
            self.cycle += 1;
        }
        n
    }

    /// Evaluates every signal for the current cycle (no state commit).
    fn eval_cycle(&mut self) {
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            let sig = &self.netlist.signal(id);
            let value = match &sig.def {
                SignalDef::Input => continue,
                SignalDef::Const(c) => c.clone(),
                SignalDef::RegOut(r) => self.reg_state[r.index()].clone(),
                SignalDef::MemRead { mem, port } => {
                    let m = &self.netlist.mems()[mem.index()];
                    let p = &m.readers[*port];
                    let en = !self.values[p.en.index()].is_zero();
                    if en {
                        let addr =
                            self.values[p.addr.index()].to_u64().unwrap_or(u64::MAX) as usize;
                        if addr < m.depth {
                            self.mem_state[mem.index()][addr].clone()
                        } else {
                            Bits::zero(m.width)
                        }
                    } else {
                        Bits::zero(m.width)
                    }
                }
                SignalDef::Op(op) => {
                    let operands: Vec<Operand> = op
                        .args
                        .iter()
                        .map(|&a| {
                            let s = self.netlist.signal(a);
                            Operand::new(self.values[a.index()].limbs(), s.width, s.signed)
                        })
                        .collect();
                    let mut dst = vec![0u64; words(sig.width)];
                    eval_op(op.kind, &op.params, &mut dst, sig.width, &operands);
                    Bits::from_limbs(dst, sig.width)
                }
            };
            self.values[id.index()] = value;
        }

        // Side effects observe end-of-cycle combinational values.
        for p in self.netlist.printfs() {
            if !self.values[p.en.index()].is_zero() {
                let args: Vec<Bits> = p
                    .args
                    .iter()
                    .map(|a| self.values[a.index()].clone())
                    .collect();
                self.printf_log.push(format_printf(&p.fmt, &args));
            }
        }
        for s in self.netlist.stops() {
            if !self.values[s.en.index()].is_zero() && self.halted.is_none() {
                self.halted = Some(s.code);
            }
        }
    }

    /// Commits register next-values and memory writes.
    fn commit(&mut self) {
        for (i, reg) in self.netlist.regs().iter().enumerate() {
            self.reg_state[i] = self.values[reg.next.index()].clone();
        }
        for (i, mem) in self.netlist.mems().iter().enumerate() {
            for w in &mem.writers {
                let fire =
                    !self.values[w.en.index()].is_zero() && !self.values[w.mask.index()].is_zero();
                if fire {
                    let addr = self.values[w.addr.index()].to_u64().unwrap_or(u64::MAX) as usize;
                    if addr < mem.depth {
                        self.mem_state[i][addr] =
                            self.values[w.data.index()].extend(mem.width, false);
                    }
                }
            }
        }
    }
}

/// A bad testbench memory reference: the structured form of what used to
/// be a `panic!("no memory named ...")`. `essent-core` converts it into a
/// coded `Diagnostic` via `From`, so simulator-level harnesses report it
/// with the same stable-code machinery as the static verifier (this crate
/// sits below `essent-core` in the dependency order and cannot name the
/// diagnostic types itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemRefError {
    /// No memory with this name exists in the netlist.
    NoSuchMem { mem: String },
    /// The address is at or beyond the memory's depth.
    AddrOutOfRange {
        mem: String,
        addr: usize,
        depth: usize,
    },
}

impl std::fmt::Display for MemRefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemRefError::NoSuchMem { mem } => write!(f, "no memory named `{mem}`"),
            MemRefError::AddrOutOfRange { mem, addr, depth } => {
                write!(f, "address {addr} out of range for `{mem}` (depth {depth})")
            }
        }
    }
}

impl std::error::Error for MemRefError {}

/// Renders a FIRRTL `printf` format string: `%d` (decimal), `%x` (hex),
/// `%b` (binary), `%c` (character), `%%` (literal percent). Unknown
/// directives are emitted verbatim.
pub fn format_printf(fmt: &str, args: &[Bits]) -> String {
    let mut out = String::new();
    let mut arg_iter = args.iter();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('d') => {
                if let Some(a) = arg_iter.next() {
                    out.push_str(&a.to_string());
                }
            }
            Some('x') => {
                if let Some(a) = arg_iter.next() {
                    out.push_str(&format!("{a:x}"));
                }
            }
            Some('b') => {
                if let Some(a) = arg_iter.next() {
                    out.push_str(&format!("{a:b}"));
                }
            }
            Some('c') => {
                if let Some(a) = arg_iter.next() {
                    let byte = a.to_u64().unwrap_or(0) as u8;
                    out.push(byte as char);
                }
            }
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    #[test]
    fn counter_counts() {
        let n = build("circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n");
        let mut sim = Interpreter::new(&n);
        sim.poke("reset", Bits::from_u64(1, 1));
        sim.step(2);
        assert_eq!(sim.peek("q").to_u64(), Some(0));
        sim.poke("reset", Bits::from_u64(0, 1));
        sim.step(10);
        assert_eq!(sim.peek("q").to_u64(), Some(9));
    }

    #[test]
    fn when_mux_behavior() {
        let n = build("circuit W :\n  module W :\n    input c : UInt<1>\n    input a : UInt<4>\n    input b : UInt<4>\n    output o : UInt<4>\n    o <= b\n    when c :\n      o <= a\n");
        let mut sim = Interpreter::new(&n);
        sim.poke("a", Bits::from_u64(5, 4));
        sim.poke("b", Bits::from_u64(9, 4));
        sim.poke("c", Bits::from_u64(1, 1));
        sim.step(1);
        assert_eq!(sim.peek("o").to_u64(), Some(5));
        sim.poke("c", Bits::from_u64(0, 1));
        sim.step(1);
        assert_eq!(sim.peek("o").to_u64(), Some(9));
    }

    #[test]
    fn memory_write_then_read() {
        let n = build("circuit M :\n  module M :\n    input clock : Clock\n    input waddr : UInt<3>\n    input wen : UInt<1>\n    input wdata : UInt<8>\n    input raddr : UInt<3>\n    output rdata : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 8\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= raddr\n    m.w.clk <= clock\n    m.w.en <= wen\n    m.w.addr <= waddr\n    m.w.data <= wdata\n    m.w.mask <= UInt<1>(1)\n    rdata <= m.r.data\n");
        let mut sim = Interpreter::new(&n);
        sim.poke("waddr", Bits::from_u64(3, 3));
        sim.poke("wdata", Bits::from_u64(0xAB, 8));
        sim.poke("wen", Bits::from_u64(1, 1));
        sim.poke("raddr", Bits::from_u64(3, 3));
        sim.step(1);
        // Write committed at end of cycle 0; readable in cycle 1.
        sim.poke("wen", Bits::from_u64(0, 1));
        sim.step(1);
        assert_eq!(sim.peek("rdata").to_u64(), Some(0xAB));
    }

    #[test]
    fn read_during_write_sees_old_value() {
        let n = build("circuit M :\n  module M :\n    input clock : Clock\n    input wen : UInt<1>\n    input wdata : UInt<8>\n    output rdata : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 2\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= UInt<1>(0)\n    m.w.clk <= clock\n    m.w.en <= wen\n    m.w.addr <= UInt<1>(0)\n    m.w.data <= wdata\n    m.w.mask <= UInt<1>(1)\n    rdata <= m.r.data\n");
        let mut sim = Interpreter::new(&n);
        sim.write_mem("m", 0, Bits::from_u64(7, 8)).unwrap();
        sim.poke("wen", Bits::from_u64(1, 1));
        sim.poke("wdata", Bits::from_u64(9, 8));
        sim.step(1);
        // During the write cycle the read port returned the old contents.
        assert_eq!(sim.peek("rdata").to_u64(), Some(7));
        sim.step(1);
        assert_eq!(sim.peek("rdata").to_u64(), Some(9));
    }

    #[test]
    fn stop_halts_simulation() {
        let n = build("circuit S :\n  module S :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<4>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    q <= r\n    stop(clock, eq(r, UInt<4>(5)), 42)\n");
        let mut sim = Interpreter::new(&n);
        sim.poke("reset", Bits::from_u64(0, 1));
        let ran = sim.step(100);
        assert_eq!(sim.halted(), Some(42));
        assert_eq!(ran, 6); // r reaches 5 in cycle index 5; stop after it
    }

    #[test]
    fn printf_renders() {
        let n = build("circuit P :\n  module P :\n    input clock : Clock\n    input en : UInt<1>\n    input x : UInt<8>\n    printf(clock, en, \"x=%d hex=%x\\n\", x, x)\n");
        let mut sim = Interpreter::new(&n);
        sim.poke("en", Bits::from_u64(1, 1));
        sim.poke("x", Bits::from_u64(0x2A, 8));
        sim.step(1);
        assert_eq!(sim.printf_log(), &["x=42 hex=2a\n".to_string()]);
    }

    #[test]
    fn format_printf_directives() {
        let args = vec![Bits::from_u64(65, 8), Bits::from_u64(5, 4)];
        assert_eq!(format_printf("%c%d%%", &args), "A5%");
        assert_eq!(format_printf("%b", &[Bits::from_u64(5, 4)]), "0101");
        assert_eq!(format_printf("%q", &[]), "%q");
    }

    #[test]
    fn dangling_mem_ref_is_a_structured_error() {
        let n = build("circuit M :\n  module M :\n    input clock : Clock\n    input wen : UInt<1>\n    input wdata : UInt<8>\n    output rdata : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 2\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= UInt<1>(0)\n    m.w.clk <= clock\n    m.w.en <= wen\n    m.w.addr <= UInt<1>(0)\n    m.w.data <= wdata\n    m.w.mask <= UInt<1>(1)\n    rdata <= m.r.data\n");
        let mut sim = Interpreter::new(&n);
        // A dangling name is an error value, not a panic.
        assert_eq!(
            sim.write_mem("imem", 0, Bits::from_u64(1, 8)),
            Err(MemRefError::NoSuchMem { mem: "imem".into() })
        );
        assert_eq!(
            sim.read_mem("imem", 0),
            Err(MemRefError::NoSuchMem { mem: "imem".into() })
        );
        // Out-of-range addresses are structured too (both directions).
        assert_eq!(
            sim.write_mem("m", 2, Bits::from_u64(1, 8)),
            Err(MemRefError::AddrOutOfRange {
                mem: "m".into(),
                addr: 2,
                depth: 2
            })
        );
        assert!(sim.read_mem("m", 9).is_err());
        // Valid references still work after the failed ones.
        sim.write_mem("m", 1, Bits::from_u64(0xCD, 8)).unwrap();
        assert_eq!(sim.read_mem("m", 1).unwrap().to_u64(), Some(0xCD));
    }

    #[test]
    fn signed_arithmetic_through_interp() {
        let n = build("circuit G :\n  module G :\n    input a : SInt<8>\n    input b : SInt<8>\n    output lt : UInt<1>\n    output s : SInt<9>\n    lt <= lt(a, b)\n    s <= add(a, b)\n");
        let mut sim = Interpreter::new(&n);
        sim.poke("a", Bits::from_i64(-5, 8));
        sim.poke("b", Bits::from_i64(3, 8));
        sim.step(1);
        assert_eq!(sim.peek("lt").to_u64(), Some(1));
        assert_eq!(sim.peek("s").to_i64(), Some(-2));
    }
}
