//! Core netlist data structures: signals, defining operations, registers,
//! memories, and simulation side effects (stops and printfs).

use essent_bits::Bits;
use std::fmt;

/// Index of a signal in [`Netlist::signals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub u32);

impl SignalId {
    /// The index as a `usize`, for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Index of a register in [`Netlist::regs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

impl RegId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a memory in [`Netlist::mems`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u32);

impl MemId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The operation kinds of the three-address netlist form.
///
/// FIRRTL primops whose semantics reduce to another op are normalized by
/// the builder: `pad`/`asUInt`/`asSInt`/`asClock`/`cvt` become [`Copy`]
/// (extension and reinterpretation are encoded in the destination
/// width/signedness), and `head`/`tail` become [`Bits`].
///
/// [`Copy`]: OpKind::Copy
/// [`Bits`]: OpKind::Bits
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Leq,
    Gt,
    Geq,
    Eq,
    Neq,
    /// Static left shift; `params[0]` is the shift amount.
    Shl,
    /// Static right shift (arithmetic when the operand is signed);
    /// `params[0]` is the shift amount.
    Shr,
    /// Dynamic left shift by the second operand.
    Dshl,
    /// Dynamic right shift by the second operand.
    Dshr,
    /// Arithmetic negation (result is signed, one bit wider).
    Neg,
    Not,
    And,
    Or,
    Xor,
    /// AND-reduction to one bit.
    Andr,
    /// OR-reduction to one bit.
    Orr,
    /// XOR-reduction to one bit.
    Xorr,
    /// Concatenation; the first operand forms the high bits.
    Cat,
    /// Bit extraction; `params` are `[hi, lo]`.
    Bits,
    /// Two-way multiplexer; operands are `[sel, high, low]`.
    Mux,
    /// Width-adapting copy: extends (sign-aware, by the *source*'s
    /// signedness) or truncates the operand to the destination width.
    Copy,
}

impl OpKind {
    /// `true` for operations whose cost scales with operand width and that
    /// the paper counts as "real" simulation work (everything; provided
    /// for symmetry with the overhead counters).
    pub fn is_mux(self) -> bool {
        matches!(self, OpKind::Mux)
    }
}

/// A defining operation: `dst = kind(args, params)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Op {
    pub kind: OpKind,
    pub args: Vec<SignalId>,
    pub params: Vec<u64>,
}

/// How a signal obtains its value each cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum SignalDef {
    /// External input; the testbench pokes it.
    Input,
    /// Compile-time constant.
    Const(Bits),
    /// Computed from other signals.
    Op(Op),
    /// The output of a register (a graph *source*: its value is the state
    /// at the start of the cycle).
    RegOut(RegId),
    /// Combinational read of memory `mem` through reader port `port`.
    MemRead { mem: MemId, port: usize },
}

/// A signal: one node of the design graph.
#[derive(Debug, Clone)]
pub struct Signal {
    pub name: String,
    pub width: u32,
    pub signed: bool,
    pub def: SignalDef,
}

/// A register: split into an output source signal and a next-value sink.
///
/// At the end of each simulated cycle the value of `next` becomes the
/// value of `out`. Synchronous reset is already folded into `next` by the
/// builder (`next = mux(reset, init, connected-value)`).
#[derive(Debug, Clone)]
pub struct Register {
    pub name: String,
    pub width: u32,
    pub signed: bool,
    /// The source signal carrying the current state.
    pub out: SignalId,
    /// The sink signal whose end-of-cycle value becomes the new state.
    pub next: SignalId,
}

/// A combinational-read port of a memory.
#[derive(Debug, Clone)]
pub struct ReadPort {
    pub name: String,
    pub addr: SignalId,
    pub en: SignalId,
    /// The signal carrying the read data (def = [`SignalDef::MemRead`]).
    pub data: SignalId,
}

/// A synchronous write port of a memory: commits at end of cycle when
/// `en & mask`.
#[derive(Debug, Clone)]
pub struct WritePort {
    pub name: String,
    pub addr: SignalId,
    pub en: SignalId,
    pub mask: SignalId,
    pub data: SignalId,
}

/// A memory bank: combinational read, synchronous write (read-latency 0,
/// write-latency 1 — the subset the frontend admits).
#[derive(Debug, Clone)]
pub struct Memory {
    pub name: String,
    pub width: u32,
    pub signed: bool,
    pub depth: usize,
    pub readers: Vec<ReadPort>,
    pub writers: Vec<WritePort>,
}

/// A `stop` side effect: when `en` is one at the end of a cycle the
/// simulation halts with `code`.
#[derive(Debug, Clone)]
pub struct Stop {
    pub name: String,
    pub en: SignalId,
    pub code: u64,
}

/// A `printf` side effect: when `en` is one at the end of a cycle, `fmt`
/// is rendered with the argument signal values.
#[derive(Debug, Clone)]
pub struct Printf {
    pub name: String,
    pub en: SignalId,
    pub fmt: String,
    pub args: Vec<SignalId>,
}

/// The flat design graph.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    pub(crate) signals: Vec<Signal>,
    pub(crate) regs: Vec<Register>,
    pub(crate) mems: Vec<Memory>,
    pub(crate) inputs: Vec<SignalId>,
    pub(crate) outputs: Vec<SignalId>,
    pub(crate) stops: Vec<Stop>,
    pub(crate) printfs: Vec<Printf>,
    /// The circuit's name (for reports and generated code).
    pub name: String,
}

impl Netlist {
    /// Number of signals (graph nodes).
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of operand references (graph edges).
    pub fn edge_count(&self) -> usize {
        self.signals
            .iter()
            .map(|s| self.deps_of(s).len())
            .sum::<usize>()
    }

    /// All signals, indexed by [`SignalId`].
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// One signal.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id.index()]
    }

    /// Mutable access to one signal, for optimization passes and test
    /// harnesses that need to adjust a declaration in place.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn signal_mut(&mut self, id: SignalId) -> &mut Signal {
        &mut self.signals[id.index()]
    }

    /// All registers.
    pub fn regs(&self) -> &[Register] {
        &self.regs
    }

    /// All memories.
    pub fn mems(&self) -> &[Memory] {
        &self.mems
    }

    /// External input signals, in port order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// External output signals, in port order.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// Stop side effects.
    pub fn stops(&self) -> &[Stop] {
        &self.stops
    }

    /// Printf side effects.
    pub fn printfs(&self) -> &[Printf] {
        &self.printfs
    }

    /// Finds a signal by name.
    pub fn find(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| SignalId(i as u32))
    }

    /// Finds a signal by name, or explains the failure: the error names
    /// the closest existing signal (by edit distance), which turns the
    /// classic "no signal named `io_out`" dead end into an actionable
    /// typo diagnosis.
    pub fn lookup(&self, name: &str) -> Result<SignalId, String> {
        match self.find(name) {
            Some(id) => Ok(id),
            None => Err(match self.nearest_signal(name) {
                Some(near) => {
                    format!("no signal named `{name}` (did you mean `{near}`?)")
                }
                None => format!("no signal named `{name}` (netlist has no signals)"),
            }),
        }
    }

    /// [`Netlist::lookup`] for call sites that treat a bad name as a
    /// caller bug: panics with the suggesting message.
    pub fn expect_signal(&self, name: &str) -> SignalId {
        self.lookup(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The existing signal name closest to `name` by Levenshtein
    /// distance (ties broken by first appearance).
    fn nearest_signal(&self, name: &str) -> Option<&str> {
        self.signals
            .iter()
            .map(|s| (edit_distance(name, &s.name), s.name.as_str()))
            .min_by_key(|&(d, _)| d)
            .map(|(_, n)| n)
    }

    /// Finds a memory by name.
    pub fn find_mem(&self, name: &str) -> Option<MemId> {
        self.mems
            .iter()
            .position(|m| m.name == name)
            .map(|i| MemId(i as u32))
    }

    /// The combinational dependencies of a signal: the signals that must
    /// be evaluated before it within a cycle.
    ///
    /// Register outputs have none (their value is state); memory reads
    /// depend on their address and enable.
    pub fn deps_of(&self, signal: &Signal) -> Vec<SignalId> {
        match &signal.def {
            SignalDef::Input | SignalDef::Const(_) | SignalDef::RegOut(_) => Vec::new(),
            SignalDef::Op(op) => op.args.clone(),
            SignalDef::MemRead { mem, port } => {
                let p = &self.mems[mem.index()].readers[*port];
                vec![p.addr, p.en]
            }
        }
    }

    /// The combinational dependencies of the signal with the given id.
    pub fn deps(&self, id: SignalId) -> Vec<SignalId> {
        self.deps_of(&self.signals[id.index()])
    }

    /// Every *sink* of the design: signals whose end-of-cycle values are
    /// observed (register next-values, memory write-port fields, external
    /// outputs, stop/printf enables and arguments). Dead-code elimination
    /// preserves everything reachable from these.
    pub fn sink_signals(&self) -> Vec<SignalId> {
        let mut sinks = Vec::new();
        for reg in &self.regs {
            sinks.push(reg.next);
        }
        for mem in &self.mems {
            for w in &mem.writers {
                sinks.extend([w.addr, w.en, w.mask, w.data]);
            }
            for r in &mem.readers {
                sinks.extend([r.addr, r.en]);
            }
        }
        sinks.extend(self.outputs.iter().copied());
        for s in &self.stops {
            sinks.push(s.en);
        }
        for p in &self.printfs {
            sinks.push(p.en);
            sinks.extend(p.args.iter().copied());
        }
        sinks
    }

    /// Summary statistics used by the Table I reproduction.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats {
            signals: self.signal_count(),
            edges: self.edge_count(),
            regs: self.regs.len(),
            mems: self.mems.len(),
            mem_bits: self.mems.iter().map(|m| m.depth * m.width as usize).sum(),
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
        }
    }
}

/// Levenshtein edit distance, single-row dynamic program. Signal name
/// sets are small enough (≤ a few hundred thousand short names) that the
/// O(|a|·|b|) cost per name only matters on the already-failing path.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev_diag + usize::from(ca != cb);
            prev_diag = row[j + 1];
            row[j + 1] = sub.min(row[j] + 1).min(prev_diag + 1);
        }
    }
    row[b.len()]
}

/// Size statistics of a netlist (the Table I columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetlistStats {
    pub signals: usize,
    pub edges: usize,
    pub regs: usize,
    pub mems: usize,
    pub mem_bits: usize,
    pub inputs: usize,
    pub outputs: usize,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, {} regs, {} mems ({} bits)",
            self.signals, self.edges, self.regs, self.mems, self.mem_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::edit_distance;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("io_out", "io_outs"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
