//! Dataflow analysis over the netlist: per-signal **known bits** and
//! **value ranges** (forward), plus **demanded bits** (backward).
//!
//! The combinational graph is acyclic, so one topological sweep
//! propagates abstract values from sources (inputs, constants, register
//! outputs, memory reads) to sinks. Cycles exist only through register
//! state: a register's output this cycle is its next-value from the last
//! cycle. [`analyze`] closes those feedback arcs by fixpoint iteration —
//! registers start at their reset value (all engines zero-initialize
//! state), each sweep joins the next-value's abstract value into the
//! register's, and iteration stops when no register changes.
//!
//! Joins only *widen* register values, but the range component can climb
//! long chains (a counter's interval grows by one per sweep), so after
//! [`RANGE_WIDEN_SWEEP`] sweeps any still-changing register has its range
//! widened to the full domain, and after [`TOP_WIDEN_SWEEP`] sweeps it is
//! dropped to ⊤ outright. Both accelerations lose precision, never
//! soundness. [`MAX_SWEEPS`] is a defensive hard cap.
//!
//! Consumers:
//! * `opt::narrow` — shrinks signal widths the analysis proves unused;
//! * `opt::const_prop` — folds ops decided by partially-known bits;
//! * `essent-verify` — surfaces the facts as `L0006`–`L0009` lints.

pub mod absval;
pub mod demand;
pub mod transfer;

pub use absval::AbsVal;

use crate::graph;
use crate::netlist::{Netlist, SignalDef, SignalId};
use essent_bits::Bits;

/// Sweep after which still-changing registers get their range widened.
pub const RANGE_WIDEN_SWEEP: usize = 4;
/// Sweep after which still-changing registers are dropped to ⊤.
pub const TOP_WIDEN_SWEEP: usize = 8;
/// Hard cap on fixpoint sweeps (defensive; widening converges sooner).
pub const MAX_SWEEPS: usize = 16;

/// The result of [`analyze`]: abstract facts for every signal.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-signal abstract value (known bits + range), indexed by
    /// `SignalId::index()`.
    pub values: Vec<AbsVal>,
    /// Per-signal demanded width: how many low bits any observable sink
    /// can distinguish. See [`demand::demanded_widths`].
    pub demanded: Vec<u32>,
    /// Number of forward sweeps the register fixpoint took.
    pub sweeps: usize,
}

impl Analysis {
    /// The abstract value of `id`.
    pub fn value(&self, id: SignalId) -> &AbsVal {
        &self.values[id.index()]
    }

    /// The demanded width of `id`.
    pub fn demanded(&self, id: SignalId) -> u32 {
        self.demanded[id.index()]
    }
}

/// Runs the forward known-bits/range analysis and the backward
/// demanded-bits analysis. `Err` returns the combinational cycle if the
/// graph is not acyclic (impossible for netlists built through
/// `Netlist::from_circuit`, which rejects cycles).
pub fn analyze(netlist: &Netlist) -> Result<Analysis, Vec<SignalId>> {
    let order = graph::topo_order(netlist)?;
    let mut values: Vec<AbsVal> = netlist
        .signals()
        .iter()
        .map(|s| AbsVal::top(s.width, s.signed))
        .collect();
    // Registers start at their reset/zero-initialized state.
    let mut reg_abs: Vec<AbsVal> = netlist
        .regs()
        .iter()
        .map(|r| AbsVal::exact(&Bits::zero(r.width), r.signed))
        .collect();

    let mut sweeps = 0;
    loop {
        sweeps += 1;
        sweep(netlist, &order, &reg_abs, &mut values);
        let mut changed = false;
        for (i, reg) in netlist.regs().iter().enumerate() {
            let next = transfer::cast(&values[reg.next.index()], reg.width, reg.signed);
            let mut joined = reg_abs[i].join(&next);
            if joined != reg_abs[i] {
                if sweeps >= TOP_WIDEN_SWEEP {
                    joined = AbsVal::top(reg.width, reg.signed);
                } else if sweeps >= RANGE_WIDEN_SWEEP {
                    joined.widen_range();
                }
                if joined != reg_abs[i] {
                    reg_abs[i] = joined;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        if sweeps >= MAX_SWEEPS {
            // Defensive: give up on precision, stay sound.
            for (i, reg) in netlist.regs().iter().enumerate() {
                reg_abs[i] = AbsVal::top(reg.width, reg.signed);
            }
            sweeps += 1;
            sweep(netlist, &order, &reg_abs, &mut values);
            break;
        }
    }

    let demanded = demand::demanded_widths(netlist, &order);
    Ok(Analysis {
        values,
        demanded,
        sweeps,
    })
}

/// One forward pass in topological order.
fn sweep(netlist: &Netlist, order: &[SignalId], reg_abs: &[AbsVal], values: &mut [AbsVal]) {
    for &id in order {
        let sig = netlist.signal(id);
        let v = match &sig.def {
            SignalDef::Input => AbsVal::top(sig.width, sig.signed),
            SignalDef::Const(c) => AbsVal::exact(c, sig.signed),
            SignalDef::RegOut(r) => transfer::cast(&reg_abs[r.index()], sig.width, sig.signed),
            // Memory contents are not tracked; reads are opaque.
            SignalDef::MemRead { .. } => AbsVal::top(sig.width, sig.signed),
            SignalDef::Op(op) => {
                let srcs: Vec<&AbsVal> = op.args.iter().map(|a| &values[a.index()]).collect();
                transfer::transfer(op.kind, &op.params, sig.width, sig.signed, &srcs)
            }
        };
        values[id.index()] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::build_test_netlist;

    fn analyzed(src: &str) -> (Netlist, Analysis) {
        let n = build_test_netlist(src);
        let a = analyze(&n).expect("acyclic");
        (n, a)
    }

    #[test]
    fn and_mask_pins_upper_bits() {
        let (n, a) = analyzed(
            "circuit M :\n  module M :\n    input x : UInt<8>\n    output o : UInt<8>\n    node m = and(x, UInt<8>(15))\n    o <= m\n",
        );
        let v = a.value(n.expect_signal("m"));
        for i in 4..8 {
            assert_eq!(v.bit(i), Some(false), "bit {i}");
        }
        assert_eq!(v.significant_width(), 4);
    }

    #[test]
    fn counter_register_range_converges() {
        // r <= mux(eq(r, 9), 0, add(r, 1) truncated): r stays in [0, 9].
        let src = "circuit K :\n  module K :\n    input clock : Clock\n    output o : UInt<4>\n    reg r : UInt<4>, clock\n    node wrap = eq(r, UInt<4>(9))\n    node inc = bits(add(r, UInt<4>(1)), 3, 0)\n    r <= mux(wrap, UInt<4>(0), inc)\n    o <= r\n";
        let (n, a) = analyzed(src);
        let v = a.value(n.regs()[0].out);
        // With widening the range may blow to the domain, but the value
        // must at least stay sound and the fixpoint must terminate.
        assert!(a.sweeps <= MAX_SWEEPS + 1);
        assert!(v.contains(&Bits::from_u64(9, 4)));
        assert!(v.contains(&Bits::from_u64(0, 4)));
    }

    #[test]
    fn stuck_register_stays_exact_zero() {
        let src = "circuit Z :\n  module Z :\n    input clock : Clock\n    output o : UInt<8>\n    reg r : UInt<8>, clock\n    r <= r\n    o <= r\n";
        let (n, a) = analyzed(src);
        let v = a.value(n.regs()[0].out);
        assert_eq!(v.as_singleton(), Some(Bits::zero(8)));
        assert_eq!(a.sweeps, 1);
    }

    #[test]
    fn constant_comparison_is_decided() {
        let (n, a) = analyzed(
            "circuit C :\n  module C :\n    input x : UInt<8>\n    output o : UInt<1>\n    node low = and(x, UInt<8>(15))\n    node c = lt(low, UInt<8>(200))\n    o <= c\n",
        );
        let v = a.value(n.expect_signal("c"));
        assert_eq!(v.as_singleton(), Some(Bits::from_u64(1, 1)));
    }
}
