//! Backward demanded-bits: how many low bits of each signal any
//! observer can actually distinguish.
//!
//! `demanded[s] = d` means no sink's observable value changes if bits
//! `[d, width)` of `s` are replaced by anything — the dual of the
//! forward known-bits facts, and the license `opt::narrow` uses to
//! truncate unsigned signals.
//!
//! The per-operation rules follow bit dependence under the kernels'
//! operand-extension semantics:
//!
//! * modular arithmetic (`add`/`sub`/`mul`/`neg`) and bitwise ops only
//!   let operand bit `i` influence result bits `>= i` — operands need
//!   `d` bits when the result needs `d`;
//! * numeric ops (comparisons, `div`/`rem`, reductions, `dshr`) read the
//!   whole value;
//! * `cat` is positional (operand widths define the layout) — full;
//! * sign-extension reads the operand's top bit wherever the result is
//!   read, so any signed-extended operand is demanded in full.
//!
//! Register feedback (`out` demanded ⇒ `next` demanded) makes the
//! problem cyclic; demands grow monotonically from zero, so a few
//! reverse-topological sweeps reach the fixpoint. A defensive sweep cap
//! falls back to full demand (which disables narrowing, never breaks
//! it).

use crate::netlist::{Netlist, OpKind, Signal, SignalDef, SignalId};

/// Sweep cap; demands saturate to declared widths if ever exceeded.
const MAX_SWEEPS: usize = 64;

/// Computes the demanded width of every signal. `order` must be a
/// topological order of the combinational graph.
pub fn demanded_widths(netlist: &Netlist, order: &[SignalId]) -> Vec<u32> {
    let mut demand = vec![0u32; netlist.signal_count()];
    let full = |demand: &mut Vec<u32>, id: SignalId| {
        demand[id.index()] = netlist.signal(id).width;
    };

    // Externally observable sinks need every declared bit. Register
    // next-values are *not* seeded here: they are only observed through
    // the register, which forwards exactly the demand on its output.
    for &o in netlist.outputs() {
        full(&mut demand, o);
    }
    for s in netlist.stops() {
        full(&mut demand, s.en);
    }
    for p in netlist.printfs() {
        full(&mut demand, p.en);
        for &a in &p.args {
            full(&mut demand, a);
        }
    }
    for m in netlist.mems() {
        for r in &m.readers {
            full(&mut demand, r.addr);
            full(&mut demand, r.en);
        }
        for w in &m.writers {
            full(&mut demand, w.addr);
            full(&mut demand, w.en);
            full(&mut demand, w.mask);
            full(&mut demand, w.data);
        }
    }

    for sweep in 0.. {
        if sweep >= MAX_SWEEPS {
            // Defensive: saturate everything (sound — disables narrowing).
            for (i, s) in netlist.signals().iter().enumerate() {
                demand[i] = s.width;
            }
            break;
        }
        let mut changed = false;
        for reg in netlist.regs() {
            let d = demand[reg.out.index()];
            if demand[reg.next.index()] < d {
                demand[reg.next.index()] = d.min(netlist.signal(reg.next).width);
                changed = true;
            }
        }
        for &id in order.iter().rev() {
            let d = demand[id.index()];
            if d == 0 {
                continue;
            }
            let sig = netlist.signal(id);
            let SignalDef::Op(op) = &sig.def else {
                continue;
            };
            let mut bump = |demand: &mut Vec<u32>, arg: SignalId, want: u32| {
                let cap = netlist.signal(arg).width;
                let want = want.min(cap);
                if demand[arg.index()] < want {
                    demand[arg.index()] = want;
                    changed = true;
                }
            };
            use OpKind::*;
            match op.kind {
                Add | Sub | Mul | Neg | Not | And | Or | Xor => {
                    // These extend operands with the first operand's
                    // signedness; sign extension reads the top bit.
                    let w = if netlist.signal(op.args[0]).signed {
                        u32::MAX
                    } else {
                        d
                    };
                    for &a in &op.args {
                        bump(&mut demand, a, w);
                    }
                }
                Shl => {
                    bump(
                        &mut demand,
                        op.args[0],
                        d.saturating_sub(op.params[0] as u32),
                    );
                }
                Shr => {
                    let w = if netlist.signal(op.args[0]).signed {
                        u32::MAX
                    } else {
                        d.saturating_add(op.params[0].min(u32::MAX as u64) as u32)
                    };
                    bump(&mut demand, op.args[0], w);
                }
                Dshl => {
                    bump(&mut demand, op.args[0], d);
                    bump(&mut demand, op.args[1], u32::MAX);
                }
                Bits => {
                    let lo = op.params[1] as u32;
                    let hi = op.params[0] as u32;
                    bump(&mut demand, op.args[0], (lo + d).min(hi + 1));
                }
                Mux => {
                    bump(&mut demand, op.args[0], 1);
                    for &way in &op.args[1..] {
                        let w = if netlist.signal(way).signed {
                            u32::MAX
                        } else {
                            d
                        };
                        bump(&mut demand, way, w);
                    }
                }
                Copy => {
                    let w = if netlist.signal(op.args[0]).signed {
                        u32::MAX
                    } else {
                        d
                    };
                    bump(&mut demand, op.args[0], w);
                }
                // Numeric and positional readers: the whole value.
                Lt | Leq | Gt | Geq | Eq | Neq | Div | Rem | Dshr | Cat | Andr | Orr | Xorr => {
                    for &a in &op.args {
                        bump(&mut demand, a, u32::MAX);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    debug_assert!(netlist
        .signals()
        .iter()
        .zip(&demand)
        .all(|(s, &d): (&Signal, _)| d <= s.width));
    demand
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use crate::opt::build_test_netlist;

    fn demands(src: &str) -> (Netlist, Vec<u32>) {
        let n = build_test_netlist(src);
        let order = graph::topo_order(&n).unwrap();
        let d = demanded_widths(&n, &order);
        (n, d)
    }

    #[test]
    fn truncation_limits_upstream_demand() {
        // add at 33 bits immediately truncated to 32: only 32 demanded.
        let (n, d) = demands(
            "circuit T :\n  module T :\n    input a : UInt<32>\n    output o : UInt<32>\n    node wide = add(a, UInt<32>(1))\n    o <= bits(wide, 31, 0)\n",
        );
        let wide = n.expect_signal("wide");
        assert_eq!(n.signal(wide).width, 33);
        assert_eq!(d[wide.index()], 32);
    }

    #[test]
    fn comparisons_demand_everything() {
        let (n, d) = demands(
            "circuit C :\n  module C :\n    input a : UInt<16>\n    output o : UInt<1>\n    node t = add(a, a)\n    o <= lt(t, UInt<8>(3))\n",
        );
        let t = n.expect_signal("t");
        assert_eq!(d[t.index()], n.signal(t).width);
    }

    #[test]
    fn register_feedback_propagates_demand() {
        // Register output feeds a 4-bit extraction only; the next-value
        // cone needs just 4 bits.
        let (n, d) = demands(
            "circuit R :\n  module R :\n    input clock : Clock\n    input a : UInt<8>\n    output o : UInt<4>\n    reg r : UInt<8>, clock\n    r <= a\n    o <= bits(r, 3, 0)\n",
        );
        let r = n.regs()[0].out;
        assert_eq!(d[r.index()], 4);
        let next = n.regs()[0].next;
        assert_eq!(d[next.index()], 4);
    }
}
