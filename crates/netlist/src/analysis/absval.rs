//! The abstract value domain: a known-bits mask pair plus a numeric
//! interval.
//!
//! An [`AbsVal`] describes the set of concrete values a signal can take:
//! `zeros`/`ones` are bit masks of positions proven to hold 0/1 (LLVM's
//! `KnownBits` shape), and `range` is an inclusive numeric interval under
//! the signal's own signedness. Both components are maintained together
//! and re-tightened against each other by [`AbsVal::canonicalize`], so a
//! range-only fact (e.g. from a comparison-driven transfer) still yields
//! known upper zero bits and vice versa.
//!
//! Ranges are tracked in `i128` and therefore only for widths up to
//! [`RANGE_MAX_WIDTH`]; wider signals fall back to masks alone, which is
//! sound (masks are never derived from an absent range).

use essent_bits::{top_mask, words, Bits};

/// Widest signal for which a numeric `i128` interval is tracked.
/// 120 bits leaves headroom so interval arithmetic on two in-domain
/// values cannot overflow `i128` undetected (checked ops are still used).
pub const RANGE_MAX_WIDTH: u32 = 120;

/// Abstract value: known bits plus an optional numeric interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsVal {
    /// Width of the described signal in bits.
    pub width: u32,
    /// Signedness under which `range` is interpreted.
    pub signed: bool,
    /// Mask of bits proven zero (normalized: bits `>= width` clear).
    pub zeros: Vec<u64>,
    /// Mask of bits proven one (disjoint from `zeros`).
    pub ones: Vec<u64>,
    /// Inclusive numeric interval, when `width <= RANGE_MAX_WIDTH`.
    pub range: Option<(i128, i128)>,
}

/// Reads bit `i` of a mask vector; out-of-range positions read 0.
#[inline]
fn mask_bit(mask: &[u64], i: u32) -> bool {
    let limb = (i / 64) as usize;
    limb < mask.len() && (mask[limb] >> (i % 64)) & 1 == 1
}

#[inline]
fn set_mask_bit(mask: &mut [u64], i: u32) {
    mask[(i / 64) as usize] |= 1u64 << (i % 64);
}

/// The representable interval of a `(width, signed)` type.
pub fn domain(width: u32, signed: bool) -> (i128, i128) {
    debug_assert!(width <= RANGE_MAX_WIDTH);
    if width == 0 {
        (0, 0)
    } else if signed {
        (-(1i128 << (width - 1)), (1i128 << (width - 1)) - 1)
    } else {
        (0, (1i128 << width) - 1)
    }
}

/// Numeric value of a normalized limb pattern under `(width, signed)`.
/// Only valid for `width <= RANGE_MAX_WIDTH`.
pub fn value_of(limbs: &[u64], width: u32, signed: bool) -> i128 {
    if width == 0 {
        return 0;
    }
    let mut v: i128 = 0;
    for i in (0..words(width)).rev() {
        v = (v << 64) | limbs[i] as i128;
    }
    if signed && mask_bit(limbs, width - 1) {
        v - (1i128 << width)
    } else {
        v
    }
}

impl AbsVal {
    /// No information beyond the type: every bit unknown, range = domain.
    pub fn top(width: u32, signed: bool) -> AbsVal {
        let n = words(width);
        let range = (width <= RANGE_MAX_WIDTH).then(|| domain(width, signed));
        AbsVal {
            width,
            signed,
            zeros: vec![0; n],
            ones: vec![0; n],
            range,
        }
    }

    /// The singleton abstract value for one concrete pattern.
    pub fn exact(value: &Bits, signed: bool) -> AbsVal {
        let width = value.width();
        let n = words(width);
        let mut zeros = vec![0u64; n];
        for (i, z) in zeros.iter_mut().enumerate() {
            *z = !value.limbs()[i];
        }
        if let Some(last) = zeros.last_mut() {
            *last &= top_mask(width);
        }
        if width == 0 {
            zeros[0] = 0;
        }
        let range = (width <= RANGE_MAX_WIDTH).then(|| {
            let v = value_of(value.limbs(), width, signed);
            (v, v)
        });
        AbsVal {
            width,
            signed,
            zeros,
            ones: value.limbs().to_vec(),
            range,
        }
    }

    /// What is known about bit `i`: `Some(b)` when proven, `None` when
    /// unknown. Positions `>= width` are `None` (callers apply the
    /// extension rule appropriate to the reading operation).
    pub fn bit(&self, i: u32) -> Option<bool> {
        if i >= self.width {
            return None;
        }
        if mask_bit(&self.zeros, i) {
            Some(false)
        } else if mask_bit(&self.ones, i) {
            Some(true)
        } else {
            None
        }
    }

    /// `Some(value)` when every bit is known (or the range is a point).
    pub fn as_singleton(&self) -> Option<Bits> {
        let mut all_known = true;
        for i in 0..words(self.width) {
            let covered = self.zeros[i] | self.ones[i];
            let want = if self.width == 0 {
                0
            } else if i + 1 == words(self.width) {
                top_mask(self.width)
            } else {
                u64::MAX
            };
            if covered & want != want {
                all_known = false;
                break;
            }
        }
        if all_known {
            return Some(Bits::from_limbs(self.ones.clone(), self.width));
        }
        if let Some((lo, hi)) = self.range {
            if lo == hi {
                return Some(bits_of_value(lo, self.width));
            }
        }
        None
    }

    /// `true` when the concrete pattern is a member of this abstract set.
    pub fn contains(&self, value: &Bits) -> bool {
        debug_assert_eq!(value.width(), self.width);
        for i in 0..words(self.width) {
            if self.zeros[i] & value.limbs()[i] != 0 {
                return false;
            }
            if self.ones[i] & !value.limbs()[i] != 0 {
                return false;
            }
        }
        if let Some((lo, hi)) = self.range {
            let v = value_of(value.limbs(), self.width, self.signed);
            if v < lo || v > hi {
                return false;
            }
        }
        true
    }

    /// Least upper bound: keeps only facts true of both inputs.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        debug_assert_eq!(self.width, other.width);
        debug_assert_eq!(self.signed, other.signed);
        let zeros = self
            .zeros
            .iter()
            .zip(&other.zeros)
            .map(|(a, b)| a & b)
            .collect();
        let ones = self
            .ones
            .iter()
            .zip(&other.ones)
            .map(|(a, b)| a & b)
            .collect();
        let range = match (self.range, other.range) {
            (Some((al, ah)), Some((bl, bh))) => Some((al.min(bl), ah.max(bh))),
            _ => None,
        };
        let mut out = AbsVal {
            width: self.width,
            signed: self.signed,
            zeros,
            ones,
            range,
        };
        out.canonicalize();
        out
    }

    /// Drops the numeric interval back to the full domain (range
    /// widening), keeping the known-bit masks.
    pub fn widen_range(&mut self) {
        self.range = (self.width <= RANGE_MAX_WIDTH).then(|| domain(self.width, self.signed));
        self.canonicalize();
    }

    /// The numeric interval implied by the known-bit masks alone, under
    /// an arbitrary signedness (not necessarily `self.signed`).
    /// `None` when the width exceeds [`RANGE_MAX_WIDTH`].
    pub fn mask_range(&self, signed: bool) -> Option<(i128, i128)> {
        if self.width > RANGE_MAX_WIDTH {
            return None;
        }
        if self.width == 0 {
            return Some((0, 0));
        }
        // Minimum: unknown bits 0 — except a signed unknown sign bit,
        // which is minimized by setting it. Maximum: the mirror image.
        let mut min_limbs = self.ones.clone();
        let mut max_limbs = vec![0u64; words(self.width)];
        for (i, m) in max_limbs.iter_mut().enumerate() {
            *m = self.ones[i] | !self.zeros[i];
        }
        if let Some(last) = max_limbs.last_mut() {
            *last &= top_mask(self.width);
        }
        if signed && self.bit(self.width - 1).is_none() {
            set_mask_bit(&mut min_limbs, self.width - 1);
            let limb = ((self.width - 1) / 64) as usize;
            max_limbs[limb] &= !(1u64 << ((self.width - 1) % 64));
        }
        Some((
            value_of(&min_limbs, self.width, signed),
            value_of(&max_limbs, self.width, signed),
        ))
    }

    /// The numeric interval under `signed`: the tightest of the stored
    /// range (when its interpretation matches) and the mask-implied one.
    pub fn num_range(&self, signed: bool) -> Option<(i128, i128)> {
        let mut best = self.mask_range(signed)?;
        if signed == self.signed {
            if let Some((lo, hi)) = self.range {
                best = (best.0.max(lo), best.1.min(hi));
            }
        }
        Some(best)
    }

    /// Re-tightens masks and range against each other and restores the
    /// representation invariants.
    pub fn canonicalize(&mut self) {
        // Masks stay within the width and disjoint (the transfer
        // functions only ever produce sound facts; a contradiction
        // would mean unreachable code, where anything is sound — keep
        // the zero claim deterministically).
        if let (Some(z), Some(o)) = (self.zeros.last_mut(), self.ones.last_mut()) {
            let m = top_mask(self.width);
            *z &= m;
            *o &= m;
        }
        if self.width == 0 {
            self.zeros[0] = 0;
            self.ones[0] = 0;
        }
        for i in 0..self.zeros.len() {
            self.ones[i] &= !self.zeros[i];
        }
        if self.width > RANGE_MAX_WIDTH {
            self.range = None;
            return;
        }
        // Intersect the stored range with the mask-implied interval and
        // clamp to the domain.
        let (dlo, dhi) = domain(self.width, self.signed);
        let (mlo, mhi) = self
            .mask_range(self.signed)
            .expect("width within range domain");
        let (mut lo, mut hi) = self.range.unwrap_or((dlo, dhi));
        lo = lo.max(mlo).max(dlo);
        hi = hi.min(mhi).min(dhi);
        if lo > hi {
            // Contradictory facts (unreachable value set): collapse to
            // the mask-implied interval to stay deterministic.
            lo = mlo;
            hi = mhi;
        }
        self.range = Some((lo, hi));
        // Range => leading known zeros: a provably nonnegative value
        // below 2^k has bits [k, width) zero (including the sign
        // position for signed types, which is what makes narrowing by
        // sign-copy sound later).
        if lo >= 0 {
            let k = bit_len(hi);
            for i in k..self.width {
                if !mask_bit(&self.ones, i) {
                    set_mask_bit(&mut self.zeros, i);
                }
            }
        }
        // A point interval fixes every bit.
        if lo == hi {
            let v = bits_of_value(lo, self.width);
            for i in 0..words(self.width) {
                let want = if self.width == 0 {
                    0
                } else if i + 1 == words(self.width) {
                    top_mask(self.width)
                } else {
                    u64::MAX
                };
                self.ones[i] = v.limbs()[i];
                self.zeros[i] = !v.limbs()[i] & want;
            }
        }
    }

    /// Smallest width `w'` such that the value is exactly representable
    /// by zero-extension from `w'` bits — i.e. bits `[w', width)` are
    /// known zero, and for signed types the sign position `w' - 1` is
    /// known zero too (so sign- and zero-extension coincide).
    pub fn significant_width(&self) -> u32 {
        if self.width == 0 {
            return 0;
        }
        let mut highest_unknown = None;
        for i in (0..self.width).rev() {
            if self.bit(i) != Some(false) {
                highest_unknown = Some(i);
                break;
            }
        }
        let w = match highest_unknown {
            // All bits known zero: one bit suffices either way.
            None => return 1,
            Some(h) => h + 1,
        };
        if self.signed {
            // Keep a known-zero sign position above the payload.
            (w + 1).min(self.width)
        } else {
            w
        }
    }
}

/// Number of bits needed to represent `v >= 0` (0 for `v == 0`).
fn bit_len(v: i128) -> u32 {
    debug_assert!(v >= 0);
    128 - v.leading_zeros()
}

/// The normalized pattern of numeric value `v` at `width` bits.
pub fn bits_of_value(v: i128, width: u32) -> Bits {
    let n = words(width);
    let mut limbs = vec![0u64; n];
    let mut x = v as u128; // two's complement reinterpretation
    for l in limbs.iter_mut() {
        *l = x as u64;
        x >>= 64;
        if v < 0 && x == 0 {
            // After the payload runs out, a negative value keeps
            // sign-filling upper limbs.
            x = u128::MAX;
        }
    }
    Bits::from_limbs(limbs, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_roundtrip_and_contains() {
        let v = Bits::from_u64(0b1010, 6);
        let a = AbsVal::exact(&v, false);
        assert_eq!(a.as_singleton(), Some(v.clone()));
        assert!(a.contains(&v));
        assert!(!a.contains(&Bits::from_u64(0b1011, 6)));
        assert_eq!(a.range, Some((10, 10)));
    }

    #[test]
    fn top_contains_everything() {
        let t = AbsVal::top(5, false);
        for x in 0..32u64 {
            assert!(t.contains(&Bits::from_u64(x, 5)));
        }
        assert_eq!(t.as_singleton(), None);
    }

    #[test]
    fn join_keeps_common_facts() {
        let a = AbsVal::exact(&Bits::from_u64(0b1100, 4), false);
        let b = AbsVal::exact(&Bits::from_u64(0b0100, 4), false);
        let j = a.join(&b);
        assert_eq!(j.bit(2), Some(true));
        assert_eq!(j.bit(0), Some(false));
        assert_eq!(j.bit(3), None);
        assert_eq!(j.range, Some((4, 12)));
        assert!(j.contains(&Bits::from_u64(0b1100, 4)));
        assert!(j.contains(&Bits::from_u64(0b0100, 4)));
    }

    #[test]
    fn range_implies_leading_zeros() {
        let mut t = AbsVal::top(8, false);
        t.range = Some((0, 5));
        t.canonicalize();
        assert_eq!(t.bit(7), Some(false));
        assert_eq!(t.bit(3), Some(false));
        assert_eq!(t.bit(2), None);
        assert_eq!(t.significant_width(), 3);
    }

    #[test]
    fn signed_values_and_domain() {
        let v = Bits::from_i64(-3, 5);
        let a = AbsVal::exact(&v, true);
        assert_eq!(a.range, Some((-3, -3)));
        assert!(a.contains(&v));
        assert_eq!(domain(5, true), (-16, 15));
        assert_eq!(value_of(v.limbs(), 5, true), -3);
        assert_eq!(bits_of_value(-3, 5), v);
    }

    #[test]
    fn signed_significant_width_needs_zero_sign() {
        // Nonnegative signed value in [0, 5]: payload 3 bits + zero sign.
        let mut t = AbsVal::top(8, true);
        t.range = Some((0, 5));
        t.canonicalize();
        assert_eq!(t.significant_width(), 4);
        // A possibly-negative signed value cannot narrow at all.
        let neg = AbsVal::top(8, true);
        assert_eq!(neg.significant_width(), 8);
    }

    #[test]
    fn mask_range_signed_unknown_sign() {
        let t = AbsVal::top(4, true);
        assert_eq!(t.mask_range(true), Some((-8, 7)));
        assert_eq!(t.mask_range(false), Some((0, 15)));
    }

    #[test]
    fn zero_width_is_exact_zero() {
        let t = AbsVal::top(0, false);
        assert!(t.contains(&Bits::zero(0)));
        assert_eq!(t.range, Some((0, 0)));
    }
}
