//! Per-[`OpKind`] abstract transfer functions.
//!
//! Each function mirrors the concrete kernel in `essent-bits` exactly —
//! same operand extension rule (`ext_limb` with the *first* operand's
//! signedness for arithmetic/bitwise/compare, raw zero-extension for
//! `cat`/`bits`/`shl`), same destination truncation — so the soundness
//! oracle in `tests/transfer_soundness.rs` can quantify over every
//! concrete operand: `γ(transfer(kind, abs)) ⊇ {eval_op(kind, xs) | xs ∈
//! γ(abs)}`.
//!
//! When every operand is a singleton the transfer simply runs
//! [`eval_op`], which both guarantees bit-exact agreement with the
//! concrete semantics and gives constant folding maximal precision.

use super::absval::{domain, AbsVal, RANGE_MAX_WIDTH};
use crate::eval::{eval_op, Operand};
use crate::netlist::OpKind;
use essent_bits::{words, Bits};

/// Computes the abstract result of `kind(srcs, params)` at destination
/// type `(dst_w, dst_signed)`.
pub fn transfer(
    kind: OpKind,
    params: &[u64],
    dst_w: u32,
    dst_signed: bool,
    srcs: &[&AbsVal],
) -> AbsVal {
    // All operands known: defer to the concrete semantics. (`Bits` is
    // path-qualified: `use OpKind::*` below shadows the struct with the
    // extraction variant for this whole block.)
    let singletons: Option<Vec<essent_bits::Bits>> =
        srcs.iter().map(|s| s.as_singleton()).collect();
    if let Some(vals) = singletons {
        let operands: Vec<Operand> = vals
            .iter()
            .zip(srcs)
            .map(|(b, s)| Operand::new(b.limbs(), s.width, s.signed))
            .collect();
        let mut dst = vec![0u64; words(dst_w)];
        eval_op(kind, params, &mut dst, dst_w, &operands);
        return AbsVal::exact(&essent_bits::Bits::from_limbs(dst, dst_w), dst_signed);
    }

    use OpKind::*;
    let s0 = srcs[0].signed;
    match kind {
        Add => {
            let range = bin_range(srcs[0], srcs[1], s0, |(al, ah), (bl, bh)| {
                Some((al.checked_add(bl)?, ah.checked_add(bh)?))
            });
            ripple(
                dst_w,
                dst_signed,
                |i| bit_ext(srcs[0], s0, i),
                |i| bit_ext(srcs[1], s0, i),
                false,
                range,
            )
        }
        Sub => {
            let range = bin_range(srcs[0], srcs[1], s0, |(al, ah), (bl, bh)| {
                Some((al.checked_sub(bh)?, ah.checked_sub(bl)?))
            });
            ripple(
                dst_w,
                dst_signed,
                |i| bit_ext(srcs[0], s0, i),
                |i| bit_ext(srcs[1], s0, i).map(|b| !b),
                true,
                range,
            )
        }
        Neg => {
            // eval_op computes `0 - a`.
            let range = srcs[0]
                .num_range(s0)
                .and_then(|(lo, hi)| Some((hi.checked_neg()?, lo.checked_neg()?)));
            ripple(
                dst_w,
                dst_signed,
                |_| Some(false),
                |i| bit_ext(srcs[0], s0, i).map(|b| !b),
                true,
                range,
            )
        }
        Mul => {
            let range = bin_range(srcs[0], srcs[1], s0, |(al, ah), (bl, bh)| {
                let c = [
                    al.checked_mul(bl)?,
                    al.checked_mul(bh)?,
                    ah.checked_mul(bl)?,
                    ah.checked_mul(bh)?,
                ];
                Some((*c.iter().min().unwrap(), *c.iter().max().unwrap()))
            });
            // The product inherits the operands' trailing known zeros.
            let tz = trailing_zeros(srcs[0], s0, dst_w) + trailing_zeros(srcs[1], s0, dst_w);
            from_bit_fn(dst_w, dst_signed, range, |i| {
                if (i as u64) < tz as u64 {
                    Some(false)
                } else {
                    None
                }
            })
        }
        Div => {
            let range = bin_range(srcs[0], srcs[1], s0, |(al, ah), _| {
                if s0 {
                    // |quotient| <= |dividend| (division by zero yields 0,
                    // division by -1 negates).
                    Some((al.min(-ah), ah.max(-al)))
                } else {
                    Some((0, ah))
                }
            });
            with_range(dst_w, dst_signed, range)
        }
        Rem => {
            let range = bin_range(srcs[0], srcs[1], s0, |(al, ah), (bl, bh)| {
                if s0 {
                    // Sign follows the dividend; |rem| <= |dividend|.
                    Some((al.min(0), ah.max(0)))
                } else if bl >= 1 {
                    Some((0, ah.min(bh - 1)))
                } else {
                    // Divisor may be zero, in which case rem = dividend.
                    Some((0, ah))
                }
            });
            with_range(dst_w, dst_signed, range)
        }
        Lt | Leq | Gt | Geq | Eq | Neq => cmp_transfer(kind, dst_w, dst_signed, srcs),
        Shl => shl_static(params[0], dst_w, dst_signed, srcs[0]),
        Shr => shr_static(params[0], dst_w, dst_signed, srcs[0]),
        Dshl => {
            if let Some(sh) = singleton_shift(srcs[1]) {
                return shl_static(sh, dst_w, dst_signed, srcs[0]);
            }
            let min_sh = srcs[1]
                .num_range(false)
                .map(|(lo, _)| lo.clamp(0, u32::MAX as i128) as u32)
                .unwrap_or(0);
            let tz = trailing_zeros(srcs[0], false, dst_w).saturating_add(min_sh);
            // The kernel shifts the raw zero-extended pattern, so the
            // numeric interval is only usable for provably nonnegative
            // operands, and only when the largest shift cannot push bits
            // past the destination (no wraparound).
            let range = (|| {
                let (al, ah) = srcs[0].num_range(s0)?;
                let (bl, bh) = srcs[1].num_range(false)?;
                if al < 0 || (srcs[0].width as i128).checked_add(bh)? > dst_w as i128 {
                    return None;
                }
                Some((shl_checked(al, bl)?, shl_checked(ah, bh)?))
            })();
            from_bit_fn(dst_w, dst_signed, range, |i| {
                if i < tz {
                    Some(false)
                } else {
                    None
                }
            })
        }
        Dshr => {
            if let Some(sh) = singleton_shift(srcs[1]) {
                return shr_static(sh, dst_w, dst_signed, srcs[0]);
            }
            // The shift amount is always unsigned, whatever the dividend
            // is — `bin_range`'s shared interpretation would misread a
            // small shift operand as negative for signed shifts.
            let range = (|| {
                let (al, ah) = srcs[0].num_range(s0)?;
                let (bl, bh) = srcs[1].num_range(false)?;
                let c = [sar(al, bl), sar(al, bh), sar(ah, bl), sar(ah, bh)];
                Some((*c.iter().min().unwrap(), *c.iter().max().unwrap()))
            })();
            with_range(dst_w, dst_signed, range)
        }
        Not => from_bit_fn(dst_w, dst_signed, None, |i| {
            bit_ext(srcs[0], s0, i).map(|b| !b)
        }),
        And => from_bit_fn(dst_w, dst_signed, None, |i| {
            trit_and(bit_ext(srcs[0], s0, i), bit_ext(srcs[1], s0, i))
        }),
        Or => from_bit_fn(dst_w, dst_signed, None, |i| {
            trit_or(bit_ext(srcs[0], s0, i), bit_ext(srcs[1], s0, i))
        }),
        Xor => from_bit_fn(dst_w, dst_signed, None, |i| {
            match (bit_ext(srcs[0], s0, i), bit_ext(srcs[1], s0, i)) {
                (Some(a), Some(b)) => Some(a ^ b),
                _ => None,
            }
        }),
        Andr => {
            let a = srcs[0];
            let mut all_one = true;
            let mut any_zero = false;
            for i in 0..a.width {
                match a.bit(i) {
                    Some(false) => any_zero = true,
                    Some(true) => {}
                    None => all_one = false,
                }
            }
            bool_result(
                dst_w,
                dst_signed,
                if any_zero {
                    Some(false)
                } else if all_one {
                    Some(true)
                } else {
                    None
                },
            )
        }
        Orr => {
            let a = srcs[0];
            let mut any_one = false;
            let mut all_zero = true;
            for i in 0..a.width {
                match a.bit(i) {
                    Some(true) => any_one = true,
                    Some(false) => {}
                    None => all_zero = false,
                }
            }
            let nonzero_by_range = a
                .num_range(a.signed)
                .is_some_and(|(lo, hi)| lo > 0 || hi < 0);
            bool_result(
                dst_w,
                dst_signed,
                if any_one || nonzero_by_range {
                    Some(true)
                } else if all_zero {
                    Some(false)
                } else {
                    None
                },
            )
        }
        Xorr => {
            let a = srcs[0];
            let mut parity = false;
            let mut known = true;
            for i in 0..a.width {
                match a.bit(i) {
                    Some(b) => parity ^= b,
                    None => known = false,
                }
            }
            bool_result(dst_w, dst_signed, known.then_some(parity))
        }
        Cat => {
            let (a, b) = (srcs[0], srcs[1]);
            let range = if !a.signed && !b.signed {
                bin_range(a, b, false, |(al, ah), (bl, bh)| {
                    Some((
                        shl_checked(al, b.width as i128)?.checked_add(bl)?,
                        shl_checked(ah, b.width as i128)?.checked_add(bh)?,
                    ))
                })
            } else {
                None
            };
            from_bit_fn(dst_w, dst_signed, range, |i| {
                if i < b.width {
                    b.bit(i)
                } else {
                    bit_ext(a, false, i - b.width)
                }
            })
        }
        Bits => {
            let a = srcs[0];
            let lo = params[1] as u32;
            // Extracting the whole value (lo = 0, no high truncation)
            // preserves the raw numeric interpretation.
            let range = if lo == 0 && dst_w >= a.width {
                a.num_range(false)
            } else {
                None
            };
            from_bit_fn(dst_w, dst_signed, range, |i| bit_ext(a, false, i + lo))
        }
        Mux => {
            let sel = if srcs[0].width == 0 {
                Some(false)
            } else {
                srcs[0].bit(0)
            };
            match sel {
                Some(true) => cast(srcs[1], dst_w, dst_signed),
                Some(false) => cast(srcs[2], dst_w, dst_signed),
                None => cast(srcs[1], dst_w, dst_signed).join(&cast(srcs[2], dst_w, dst_signed)),
            }
        }
        Copy => cast(srcs[0], dst_w, dst_signed),
    }
}

/// Abstract `kernels::extend`: zero/sign-extend (or truncate) `v` to the
/// destination type — the semantics of `Copy` and of each `Mux` way.
pub fn cast(v: &AbsVal, dst_w: u32, dst_signed: bool) -> AbsVal {
    // Extension preserves the numeric value; truncation-then-read equals
    // the identity exactly on the destination domain, so one membership
    // check covers both directions.
    let range = v.num_range(v.signed);
    let signed = v.signed;
    from_bit_fn(dst_w, dst_signed, range, |i| bit_ext(v, signed, i))
}

/// What `ext_limb` at bit granularity knows about position `i` of `v`
/// when read with extension signedness `signed`.
fn bit_ext(v: &AbsVal, signed: bool, i: u32) -> Option<bool> {
    if i < v.width {
        v.bit(i)
    } else if v.width == 0 || !signed {
        Some(false)
    } else {
        v.bit(v.width - 1)
    }
}

fn trit_and(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn trit_or(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Consecutive known-zero low bits of `v` under extension `signed`,
/// scanning at most `cap` positions.
fn trailing_zeros(v: &AbsVal, signed: bool, cap: u32) -> u32 {
    let mut n = 0;
    while n < cap && bit_ext(v, signed, n) == Some(false) {
        n += 1;
    }
    n
}

/// `x << sh` with overflow detection (`None` on any overflow).
fn shl_checked(x: i128, sh: i128) -> Option<i128> {
    if !(0..=(RANGE_MAX_WIDTH as i128)).contains(&sh) {
        return None;
    }
    x.checked_mul(1i128.checked_shl(sh as u32)?)
}

/// Arithmetic shift right with saturating shift amount.
fn sar(x: i128, sh: i128) -> i128 {
    let sh = sh.clamp(0, 127) as u32;
    x >> sh
}

/// The concrete `shift_amount()` of a singleton shift operand.
fn singleton_shift(v: &AbsVal) -> Option<u64> {
    let b = v.as_singleton()?;
    if b.limbs()[1..].iter().any(|&w| w != 0) {
        Some(u64::MAX)
    } else {
        Some(b.limbs()[0])
    }
}

/// Joint numeric ranges of two operands under a common interpretation.
fn bin_range(
    a: &AbsVal,
    b: &AbsVal,
    signed: bool,
    f: impl Fn((i128, i128), (i128, i128)) -> Option<(i128, i128)>,
) -> Option<(i128, i128)> {
    f(a.num_range(signed)?, b.num_range(signed)?)
}

/// Builds an [`AbsVal`] from a per-bit fact function plus an optional
/// numeric interval (kept only when it fits the destination domain).
fn from_bit_fn(
    dst_w: u32,
    dst_signed: bool,
    range: Option<(i128, i128)>,
    f: impl Fn(u32) -> Option<bool>,
) -> AbsVal {
    let mut out = AbsVal {
        width: dst_w,
        signed: dst_signed,
        zeros: vec![0; words(dst_w)],
        ones: vec![0; words(dst_w)],
        range: fit_range(range, dst_w, dst_signed),
    };
    for i in 0..dst_w {
        match f(i) {
            Some(false) => out.zeros[(i / 64) as usize] |= 1u64 << (i % 64),
            Some(true) => out.ones[(i / 64) as usize] |= 1u64 << (i % 64),
            None => {}
        }
    }
    out.canonicalize();
    out
}

/// An [`AbsVal`] carrying only a numeric interval.
fn with_range(dst_w: u32, dst_signed: bool, range: Option<(i128, i128)>) -> AbsVal {
    from_bit_fn(dst_w, dst_signed, range, |_| None)
}

/// Keeps `range` only when every member survives destination truncation
/// unchanged — i.e. the interval lies inside the destination domain.
fn fit_range(range: Option<(i128, i128)>, dst_w: u32, dst_signed: bool) -> Option<(i128, i128)> {
    let (lo, hi) = range?;
    if dst_w > RANGE_MAX_WIDTH {
        return None;
    }
    let (dlo, dhi) = domain(dst_w, dst_signed);
    (lo >= dlo && hi <= dhi).then_some((lo, hi))
}

/// A known or unknown 1-bit result at the destination type.
fn bool_result(dst_w: u32, dst_signed: bool, v: Option<bool>) -> AbsVal {
    match v {
        Some(b) => AbsVal::exact(&Bits::from_u64(b as u64, dst_w), dst_signed),
        None => {
            // Only bit 0 can ever be set.
            from_bit_fn(dst_w, dst_signed, None, |i| (i > 0).then_some(false))
        }
    }
}

/// Static left shift: low `sh` bits zero, the rest raw bits of `a`.
fn shl_static(sh: u64, dst_w: u32, dst_signed: bool, a: &AbsVal) -> AbsVal {
    // The kernel shifts the raw zero-extended pattern. That matches the
    // numeric value when the operand is nonnegative and nothing shifts
    // out; for a possibly-negative signed operand it matches only at
    // FIRRTL's exact inferred width `a.width + sh`, where the two's
    // complement pattern is reproduced bit for bit.
    let full = (a.width as u64).saturating_add(sh);
    let range = a.num_range(a.signed).and_then(|(lo, hi)| {
        let ok = if lo >= 0 {
            full <= dst_w as u64
        } else {
            full == dst_w as u64
        };
        if !ok {
            return None;
        }
        Some((shl_checked(lo, sh as i128)?, shl_checked(hi, sh as i128)?))
    });
    from_bit_fn(dst_w, dst_signed, range, |i| {
        if (i as u64) < sh {
            Some(false)
        } else {
            bit_ext(a, false, ((i as u64) - sh) as u32)
        }
    })
}

/// Static right shift with the operand's own sign fill.
fn shr_static(sh: u64, dst_w: u32, dst_signed: bool, a: &AbsVal) -> AbsVal {
    let signed = a.signed;
    let range = a
        .num_range(signed)
        .map(|(lo, hi)| (sar(lo, sh.min(127) as i128), sar(hi, sh.min(127) as i128)));
    from_bit_fn(dst_w, dst_signed, range, |i| {
        let pos = (i as u64).saturating_add(sh);
        if pos < a.width as u64 {
            a.bit(pos as u32)
        } else if a.width == 0 || !signed {
            Some(false)
        } else {
            a.bit(a.width - 1)
        }
    })
}

/// Comparison transfer: decide via disjoint intervals, or for equality
/// via any single bit position proven to differ.
fn cmp_transfer(kind: OpKind, dst_w: u32, dst_signed: bool, srcs: &[&AbsVal]) -> AbsVal {
    use OpKind::*;
    let s0 = srcs[0].signed;
    let (a, b) = (srcs[0], srcs[1]);
    let ranges = a.num_range(s0).zip(b.num_range(s0));
    let mut verdict = None;
    if let Some(((al, ah), (bl, bh))) = ranges {
        verdict = match kind {
            Lt if ah < bl => Some(true),
            Lt if al >= bh => Some(false),
            Leq if ah <= bl => Some(true),
            Leq if al > bh => Some(false),
            Gt if al > bh => Some(true),
            Gt if ah <= bl => Some(false),
            Geq if al >= bh => Some(true),
            Geq if ah < bl => Some(false),
            Eq if ah < bl || al > bh => Some(false),
            Neq if ah < bl || al > bh => Some(true),
            _ => None,
        };
    }
    if verdict.is_none() && matches!(kind, Eq | Neq) {
        // One bit proven to differ settles (in)equality even when the
        // intervals overlap.
        let span = a.width.max(b.width);
        for i in 0..span {
            if let (Some(x), Some(y)) = (bit_ext(a, s0, i), bit_ext(b, s0, i)) {
                if x != y {
                    verdict = Some(kind == Neq);
                    break;
                }
            }
        }
    }
    bool_result(dst_w, dst_signed, verdict)
}

/// Abstract ripple-carry adder over trit bit functions: computes
/// `aF + bF + carry0` bit-serially, mirroring the multi-limb add/sub
/// kernels (subtraction passes the inverted subtrahend and carry 1).
fn ripple(
    dst_w: u32,
    dst_signed: bool,
    a: impl Fn(u32) -> Option<bool>,
    b: impl Fn(u32) -> Option<bool>,
    carry0: bool,
    range: Option<(i128, i128)>,
) -> AbsVal {
    let mut bits: Vec<Option<bool>> = Vec::with_capacity(dst_w as usize);
    let mut carry = Some(carry0);
    for i in 0..dst_w {
        let (ai, bi) = (a(i), b(i));
        bits.push(match (ai, bi, carry) {
            (Some(x), Some(y), Some(c)) => Some(x ^ y ^ c),
            _ => None,
        });
        carry = match (ai, bi, carry) {
            (Some(x), Some(y), Some(c)) => Some((x as u8 + y as u8 + c as u8) >= 2),
            (Some(true), Some(true), _)
            | (Some(true), _, Some(true))
            | (_, Some(true), Some(true)) => Some(true),
            (Some(false), Some(false), _)
            | (Some(false), _, Some(false))
            | (_, Some(false), Some(false)) => Some(false),
            _ => None,
        };
    }
    from_bit_fn(dst_w, dst_signed, range, |i| bits[i as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn top(w: u32) -> AbsVal {
        AbsVal::top(w, false)
    }

    fn exact_u(v: u64, w: u32) -> AbsVal {
        AbsVal::exact(&Bits::from_u64(v, w), false)
    }

    #[test]
    fn and_with_mask_pins_upper_bits() {
        let a = top(8);
        let m = exact_u(0x0f, 8);
        let r = transfer(OpKind::And, &[], 8, false, &[&a, &m]);
        for i in 4..8 {
            assert_eq!(r.bit(i), Some(false), "bit {i}");
        }
        assert_eq!(r.bit(0), None);
        assert_eq!(r.significant_width(), 4);
    }

    #[test]
    fn add_ranges_compose() {
        let mut a = top(8);
        a.range = Some((0, 10));
        a.canonicalize();
        let b = exact_u(5, 8);
        let r = transfer(OpKind::Add, &[], 9, false, &[&a, &b]);
        assert_eq!(r.range, Some((5, 15)));
        assert_eq!(r.bit(8), Some(false));
    }

    #[test]
    fn comparison_decided_by_disjoint_ranges() {
        let mut a = top(8);
        a.range = Some((0, 10));
        a.canonicalize();
        let b = exact_u(200, 8);
        let lt = transfer(OpKind::Lt, &[], 1, false, &[&a, &b]);
        assert_eq!(lt.as_singleton(), Some(Bits::from_u64(1, 1)));
        let geq = transfer(OpKind::Geq, &[], 1, false, &[&a, &b]);
        assert_eq!(geq.as_singleton(), Some(Bits::from_u64(0, 1)));
    }

    #[test]
    fn equality_decided_by_bit_mismatch() {
        // a = xxxx1, b = xxxx0: ranges overlap but bit 0 differs.
        let mut a = top(5);
        a.ones[0] = 1;
        a.canonicalize();
        let mut b = top(5);
        b.zeros[0] = 1;
        b.canonicalize();
        let eq = transfer(OpKind::Eq, &[], 1, false, &[&a, &b]);
        assert_eq!(eq.as_singleton(), Some(Bits::from_u64(0, 1)));
        let neq = transfer(OpKind::Neq, &[], 1, false, &[&a, &b]);
        assert_eq!(neq.as_singleton(), Some(Bits::from_u64(1, 1)));
    }

    #[test]
    fn mux_with_known_selector_picks_one_way() {
        let sel = exact_u(1, 1);
        let a = exact_u(7, 4);
        let b = top(4);
        let r = transfer(OpKind::Mux, &[], 4, false, &[&sel, &a, &b]);
        assert_eq!(r.as_singleton(), Some(Bits::from_u64(7, 4)));
    }

    #[test]
    fn mux_join_merges_ways() {
        let sel = top(1);
        let a = exact_u(0b1000, 4);
        let b = exact_u(0b1001, 4);
        let r = transfer(OpKind::Mux, &[], 4, false, &[&sel, &a, &b]);
        assert_eq!(r.bit(3), Some(true));
        assert_eq!(r.bit(0), None);
        assert_eq!(r.range, Some((8, 9)));
    }

    #[test]
    fn all_singleton_defers_to_eval() {
        let a = exact_u(13, 6);
        let b = exact_u(5, 6);
        let r = transfer(OpKind::Rem, &[], 6, false, &[&a, &b]);
        assert_eq!(r.as_singleton(), Some(Bits::from_u64(3, 6)));
    }

    #[test]
    fn signed_extension_through_copy() {
        let a = AbsVal::exact(&Bits::from_i64(-2, 4), true);
        let r = transfer(OpKind::Copy, &[], 8, true, &[&a]);
        assert_eq!(r.as_singleton(), Some(Bits::from_i64(-2, 8)));
    }

    #[test]
    fn orr_nonzero_by_range() {
        let mut a = top(8);
        a.range = Some((3, 9));
        a.canonicalize();
        let r = transfer(OpKind::Orr, &[], 1, false, &[&a]);
        assert_eq!(r.as_singleton(), Some(Bits::from_u64(1, 1)));
    }
}
