//! Shared evaluation semantics for netlist operations, operating directly
//! on `u64` word slices.
//!
//! Every simulation engine (full-cycle, event-driven, ESSENT) and the
//! reference interpreter call [`eval_op`] so the value semantics are
//! defined exactly once. Values obey the `essent-bits` representation
//! invariant (normalized little-endian limbs).

use crate::netlist::OpKind;
use essent_bits::kernels;

/// A borrowed operand: its bits plus its static type.
#[derive(Debug, Clone, Copy)]
pub struct Operand<'a> {
    pub bits: &'a [u64],
    pub width: u32,
    pub signed: bool,
}

impl<'a> Operand<'a> {
    pub fn new(bits: &'a [u64], width: u32, signed: bool) -> Self {
        Operand {
            bits,
            width,
            signed,
        }
    }

    /// The operand's low 64 bits (used for dynamic shift amounts; values
    /// wider than a limb saturate, which exceeds any legal width anyway).
    fn shift_amount(&self) -> u64 {
        if self.bits[1..].iter().any(|&w| w != 0) {
            u64::MAX
        } else {
            self.bits[0]
        }
    }
}

/// Evaluates `dst = kind(srcs, params)` with destination width `dst_w`.
///
/// The destination slice must hold exactly [`essent_bits::words`]`(dst_w)`
/// limbs; it is fully overwritten and re-normalized.
///
/// # Panics
///
/// Debug builds assert operand counts; release builds trust the compiled
/// schedule (the builder validated every op).
pub fn eval_op(kind: OpKind, params: &[u64], dst: &mut [u64], dst_w: u32, srcs: &[Operand]) {
    use OpKind::*;
    match kind {
        Add => kernels::add(
            dst,
            dst_w,
            srcs[0].bits,
            srcs[0].width,
            srcs[1].bits,
            srcs[1].width,
            srcs[0].signed,
        ),
        Sub => kernels::sub(
            dst,
            dst_w,
            srcs[0].bits,
            srcs[0].width,
            srcs[1].bits,
            srcs[1].width,
            srcs[0].signed,
        ),
        Mul => kernels::mul(
            dst,
            dst_w,
            srcs[0].bits,
            srcs[0].width,
            srcs[1].bits,
            srcs[1].width,
            srcs[0].signed,
        ),
        Div => kernels::div(
            dst,
            dst_w,
            srcs[0].bits,
            srcs[0].width,
            srcs[1].bits,
            srcs[1].width,
            srcs[0].signed,
        ),
        Rem => kernels::rem(
            dst,
            dst_w,
            srcs[0].bits,
            srcs[0].width,
            srcs[1].bits,
            srcs[1].width,
            srcs[0].signed,
        ),
        Lt | Leq | Gt | Geq | Eq | Neq => {
            let ord = kernels::cmp(
                srcs[0].bits,
                srcs[0].width,
                srcs[1].bits,
                srcs[1].width,
                srcs[0].signed,
            );
            let v = match kind {
                Lt => ord.is_lt(),
                Leq => ord.is_le(),
                Gt => ord.is_gt(),
                Geq => ord.is_ge(),
                Eq => ord.is_eq(),
                Neq => ord.is_ne(),
                _ => unreachable!(),
            };
            set_bool(dst, v);
        }
        Shl => kernels::shl(dst, dst_w, srcs[0].bits, srcs[0].width, params[0]),
        Shr => kernels::shr(
            dst,
            dst_w,
            srcs[0].bits,
            srcs[0].width,
            params[0],
            srcs[0].signed,
        ),
        Dshl => {
            let sh = srcs[1].shift_amount();
            kernels::shl(dst, dst_w, srcs[0].bits, srcs[0].width, sh);
        }
        Dshr => {
            let sh = srcs[1].shift_amount();
            kernels::shr(dst, dst_w, srcs[0].bits, srcs[0].width, sh, srcs[0].signed);
        }
        Neg => {
            const ZERO: [u64; 1] = [0];
            kernels::sub(
                dst,
                dst_w,
                &ZERO,
                1,
                srcs[0].bits,
                srcs[0].width,
                srcs[0].signed,
            );
        }
        Not => kernels::not(dst, dst_w, srcs[0].bits, srcs[0].width, srcs[0].signed),
        And => kernels::and(
            dst,
            dst_w,
            srcs[0].bits,
            srcs[0].width,
            srcs[1].bits,
            srcs[1].width,
            srcs[0].signed,
        ),
        Or => kernels::or(
            dst,
            dst_w,
            srcs[0].bits,
            srcs[0].width,
            srcs[1].bits,
            srcs[1].width,
            srcs[0].signed,
        ),
        Xor => kernels::xor(
            dst,
            dst_w,
            srcs[0].bits,
            srcs[0].width,
            srcs[1].bits,
            srcs[1].width,
            srcs[0].signed,
        ),
        Andr => set_bool(dst, kernels::andr(srcs[0].bits, srcs[0].width)),
        Orr => set_bool(dst, kernels::orr(srcs[0].bits)),
        Xorr => set_bool(dst, kernels::xorr(srcs[0].bits)),
        Cat => kernels::cat(
            dst,
            dst_w,
            srcs[0].bits,
            srcs[0].width,
            srcs[1].bits,
            srcs[1].width,
        ),
        Bits => kernels::bits(
            dst,
            dst_w,
            srcs[0].bits,
            srcs[0].width,
            params[0] as u32,
            params[1] as u32,
        ),
        Mux => {
            let pick = if srcs[0].bits[0] & 1 == 1 { 1 } else { 2 };
            kernels::extend(
                dst,
                dst_w,
                srcs[pick].bits,
                srcs[pick].width,
                srcs[pick].signed,
            );
        }
        Copy => kernels::extend(dst, dst_w, srcs[0].bits, srcs[0].width, srcs[0].signed),
    }
}

#[inline]
fn set_bool(dst: &mut [u64], v: bool) {
    dst.iter_mut().for_each(|w| *w = 0);
    dst[0] = v as u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(bits: &[u64], width: u32, signed: bool) -> Operand<'_> {
        Operand::new(bits, width, signed)
    }

    #[test]
    fn mux_selects_and_extends() {
        let sel = [1u64];
        let high = [0xfu64];
        let low = [0x3u64];
        let mut dst = [0u64];
        eval_op(
            OpKind::Mux,
            &[],
            &mut dst,
            8,
            &[op(&sel, 1, false), op(&high, 4, true), op(&low, 4, true)],
        );
        // high = -1 signed 4-bit, sign-extended to 8 bits
        assert_eq!(dst[0], 0xff);
        let sel0 = [0u64];
        eval_op(
            OpKind::Mux,
            &[],
            &mut dst,
            8,
            &[op(&sel0, 1, false), op(&high, 4, true), op(&low, 4, true)],
        );
        assert_eq!(dst[0], 0x03);
    }

    #[test]
    fn neg_widens() {
        let a = [5u64];
        let mut dst = [0u64];
        eval_op(OpKind::Neg, &[], &mut dst, 5, &[op(&a, 4, false)]);
        assert_eq!(dst[0], 0b11011); // -5 at width 5
    }

    #[test]
    fn dynamic_shifts() {
        let a = [0b1000u64];
        let sh = [2u64];
        let mut dst = [0u64];
        eval_op(
            OpKind::Dshr,
            &[],
            &mut dst,
            4,
            &[op(&a, 4, false), op(&sh, 3, false)],
        );
        assert_eq!(dst[0], 0b10);
        let mut dst2 = vec![0u64; 1];
        eval_op(
            OpKind::Dshl,
            &[],
            &mut dst2,
            11,
            &[op(&a, 4, false), op(&sh, 3, false)],
        );
        assert_eq!(dst2[0], 0b100000);
    }

    #[test]
    fn oversized_dynamic_shift_clears() {
        let a = [0xffu64];
        let sh = [64u64];
        let mut dst = [0u64];
        eval_op(
            OpKind::Dshr,
            &[],
            &mut dst,
            8,
            &[op(&a, 8, false), op(&sh, 7, false)],
        );
        assert_eq!(dst[0], 0);
    }

    #[test]
    fn comparisons_set_single_bit() {
        let a = [3u64];
        let b = [7u64];
        let mut dst = [0u64];
        eval_op(
            OpKind::Lt,
            &[],
            &mut dst,
            1,
            &[op(&a, 4, false), op(&b, 4, false)],
        );
        assert_eq!(dst[0], 1);
        eval_op(
            OpKind::Geq,
            &[],
            &mut dst,
            1,
            &[op(&a, 4, false), op(&b, 4, false)],
        );
        assert_eq!(dst[0], 0);
    }
}
