//! The design graph ("netlist") layer: a flat, signal-level directed
//! acyclic graph extracted from lowered FIRRTL, plus the netlist
//! transformations ESSENT applies before partitioning.
//!
//! Every named signal (port, node, wire, register output, memory read
//! port) becomes one [`Signal`] with a defining [`SignalDef`] in
//! three-address form — compound FIRRTL expressions are flattened into
//! intermediate signals, so graph granularity matches the statement-level
//! graphs the ESSENT paper partitions. State elements are split into two
//! graph roles exactly as Section II of the paper describes: a register's
//! *output* is a source node and its *next-value* is a sink, which makes
//! the combinational graph acyclic for any synchronous design.
//!
//! # Modules
//!
//! * [`build`] — lowered FIRRTL circuit → [`Netlist`];
//! * [`width`] — the FIRRTL width/signedness inference rules;
//! * [`graph`] — topological scheduling, SCC detection, reachability;
//! * [`analysis`] — known-bits + value-range abstract interpretation and
//!   backward demanded-bits, feeding the width-narrowing and folding
//!   passes and the `essent-verify` precision lints;
//! * [`opt`] — constant propagation, common-subexpression elimination,
//!   dead-code elimination, copy forwarding (the "classic compiler
//!   optimizations" of paper Section III-B), and analysis-driven width
//!   narrowing;
//! * [`eval`] — shared op-evaluation kernels used by every engine;
//! * [`interp`] — a slow, allocation-per-value reference interpreter used
//!   as the golden model in cross-engine equivalence tests.
//!
//! # Examples
//!
//! ```
//! use essent_netlist::Netlist;
//!
//! let src = "circuit C :\n  module C :\n    input clock : Clock\n    input a : UInt<8>\n    output b : UInt<9>\n    b <= add(a, a)\n";
//! let circuit = essent_firrtl::passes::lower(essent_firrtl::parse(src)?)?;
//! let netlist = Netlist::from_circuit(&circuit)?;
//! assert!(netlist.signal_count() >= 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod build;
pub mod eval;
pub mod graph;
pub mod interp;
pub mod netlist;
pub mod opt;
pub mod width;

pub use build::BuildError;
pub use netlist::{
    MemId, Memory, Netlist, Op, OpKind, Printf, ReadPort, RegId, Register, Signal, SignalDef,
    SignalId, Stop, WritePort,
};
