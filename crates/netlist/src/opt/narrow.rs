//! Analysis-driven width narrowing.
//!
//! Shrinks a signal's declared width when the dataflow analysis proves
//! the dropped bits carry no information, from either direction:
//!
//! * **forward** (`AbsVal::significant_width`): the upper bits are
//!   provably zero (or sign copies), so truncating and re-extending
//!   reproduces the exact original pattern at every consumer;
//! * **backward** (`demand::demanded_widths`): no observable sink can
//!   distinguish the upper bits, so replacing them with zeros changes
//!   nothing an output, stop, printf, or memory port ever sees.
//!
//! The minimum of the two is sound bit-by-bit: every dropped bit is
//! either provably zero (truncation preserves it) or undemanded
//! (truncation may change it, unobservably).
//!
//! Narrowing is restricted to **unsigned** signals — sign-extension
//! consumers re-read the top bit wherever the result is used, and
//! dropping sign-copy bits flips `xorr` parity — and skips signals whose
//! width is structural rather than numeric:
//!
//! * ports (inputs/outputs are the external interface),
//! * `cat` operands and results (the kernel asserts `dst = a.w + b.w`
//!   and operand widths define the bit layout),
//! * `andr` operands (reducing over fewer bits can turn false into true),
//! * memory port fields and read data (checked against the bank by
//!   `L0005` / the arena layout),
//! * `stop`/`printf` enables and arguments (observable side channels).
//!
//! `bits` extraction operands keep at least `hi + 1` bits so the
//! extraction stays in range; `bits` *results* that narrow get their
//! `hi` parameter rewritten (the kernel asserts `dst_w == hi - lo + 1`).
//! A `Copy` that narrowing turns into a truncation is rewritten to an
//! explicit `bits` extraction — same kernel behavior, but it does not
//! read as a *silent* truncation (`L0003` flags those in the source
//! design; this one is analysis-proven).
//!
//! Finally, extractions that became the identity (`bits(x, w-1, 0)` with
//! `x` narrowed to exactly `w`) are rewritten to `Copy`, which copy
//! forwarding then aliases away and DCE removes — on the SoC designs
//! this is where most of the arena-word reduction comes from: the
//! ubiquitous `bits(add(a, b), w-1, 0)` wrap-around pattern loses its
//! carry bit and collapses into the add itself.

use crate::analysis::Analysis;
use crate::netlist::{Netlist, Op, OpKind, SignalDef};

/// Runs one round against a fresh [`Analysis`] of this netlist; returns
/// the number of signals narrowed plus extractions rewritten to copies.
pub fn run(netlist: &mut Netlist, analysis: &Analysis) -> usize {
    let n = netlist.signal_count();
    debug_assert_eq!(analysis.values.len(), n, "stale analysis");

    // Signals whose width is structural: never narrowed.
    let mut fixed = vec![false; n];
    let pin = |fixed: &mut Vec<bool>, id: crate::netlist::SignalId| fixed[id.index()] = true;
    for &i in netlist.inputs() {
        pin(&mut fixed, i);
    }
    for &o in netlist.outputs() {
        pin(&mut fixed, o);
    }
    for s in netlist.stops() {
        pin(&mut fixed, s.en);
    }
    for p in netlist.printfs() {
        pin(&mut fixed, p.en);
        for &a in &p.args {
            pin(&mut fixed, a);
        }
    }
    for m in netlist.mems() {
        for r in &m.readers {
            pin(&mut fixed, r.addr);
            pin(&mut fixed, r.en);
            pin(&mut fixed, r.data);
        }
        for w in &m.writers {
            pin(&mut fixed, w.addr);
            pin(&mut fixed, w.en);
            pin(&mut fixed, w.mask);
            pin(&mut fixed, w.data);
        }
    }
    // Structural minimum widths imposed by consumers.
    let mut floor = vec![0u32; n];
    for (i, sig) in netlist.signals().iter().enumerate() {
        let SignalDef::Op(op) = &sig.def else {
            continue;
        };
        match op.kind {
            OpKind::Cat => {
                fixed[i] = true;
                for &a in &op.args {
                    fixed[a.index()] = true;
                }
            }
            OpKind::Andr => fixed[op.args[0].index()] = true,
            OpKind::Bits => {
                let hi = op.params[0] as u32;
                let f = &mut floor[op.args[0].index()];
                *f = (*f).max(hi + 1);
            }
            _ => {}
        }
    }

    // Candidate widths: min(forward, backward), clamped by the floors.
    let mut new_w: Vec<u32> = (0..n)
        .map(|i| {
            let s = &netlist.signals()[i];
            if fixed[i] || s.signed || s.width == 0 {
                return s.width;
            }
            let fwd = analysis.values[i].significant_width();
            let bwd = analysis.demanded[i];
            fwd.min(bwd).max(floor[i]).max(1).min(s.width)
        })
        .collect();

    // A register stores one value — out, next, and the register itself
    // share the wider of the two candidates. Each pair is independent
    // (out is a unique RegOut, next a unique sink), so one pass settles.
    for reg in netlist.regs() {
        let (o, x) = (reg.out.index(), reg.next.index());
        let w = new_w[o].max(new_w[x]);
        new_w[o] = w;
        new_w[x] = w;
    }

    // Apply.
    let mut narrowed = 0;
    for i in 0..n {
        let w = new_w[i];
        let src_w = match &netlist.signals[i].def {
            SignalDef::Op(op) => new_w[op.args[0].index()],
            _ => 0,
        };
        let sig = &mut netlist.signals[i];
        if w >= sig.width {
            continue;
        }
        match &mut sig.def {
            SignalDef::Const(c) => *c = c.extend(w, false),
            SignalDef::Op(op) if op.kind == OpKind::Bits => {
                // Kernel invariant: dst_w == hi - lo + 1.
                op.params[0] = op.params[1] + w as u64 - 1;
            }
            SignalDef::Op(op) if op.kind == OpKind::Copy && src_w > w => {
                // The copy now truncates: make the truncation explicit.
                *op = Op {
                    kind: OpKind::Bits,
                    args: op.args.clone(),
                    params: vec![w as u64 - 1, 0],
                };
            }
            _ => {}
        }
        sig.width = w;
        narrowed += 1;
    }
    for r in 0..netlist.regs.len() {
        let w = new_w[netlist.regs[r].out.index()];
        if w < netlist.regs[r].width {
            netlist.regs[r].width = w;
        }
    }

    // Identity extractions: bits(x, x.width - 1, 0) is a plain copy.
    let mut rewritten = 0;
    for i in 0..n {
        let SignalDef::Op(op) = &netlist.signals[i].def else {
            continue;
        };
        if op.kind != OpKind::Bits || op.params[1] != 0 {
            continue;
        }
        let src = &netlist.signals[op.args[0].index()];
        if src.width == netlist.signals[i].width && !src.signed {
            let args = op.args.clone();
            netlist.signals[i].def = SignalDef::Op(Op {
                kind: OpKind::Copy,
                args,
                params: vec![],
            });
            rewritten += 1;
        }
    }
    narrowed + rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::opt::build_test_netlist;

    fn narrow(src: &str) -> (Netlist, usize) {
        let mut n = build_test_netlist(src);
        let a = analysis::analyze(&n).unwrap();
        let changed = run(&mut n, &a);
        (n, changed)
    }

    #[test]
    fn wraparound_add_loses_its_carry_bit() {
        let (n, changed) = narrow(
            "circuit W :\n  module W :\n    input a : UInt<32>\n    input b : UInt<32>\n    output o : UInt<32>\n    node s = add(a, b)\n    o <= bits(s, 31, 0)\n",
        );
        assert!(changed > 0);
        let s = n.expect_signal("s");
        assert_eq!(n.signal(s).width, 32, "carry bit is undemanded");
        // The now-identity extraction became a copy.
        let bits_left = n
            .signals()
            .iter()
            .filter(|s| matches!(&s.def, SignalDef::Op(op) if op.kind == OpKind::Bits))
            .count();
        assert_eq!(bits_left, 0);
    }

    #[test]
    fn masked_value_narrows_forward() {
        let (n, _) = narrow(
            "circuit M :\n  module M :\n    input a : UInt<16>\n    output o : UInt<1>\n    node low = and(a, UInt<16>(15))\n    o <= orr(low)\n",
        );
        let low = n.expect_signal("low");
        assert_eq!(n.signal(low).width, 4, "upper 12 bits are known zero");
    }

    #[test]
    fn ports_and_cat_operands_stay_wide() {
        let (n, _) = narrow(
            "circuit P :\n  module P :\n    input a : UInt<8>\n    output o : UInt<16>\n    node z = and(a, UInt<8>(1))\n    o <= cat(z, a)\n",
        );
        // z is provably 1-bit, but it feeds a cat: the layout needs 8.
        let z = n.expect_signal("z");
        assert_eq!(n.signal(z).width, 8);
        let a = n.expect_signal("a");
        assert_eq!(n.signal(a).width, 8);
    }

    #[test]
    fn register_and_next_narrow_jointly() {
        let (n, _) = narrow(
            "circuit R :\n  module R :\n    input clock : Clock\n    input a : UInt<8>\n    output o : UInt<4>\n    reg r : UInt<8>, clock\n    r <= a\n    o <= bits(r, 3, 0)\n",
        );
        let reg = &n.regs()[0];
        assert_eq!(reg.width, 4);
        assert_eq!(n.signal(reg.out).width, 4);
        assert_eq!(n.signal(reg.next).width, 4);
        // The next-value copy from the 8-bit input now truncates; it must
        // have become an explicit extraction, not a silent Copy (L0003).
        match &n.signal(reg.next).def {
            SignalDef::Op(op) => {
                assert_eq!(op.kind, OpKind::Bits);
                assert_eq!(op.params, vec![3, 0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn behavior_is_preserved() {
        use crate::interp::Interpreter;
        use essent_bits::Bits;
        let src = "circuit B :\n  module B :\n    input clock : Clock\n    input a : UInt<12>\n    output o : UInt<8>\n    node low = and(a, UInt<12>(255))\n    node s = add(low, UInt<12>(7))\n    reg r : UInt<13>, clock\n    r <= s\n    o <= bits(r, 7, 0)\n";
        let reference = build_test_netlist(src);
        let mut narrowed = reference.clone();
        let a = analysis::analyze(&narrowed).unwrap();
        assert!(run(&mut narrowed, &a) > 0);
        let mut ref_sim = Interpreter::new(&reference);
        let mut new_sim = Interpreter::new(&narrowed);
        for cycle in 0..32u64 {
            let a = Bits::from_u64(cycle.wrapping_mul(1337) & 0xfff, 12);
            ref_sim.poke("a", a.clone());
            new_sim.poke("a", a);
            ref_sim.step(1);
            new_sim.step(1);
            assert_eq!(ref_sim.peek("o"), new_sim.peek("o"), "cycle {cycle}");
        }
    }
}
