//! Netlist optimizations — the "classic compiler optimizations" ESSENT
//! applies before partitioning (paper Section III-B): constant
//! propagation, copy forwarding, common-subexpression elimination, and
//! dead-code elimination.
//!
//! Each pass is independently switchable through [`OptConfig`], which the
//! benchmark harness uses for the ablation study.

pub mod const_prop;
pub mod cse;
pub mod dce;
pub mod forward;
pub mod narrow;

use crate::analysis;
use crate::netlist::Netlist;

/// Which optimizations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    pub const_prop: bool,
    /// Fold ops decided by the known-bits/range analysis even when their
    /// operands are not structurally constant (see [`analysis`]).
    pub analysis_fold: bool,
    /// Shrink signal widths the analysis proves unused
    /// ([`narrow`]).
    pub narrow: bool,
    pub copy_forward: bool,
    pub cse: bool,
    pub dce: bool,
    /// Fixpoint rounds (each round runs the enabled passes once).
    pub rounds: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            const_prop: true,
            analysis_fold: true,
            narrow: true,
            copy_forward: true,
            cse: true,
            dce: true,
            rounds: 3,
        }
    }
}

impl OptConfig {
    /// Everything off — the paper's unoptimized **Baseline** tool flow.
    pub fn none() -> Self {
        OptConfig {
            const_prop: false,
            analysis_fold: false,
            narrow: false,
            copy_forward: false,
            cse: false,
            dce: false,
            rounds: 0,
        }
    }

    /// The structural passes only — [`Default`] minus the
    /// analysis-driven folding and narrowing. The dataflow benchmark
    /// uses this as the "before" side of the comparison.
    pub fn structural() -> Self {
        OptConfig {
            analysis_fold: false,
            narrow: false,
            ..OptConfig::default()
        }
    }
}

/// What the optimizer did, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    pub constants_folded: usize,
    /// Ops folded or mux ways pruned from analysis facts alone.
    pub analysis_folded: usize,
    /// Signals narrowed or identity extractions rewritten.
    pub signals_narrowed: usize,
    pub copies_forwarded: usize,
    pub exprs_deduped: usize,
    pub signals_removed: usize,
}

/// Runs the configured passes over the netlist in place.
///
/// # Examples
///
/// ```
/// use essent_netlist::{opt, Netlist};
/// let src = "circuit C :\n  module C :\n    input a : UInt<8>\n    output o : UInt<9>\n    node t = add(UInt<8>(2), UInt<8>(3))\n    o <= add(a, bits(t, 7, 0))\n";
/// let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src)?)?;
/// let mut n = Netlist::from_circuit(&lowered)?;
/// let before = n.signal_count();
/// let stats = opt::optimize(&mut n, &opt::OptConfig::default());
/// assert!(stats.constants_folded > 0);
/// assert!(n.signal_count() < before);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize(netlist: &mut Netlist, config: &OptConfig) -> OptStats {
    let mut stats = OptStats::default();
    for _ in 0..config.rounds {
        let mut changed = false;
        if config.const_prop {
            let folded = const_prop::run(netlist);
            stats.constants_folded += folded;
            changed |= folded > 0;
        }
        if config.analysis_fold || config.narrow {
            match analysis::analyze(netlist) {
                Ok(facts) => {
                    if config.analysis_fold {
                        let folded = const_prop::run_analysis(netlist, &facts);
                        stats.analysis_folded += folded;
                        changed |= folded > 0;
                    }
                    if config.narrow {
                        // The analysis stays sound across the folds above:
                        // they only replace ops with the constants the
                        // analysis itself proved.
                        let narrowed = narrow::run(netlist, &facts);
                        stats.signals_narrowed += narrowed;
                        changed |= narrowed > 0;
                    }
                }
                Err(cycle) => {
                    debug_assert!(false, "optimize on cyclic netlist: {cycle:?}");
                }
            }
        }
        if config.copy_forward {
            let forwarded = forward::run(netlist);
            stats.copies_forwarded += forwarded;
            changed |= forwarded > 0;
        }
        if config.cse {
            let deduped = cse::run(netlist);
            stats.exprs_deduped += deduped;
            changed |= deduped > 0;
        }
        if config.dce {
            let removed = dce::run(netlist);
            stats.signals_removed += removed;
            changed |= removed > 0;
        }
        if !changed {
            break;
        }
    }
    stats
}

#[cfg(test)]
pub(crate) fn build_test_netlist(src: &str) -> Netlist {
    let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
    Netlist::from_circuit(&lowered).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use essent_bits::Bits;

    /// Optimization must preserve observable behavior: run the same
    /// stimulus through optimized and unoptimized copies.
    #[test]
    fn optimization_preserves_behavior() {
        let src = "circuit B :\n  module B :\n    input clock : Clock\n    input reset : UInt<1>\n    input a : UInt<8>\n    output o : UInt<8>\n    node two = UInt<8>(2)\n    node doubled = mul(a, two)\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= bits(doubled, 7, 0)\n    node dead = xor(a, UInt<8>(\"hff\"))\n    o <= r\n";
        let reference = build_test_netlist(src);
        let mut optimized = reference.clone();
        optimize(&mut optimized, &OptConfig::default());
        assert!(optimized.signal_count() < reference.signal_count());

        let mut ref_sim = Interpreter::new(&reference);
        let mut opt_sim = Interpreter::new(&optimized);
        for cycle in 0..20u64 {
            let a = Bits::from_u64(cycle * 7 + 3, 8);
            ref_sim.poke("a", a.clone());
            opt_sim.poke("a", a);
            let rst = Bits::from_u64((cycle == 0) as u64, 1);
            ref_sim.poke("reset", rst.clone());
            opt_sim.poke("reset", rst);
            ref_sim.step(1);
            opt_sim.step(1);
            assert_eq!(ref_sim.peek("o"), opt_sim.peek("o"), "cycle {cycle}");
        }
    }

    #[test]
    fn none_config_is_identity() {
        let src = "circuit N :\n  module N :\n    input a : UInt<4>\n    output o : UInt<4>\n    o <= not(not(a))\n";
        let mut n = build_test_netlist(src);
        let before = n.signal_count();
        let stats = optimize(&mut n, &OptConfig::none());
        assert_eq!(stats, OptStats::default());
        assert_eq!(n.signal_count(), before);
    }
}
