//! Common-subexpression elimination.
//!
//! The builder already interns identical temporaries structurally, but
//! constant propagation and copy forwarding expose new duplicates (two
//! different named nodes that now compute the same op over the same
//! operands). This pass hashes every definition and redirects consumers
//! of duplicates to one representative; the dead duplicates are collected
//! by DCE.

use crate::netlist::{Netlist, SignalDef, SignalId};
use std::collections::HashMap;

/// Key identifying a definition's value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum DefKey {
    Const(Vec<u64>, u32, bool),
    Op(crate::netlist::OpKind, Vec<SignalId>, Vec<u64>, u32, bool),
}

/// Runs one round; returns the number of duplicate definitions redirected.
pub fn run(netlist: &mut Netlist) -> usize {
    let n = netlist.signal_count();
    let mut table: HashMap<DefKey, SignalId> = HashMap::new();
    let mut replace: Vec<SignalId> = (0..n).map(|i| SignalId(i as u32)).collect();
    let mut deduped = 0;

    // `netlist.signals` cannot be iterated directly while `replace` is
    // written through the same index.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let sig = &netlist.signals[i];
        let key = match &sig.def {
            SignalDef::Const(c) => DefKey::Const(c.limbs().to_vec(), sig.width, sig.signed),
            SignalDef::Op(op) => DefKey::Op(
                op.kind,
                op.args.clone(),
                op.params.clone(),
                sig.width,
                sig.signed,
            ),
            // Inputs, register outputs, and memory reads are unique values.
            _ => continue,
        };
        match table.get(&key) {
            Some(&rep) => {
                replace[i] = rep;
                deduped += 1;
            }
            None => {
                table.insert(key, SignalId(i as u32));
            }
        }
    }
    if deduped == 0 {
        return 0;
    }

    // Redirect all consumers.
    let map = |id: SignalId| replace[id.index()];
    for i in 0..n {
        if let SignalDef::Op(op) = &mut netlist.signals[i].def {
            for a in &mut op.args {
                *a = map(*a);
            }
        }
    }
    for m in &mut netlist.mems {
        for r in &mut m.readers {
            r.addr = map(r.addr);
            r.en = map(r.en);
        }
        for w in &mut m.writers {
            w.addr = map(w.addr);
            w.en = map(w.en);
            w.mask = map(w.mask);
            w.data = map(w.data);
        }
    }
    for s in &mut netlist.stops {
        s.en = map(s.en);
    }
    for p in &mut netlist.printfs {
        p.en = map(p.en);
        for a in &mut p.args {
            *a = map(*a);
        }
    }
    for o in &mut netlist.outputs {
        // Keep output ports themselves (their identity is the interface),
        // but their defs were redirected above.
        let _ = o;
    }
    deduped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::OpKind;
    use crate::opt::build_test_netlist;

    #[test]
    fn dedups_equal_named_nodes() {
        let mut n = build_test_netlist(
            "circuit C :\n  module C :\n    input a : UInt<4>\n    input b : UInt<4>\n    output x : UInt<1>\n    output y : UInt<1>\n    node p = eq(a, b)\n    node q = eq(a, b)\n    x <= p\n    y <= orr(q)\n",
        );
        // Builder interning already shares the eq; p and q are two Copy
        // signals of the same temp — CSE dedups the copies.
        let d = run(&mut n);
        assert!(d >= 1, "the two copy nodes must dedup");
        // After dedup, x's and y's chains converge on one signal.
        let x = n.find("x").unwrap();
        let chase = |mut id: crate::netlist::SignalId| loop {
            match &n.signal(id).def {
                SignalDef::Op(op) if op.kind == OpKind::Copy => id = op.args[0],
                _ => return id,
            }
        };
        let eq_sig = chase(x);
        assert!(matches!(
            &n.signal(eq_sig).def,
            SignalDef::Op(op) if op.kind == OpKind::Eq
        ));
    }

    #[test]
    fn distinct_ops_stay_distinct() {
        let mut n = build_test_netlist(
            "circuit D :\n  module D :\n    input a : UInt<4>\n    output x : UInt<1>\n    output y : UInt<1>\n    x <= orr(a)\n    y <= andr(a)\n",
        );
        let before: Vec<_> = n.signals().iter().map(|s| s.def.clone()).collect();
        run(&mut n);
        // orr and andr must not merge (different kinds).
        let orrs = n
            .signals()
            .iter()
            .filter(|s| matches!(&s.def, SignalDef::Op(op) if op.kind == OpKind::Orr))
            .count();
        let andrs = n
            .signals()
            .iter()
            .filter(|s| matches!(&s.def, SignalDef::Op(op) if op.kind == OpKind::Andr))
            .count();
        assert_eq!((orrs, andrs), (1, 1));
        let _ = before;
    }
}
