//! Copy forwarding: operand references that point at a *pure alias* — a
//! [`OpKind::Copy`] whose result type equals its operand's type — are
//! redirected to the operand. Width-changing copies (extensions and
//! truncations) are real work and stay.
//!
//! This undoes the builder's convention of naming every wire/node as a
//! copy of an interned temp, leaving the named signal dead for DCE to
//! collect.

use crate::netlist::{Netlist, OpKind, SignalDef, SignalId};

/// Runs one round; returns the number of operand references redirected.
pub fn run(netlist: &mut Netlist) -> usize {
    // alias[i] = the signal `i` forwards to (transitively compressed).
    let n = netlist.signal_count();
    let mut alias: Vec<SignalId> = (0..n).map(|i| SignalId(i as u32)).collect();
    // `netlist.signals` cannot be iterated directly while `alias` is
    // written through the same index.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let sig = &netlist.signals[i];
        if let SignalDef::Op(op) = &sig.def {
            if op.kind == OpKind::Copy {
                let src = &netlist.signals[op.args[0].index()];
                if src.width == sig.width && src.signed == sig.signed {
                    alias[i] = op.args[0];
                }
            }
        }
    }
    // Path compression.
    fn root(alias: &mut [SignalId], i: SignalId) -> SignalId {
        let mut r = i;
        while alias[r.index()] != r {
            r = alias[r.index()];
        }
        let mut cur = i;
        while alias[cur.index()] != r {
            let next = alias[cur.index()];
            alias[cur.index()] = r;
            cur = next;
        }
        r
    }

    let mut forwarded = 0;
    let redirect = |id: &mut SignalId, alias: &mut Vec<SignalId>, forwarded: &mut usize| {
        let r = root(alias, *id);
        if r != *id {
            *id = r;
            *forwarded += 1;
        }
    };

    for i in 0..n {
        // A Copy's own operand is intentionally left alone when it IS the
        // alias (redirecting `x = Copy(y)` to `x = Copy(root(y))` is fine
        // and is what we do).
        let mut def = netlist.signals[i].def.clone();
        if let SignalDef::Op(op) = &mut def {
            for a in &mut op.args {
                redirect(a, &mut alias, &mut forwarded);
            }
        }
        netlist.signals[i].def = def;
    }
    for r in 0..netlist.regs.len() {
        // `next` points at the named next-signal; its def was redirected
        // above. The register's own link stays (it names the sink).
        let _ = r;
    }
    for m in 0..netlist.mems.len() {
        for rp in 0..netlist.mems[m].readers.len() {
            let mut addr = netlist.mems[m].readers[rp].addr;
            let mut en = netlist.mems[m].readers[rp].en;
            redirect(&mut addr, &mut alias, &mut forwarded);
            redirect(&mut en, &mut alias, &mut forwarded);
            netlist.mems[m].readers[rp].addr = addr;
            netlist.mems[m].readers[rp].en = en;
        }
        for wp in 0..netlist.mems[m].writers.len() {
            let port = netlist.mems[m].writers[wp].clone();
            let (mut a, mut e, mut k, mut d) = (port.addr, port.en, port.mask, port.data);
            redirect(&mut a, &mut alias, &mut forwarded);
            redirect(&mut e, &mut alias, &mut forwarded);
            redirect(&mut k, &mut alias, &mut forwarded);
            redirect(&mut d, &mut alias, &mut forwarded);
            let w = &mut netlist.mems[m].writers[wp];
            w.addr = a;
            w.en = e;
            w.mask = k;
            w.data = d;
        }
    }
    for s in 0..netlist.stops.len() {
        let mut en = netlist.stops[s].en;
        redirect(&mut en, &mut alias, &mut forwarded);
        netlist.stops[s].en = en;
    }
    for p in 0..netlist.printfs.len() {
        let mut en = netlist.printfs[p].en;
        redirect(&mut en, &mut alias, &mut forwarded);
        netlist.printfs[p].en = en;
        let mut args = netlist.printfs[p].args.clone();
        for a in &mut args {
            redirect(a, &mut alias, &mut forwarded);
        }
        netlist.printfs[p].args = args;
    }
    // Register next links: keep pointing at the named `$next` signal so the
    // register sink stays identifiable; its def was already redirected.
    forwarded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::build_test_netlist;

    #[test]
    fn forwards_through_alias_chains() {
        let mut n = build_test_netlist(
            "circuit F :\n  module F :\n    input a : UInt<4>\n    output o : UInt<4>\n    node x = a\n    node y = x\n    node z = y\n    o <= z\n",
        );
        run(&mut n);
        let o = n.find("o").unwrap();
        let a = n.find("a").unwrap();
        match &n.signal(o).def {
            SignalDef::Op(op) => {
                assert_eq!(op.kind, OpKind::Copy);
                assert_eq!(op.args[0], a, "chain must compress to the input");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keeps_width_changing_copies() {
        let mut n = build_test_netlist(
            "circuit W :\n  module W :\n    input a : UInt<4>\n    output o : UInt<8>\n    o <= pad(a, 8)\n",
        );
        run(&mut n);
        let o = n.find("o").unwrap();
        // o (8 bits) ultimately reads a widening Copy; the 4->8 extension
        // cannot be forwarded away.
        match &n.signal(o).def {
            SignalDef::Op(op) => {
                assert_eq!(op.kind, OpKind::Copy);
                let src = n.signal(op.args[0]);
                assert!(src.width == 8 || op.args[0] == n.find("a").unwrap());
            }
            other => panic!("{other:?}"),
        }
    }
}
