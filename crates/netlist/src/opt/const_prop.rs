//! Constant propagation and folding.
//!
//! Walks the signals in topological order; any operation whose operands
//! are all constants is evaluated at compile time and replaced by a
//! [`SignalDef::Const`]. Multiplexers with constant selectors collapse to
//! a copy of the selected branch even when the branches are not constant.

use crate::eval::{eval_op, Operand};
use crate::graph;
use crate::netlist::{Netlist, Op, OpKind, SignalDef};
use essent_bits::{words, Bits};

/// Runs one round; returns the number of definitions folded.
pub fn run(netlist: &mut Netlist) -> usize {
    let order = match graph::topo_order(netlist) {
        Ok(o) => o,
        Err(_) => return 0, // cycles were rejected at build; defensive
    };
    let mut folded = 0;
    for id in order {
        let sig = netlist.signal(id);
        let SignalDef::Op(op) = &sig.def else {
            continue;
        };
        let width = sig.width;

        // Mux with a constant selector collapses structurally.
        if op.kind == OpKind::Mux {
            if let SignalDef::Const(sel) = &netlist.signal(op.args[0]).def {
                let pick = if sel.bit(0) { op.args[1] } else { op.args[2] };
                netlist.signals[id.index()].def = SignalDef::Op(Op {
                    kind: OpKind::Copy,
                    args: vec![pick],
                    params: vec![],
                });
                folded += 1;
                continue;
            }
        }

        // Full folding when every operand is constant.
        let consts: Option<Vec<(Bits, u32, bool)>> = op
            .args
            .iter()
            .map(|&a| {
                let s = netlist.signal(a);
                match &s.def {
                    SignalDef::Const(c) => Some((c.clone(), s.width, s.signed)),
                    _ => None,
                }
            })
            .collect();
        let Some(consts) = consts else { continue };
        let operands: Vec<Operand> = consts
            .iter()
            .map(|(c, w, s)| Operand::new(c.limbs(), *w, *s))
            .collect();
        let mut dst = vec![0u64; words(width)];
        let (kind, params) = (op.kind, op.params.clone());
        eval_op(kind, &params, &mut dst, width, &operands);
        netlist.signals[id.index()].def = SignalDef::Const(Bits::from_limbs(dst, width));
        folded += 1;
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::build_test_netlist;

    #[test]
    fn folds_constant_trees() {
        let mut n = build_test_netlist(
            "circuit F :\n  module F :\n    output o : UInt<8>\n    node a = UInt<8>(2)\n    node b = UInt<8>(3)\n    node c = bits(mul(a, b), 7, 0)\n    o <= c\n",
        );
        run(&mut n);
        let o = n.find("o").unwrap();
        // o is Copy of something; chase one level.
        let val = match &n.signal(o).def {
            SignalDef::Const(c) => c.clone(),
            SignalDef::Op(op) if op.kind == OpKind::Copy => match &n.signal(op.args[0]).def {
                SignalDef::Const(c) => c.clone(),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        };
        assert_eq!(val.to_u64(), Some(6));
    }

    #[test]
    fn collapses_constant_mux_selector() {
        let mut n = build_test_netlist(
            "circuit M :\n  module M :\n    input a : UInt<4>\n    input b : UInt<4>\n    output o : UInt<4>\n    o <= mux(UInt<1>(1), a, b)\n",
        );
        run(&mut n);
        let muxes = n
            .signals()
            .iter()
            .filter(|s| matches!(&s.def, SignalDef::Op(op) if op.kind == OpKind::Mux))
            .count();
        assert_eq!(muxes, 0, "constant-select mux must collapse");
    }

    #[test]
    fn leaves_dynamic_ops_alone() {
        let mut n = build_test_netlist(
            "circuit D :\n  module D :\n    input a : UInt<4>\n    output o : UInt<5>\n    o <= add(a, UInt<4>(1))\n",
        );
        let folded = run(&mut n);
        assert_eq!(folded, 0);
    }
}
