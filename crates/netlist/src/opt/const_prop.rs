//! Constant propagation and folding.
//!
//! Two folding strategies share this module:
//!
//! * [`run`] — structural: any operation whose operands are all
//!   [`SignalDef::Const`] is evaluated at compile time; multiplexers
//!   with constant selectors collapse to a copy of the selected branch
//!   even when the branches are not constant.
//! * [`run_analysis`] — semantic: uses the known-bits/range facts from
//!   [`crate::analysis`] to fold operations whose *result* is proven
//!   constant even though their operands are not (a comparison decided
//!   by disjoint ranges, a mux whose selector bit is pinned by a mask),
//!   and to prune the unreachable way out of such muxes.

use crate::analysis::Analysis;
use crate::eval::{eval_op, Operand};
use crate::graph;
use crate::netlist::{Netlist, Op, OpKind, SignalDef};
use essent_bits::{words, Bits};

/// Runs one round; returns the number of definitions folded.
pub fn run(netlist: &mut Netlist) -> usize {
    let order = match graph::topo_order(netlist) {
        Ok(o) => o,
        Err(cycle) => {
            // Netlists are acyclic by construction (`Netlist::from_circuit`
            // rejects combinational cycles), so a cycle here means an
            // earlier pass corrupted the graph — don't mask that.
            debug_assert!(false, "const_prop on cyclic netlist: {cycle:?}");
            return 0;
        }
    };
    let mut folded = 0;
    for id in order {
        let sig = netlist.signal(id);
        let SignalDef::Op(op) = &sig.def else {
            continue;
        };
        let width = sig.width;

        // Mux with a constant selector collapses structurally.
        if op.kind == OpKind::Mux {
            if let SignalDef::Const(sel) = &netlist.signal(op.args[0]).def {
                let pick = if sel.bit(0) { op.args[1] } else { op.args[2] };
                netlist.signals[id.index()].def = SignalDef::Op(Op {
                    kind: OpKind::Copy,
                    args: vec![pick],
                    params: vec![],
                });
                folded += 1;
                continue;
            }
        }

        // Full folding when every operand is constant.
        let consts: Option<Vec<(Bits, u32, bool)>> = op
            .args
            .iter()
            .map(|&a| {
                let s = netlist.signal(a);
                match &s.def {
                    SignalDef::Const(c) => Some((c.clone(), s.width, s.signed)),
                    _ => None,
                }
            })
            .collect();
        let Some(consts) = consts else { continue };
        let operands: Vec<Operand> = consts
            .iter()
            .map(|(c, w, s)| Operand::new(c.limbs(), *w, *s))
            .collect();
        let mut dst = vec![0u64; words(width)];
        let (kind, params) = (op.kind, op.params.clone());
        eval_op(kind, &params, &mut dst, width, &operands);
        netlist.signals[id.index()].def = SignalDef::Const(Bits::from_limbs(dst, width));
        folded += 1;
    }
    folded
}

/// Folds operations the dataflow analysis decides; returns the number of
/// definitions rewritten. `analysis` must come from [`crate::analysis::analyze`]
/// on this netlist.
///
/// Only computed signals ([`SignalDef::Op`]) are rewritten: a register
/// output proven constant is a *finding* (lint `L0008`), not a fold —
/// rewriting it would detach the register from its feedback cone.
pub fn run_analysis(netlist: &mut Netlist, analysis: &Analysis) -> usize {
    debug_assert_eq!(
        analysis.values.len(),
        netlist.signal_count(),
        "stale analysis"
    );
    let mut folded = 0;
    for i in 0..netlist.signal_count() {
        let sig = &netlist.signals[i];
        let SignalDef::Op(op) = &sig.def else {
            continue;
        };
        let facts = &analysis.values[i];

        // The whole result is decided (comparisons with disjoint ranges,
        // masked values, reductions of pinned bits, ...).
        if let Some(value) = facts.as_singleton() {
            // Skip ops that are already plain constants-in-waiting; the
            // structural pass owns those (keeps the two counters honest).
            let all_const = op
                .args
                .iter()
                .all(|&a| matches!(netlist.signal(a).def, SignalDef::Const(_)));
            if !all_const {
                netlist.signals[i].def = SignalDef::Const(value);
                folded += 1;
                continue;
            }
        }

        // Mux whose selector bit is pinned: the dead way is unreachable.
        if op.kind == OpKind::Mux {
            let sel = &analysis.values[op.args[0].index()];
            let decided = if sel.width == 0 {
                Some(false)
            } else {
                sel.bit(0)
            };
            if let Some(bit) = decided {
                let pick = if bit { op.args[1] } else { op.args[2] };
                netlist.signals[i].def = SignalDef::Op(Op {
                    kind: OpKind::Copy,
                    args: vec![pick],
                    params: vec![],
                });
                folded += 1;
            }
        }
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::build_test_netlist;

    #[test]
    fn folds_constant_trees() {
        let mut n = build_test_netlist(
            "circuit F :\n  module F :\n    output o : UInt<8>\n    node a = UInt<8>(2)\n    node b = UInt<8>(3)\n    node c = bits(mul(a, b), 7, 0)\n    o <= c\n",
        );
        run(&mut n);
        let o = n.find("o").unwrap();
        // o is Copy of something; chase one level.
        let val = match &n.signal(o).def {
            SignalDef::Const(c) => c.clone(),
            SignalDef::Op(op) if op.kind == OpKind::Copy => match &n.signal(op.args[0]).def {
                SignalDef::Const(c) => c.clone(),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        };
        assert_eq!(val.to_u64(), Some(6));
    }

    #[test]
    fn collapses_constant_mux_selector() {
        let mut n = build_test_netlist(
            "circuit M :\n  module M :\n    input a : UInt<4>\n    input b : UInt<4>\n    output o : UInt<4>\n    o <= mux(UInt<1>(1), a, b)\n",
        );
        run(&mut n);
        let muxes = n
            .signals()
            .iter()
            .filter(|s| matches!(&s.def, SignalDef::Op(op) if op.kind == OpKind::Mux))
            .count();
        assert_eq!(muxes, 0, "constant-select mux must collapse");
    }

    #[test]
    fn analysis_folds_decided_comparison() {
        // lt(and(a, 15), 200) is always true though `a` is free.
        let mut n = build_test_netlist(
            "circuit A :\n  module A :\n    input a : UInt<8>\n    output o : UInt<1>\n    node low = and(a, UInt<8>(15))\n    node c = lt(low, UInt<8>(200))\n    o <= c\n",
        );
        assert_eq!(run(&mut n), 0, "not structurally constant");
        let facts = crate::analysis::analyze(&n).unwrap();
        assert!(run_analysis(&mut n, &facts) > 0);
        let c = n.expect_signal("c");
        // `c` names a copy of the interned comparison; chase one level.
        let val = match &n.signal(c).def {
            SignalDef::Const(b) => b.clone(),
            SignalDef::Op(op) if op.kind == OpKind::Copy => match &n.signal(op.args[0]).def {
                SignalDef::Const(b) => b.clone(),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        };
        assert!(val.bit(0), "lt(low, 200) is always true");
    }

    #[test]
    fn analysis_prunes_unreachable_mux_way() {
        // The selector geq(x, 0) is always 1 for unsigned x.
        let mut n = build_test_netlist(
            "circuit U :\n  module U :\n    input x : UInt<8>\n    input t : UInt<8>\n    input f : UInt<8>\n    output o : UInt<8>\n    node sel = geq(x, UInt<8>(0))\n    o <= mux(sel, t, f)\n",
        );
        let facts = crate::analysis::analyze(&n).unwrap();
        assert!(run_analysis(&mut n, &facts) > 0);
        let muxes = n
            .signals()
            .iter()
            .filter(|s| matches!(&s.def, SignalDef::Op(op) if op.kind == OpKind::Mux))
            .count();
        assert_eq!(muxes, 0, "decided mux must collapse to the live way");
    }

    #[test]
    fn leaves_dynamic_ops_alone() {
        let mut n = build_test_netlist(
            "circuit D :\n  module D :\n    input a : UInt<4>\n    output o : UInt<5>\n    o <= add(a, UInt<4>(1))\n",
        );
        let folded = run(&mut n);
        assert_eq!(folded, 0);
    }
}
