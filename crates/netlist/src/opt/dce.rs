//! Dead-code elimination: removes every signal not transitively required
//! by a sink (external output, register next-value, memory port, stop, or
//! printf), then compacts signal ids.
//!
//! Inputs are always preserved — the testbench interface is part of the
//! design's contract even when an input is unused.

use crate::graph;
use crate::netlist::{Netlist, SignalDef, SignalId};

/// Runs one round; returns the number of signals removed.
pub fn run(netlist: &mut Netlist) -> usize {
    // Liveness fixpoint: a register is live only if its *output* is
    // observed; a memory is live only if some read data is observed. Live
    // state adds new roots (the register's next-value, the memory's write
    // port fields), which can make more state live.
    let mut base_roots: Vec<SignalId> = Vec::new();
    base_roots.extend(netlist.outputs.iter().copied());
    base_roots.extend(netlist.inputs.iter().copied());
    for s in &netlist.stops {
        base_roots.push(s.en);
    }
    for p in &netlist.printfs {
        base_roots.push(p.en);
        base_roots.extend(p.args.iter().copied());
    }
    let mut live_regs = vec![false; netlist.regs.len()];
    let mut live_mems = vec![false; netlist.mems.len()];
    let mut live;
    loop {
        let mut roots = base_roots.clone();
        for (i, reg) in netlist.regs.iter().enumerate() {
            if live_regs[i] {
                roots.push(reg.next);
            }
        }
        for (i, mem) in netlist.mems.iter().enumerate() {
            if live_mems[i] {
                for w in &mem.writers {
                    roots.extend([w.addr, w.en, w.mask, w.data]);
                }
            }
        }
        live = graph::reaching(netlist, &roots);
        let mut changed = false;
        for (i, reg) in netlist.regs.iter().enumerate() {
            if !live_regs[i] && live[reg.out.index()] {
                live_regs[i] = true;
                changed = true;
            }
        }
        for (i, mem) in netlist.mems.iter().enumerate() {
            if !live_mems[i] && mem.readers.iter().any(|r| live[r.data.index()]) {
                live_mems[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Keep live state's identity signals.
    for (i, reg) in netlist.regs.iter().enumerate() {
        if live_regs[i] {
            live[reg.out.index()] = true;
            live[reg.next.index()] = true;
        }
    }
    for (i, mem) in netlist.mems.iter().enumerate() {
        if live_mems[i] {
            for r in &mem.readers {
                live[r.data.index()] = true;
            }
        }
    }

    let dead = live.iter().filter(|&&l| !l).count();
    if dead == 0 {
        return 0;
    }

    // Build the compaction map.
    let mut remap: Vec<Option<SignalId>> = vec![None; netlist.signal_count()];
    let mut next = 0u32;
    for (i, &is_live) in live.iter().enumerate() {
        if is_live {
            remap[i] = Some(SignalId(next));
            next += 1;
        }
    }
    let map = |id: SignalId| remap[id.index()].expect("live signal referenced a dead one");

    // Compact the signal table.
    let old_signals = std::mem::take(&mut netlist.signals);
    for (i, mut sig) in old_signals.into_iter().enumerate() {
        if !live[i] {
            continue;
        }
        if let SignalDef::Op(op) = &mut sig.def {
            for a in &mut op.args {
                *a = map(*a);
            }
        }
        netlist.signals.push(sig);
    }

    // Registers: drop registers whose output is unobserved, remap the
    // rest and renumber RegOut defs. The criterion must be the fixpoint's
    // own verdict, not next-value liveness: `next` may alias a signal
    // that is live for unrelated reasons (e.g. `r <= n` next to
    // `out <= n`) while the register's output is dead.
    let old_regs = std::mem::take(&mut netlist.regs);
    for (ri, mut reg) in old_regs.into_iter().enumerate() {
        if !live_regs[ri] {
            continue;
        }
        reg.out = map(reg.out);
        reg.next = map(reg.next);
        let new_id = crate::netlist::RegId(netlist.regs.len() as u32);
        netlist.signals[reg.out.index()].def = SignalDef::RegOut(new_id);
        netlist.regs.push(reg);
    }

    // Memories: drop dead ones, remap the ports of the survivors.
    let old_mems = std::mem::take(&mut netlist.mems);
    for (mi, mut m) in old_mems.into_iter().enumerate() {
        if !live_mems[mi] {
            continue;
        }
        let new_id = crate::netlist::MemId(netlist.mems.len() as u32);
        for (pi, r) in m.readers.iter_mut().enumerate() {
            r.addr = map(r.addr);
            r.en = map(r.en);
            r.data = map(r.data);
            netlist.signals[r.data.index()].def = SignalDef::MemRead {
                mem: new_id,
                port: pi,
            };
        }
        for w in &mut m.writers {
            w.addr = map(w.addr);
            w.en = map(w.en);
            w.mask = map(w.mask);
            w.data = map(w.data);
        }
        netlist.mems.push(m);
    }

    for i in &mut netlist.inputs {
        *i = map(*i);
    }
    for o in &mut netlist.outputs {
        *o = map(*o);
    }
    for s in &mut netlist.stops {
        s.en = map(s.en);
    }
    for p in &mut netlist.printfs {
        p.en = map(p.en);
        for a in &mut p.args {
            *a = map(*a);
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::build_test_netlist;

    #[test]
    fn removes_dead_logic_keeps_live() {
        let mut n = build_test_netlist(
            "circuit D :\n  module D :\n    input a : UInt<4>\n    output o : UInt<4>\n    node dead1 = not(a)\n    node dead2 = xor(dead1, a)\n    o <= a\n",
        );
        let removed = run(&mut n);
        assert!(removed >= 2, "dead chain must go (removed {removed})");
        assert!(n.find("dead1").is_none());
        assert!(n.find("o").is_some());
        assert!(n.find("a").is_some(), "inputs always survive");
    }

    #[test]
    fn keeps_register_feedback() {
        let mut n = build_test_netlist(
            "circuit R :\n  module R :\n    input clock : Clock\n    output q : UInt<4>\n    reg r : UInt<4>, clock\n    r <= tail(add(r, UInt<4>(1)), 1)\n    q <= r\n",
        );
        run(&mut n);
        assert_eq!(n.regs().len(), 1);
        assert!(n.find("r").is_some());
    }

    #[test]
    fn drops_fully_dead_register() {
        let mut n = build_test_netlist(
            "circuit Z :\n  module Z :\n    input clock : Clock\n    input a : UInt<4>\n    output o : UInt<4>\n    reg unused : UInt<4>, clock\n    unused <= a\n    o <= a\n",
        );
        run(&mut n);
        assert_eq!(n.regs().len(), 0, "unobserved register is dead");
        assert!(n.find("unused").is_none());
    }

    #[test]
    fn mem_ports_stay_live() {
        let mut n = build_test_netlist(
            "circuit M :\n  module M :\n    input clock : Clock\n    input addr : UInt<2>\n    output o : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 4\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= addr\n    m.w.clk <= clock\n    m.w.en <= UInt<1>(1)\n    m.w.addr <= addr\n    m.w.data <= m.r.data\n    m.w.mask <= UInt<1>(1)\n    o <= m.r.data\n",
        );
        run(&mut n);
        assert_eq!(n.mems().len(), 1);
        let m = &n.mems()[0];
        // Ids were remapped but stay coherent.
        assert!(matches!(
            n.signal(m.readers[0].data).def,
            SignalDef::MemRead { .. }
        ));
        // The clk fields are dead (nothing reads them).
        assert!(n.find("m.r.clk").is_none());
    }

    #[test]
    fn validates_after_compaction() {
        let mut n = build_test_netlist(
            "circuit V :\n  module V :\n    input clock : Clock\n    input a : UInt<8>\n    output o : UInt<8>\n    node t1 = not(a)\n    node t2 = not(t1)\n    reg r : UInt<8>, clock\n    r <= t2\n    node dead = add(t1, a)\n    o <= r\n",
        );
        run(&mut n);
        // Every operand reference must be in range after compaction.
        for s in n.signals() {
            for d in n.deps_of(s) {
                assert!(d.index() < n.signal_count());
            }
        }
        // And the graph is still acyclic.
        assert!(crate::graph::topo_order(&n).is_ok());
    }
}
