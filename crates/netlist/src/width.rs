//! FIRRTL width and signedness inference rules for primitive operations.
//!
//! These follow the FIRRTL specification's result-type table. The builder
//! applies them bottom-up over expression trees, so every netlist signal
//! carries an exact width.

use crate::netlist::OpKind;
use std::fmt;

/// Width/signedness of one operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ty {
    pub width: u32,
    pub signed: bool,
}

impl Ty {
    pub fn new(width: u32, signed: bool) -> Self {
        Ty { width, signed }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}<{}>",
            if self.signed { "SInt" } else { "UInt" },
            self.width
        )
    }
}

/// Error produced when an op is applied to incompatible operand types or
/// would produce an absurd width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthError(pub String);

impl fmt::Display for WidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "width error: {}", self.0)
    }
}

impl std::error::Error for WidthError {}

/// Hard cap on inferred widths; `dshl` can formally explode
/// (`w + 2^shift_width - 1`) and anything past this is a design bug.
pub const MAX_WIDTH: u32 = 1 << 16;

/// Computes the result type of `kind` applied to `args` with `params`,
/// per the FIRRTL spec.
///
/// # Errors
///
/// Returns [`WidthError`] on operand-count mismatch, mixed signedness
/// where the spec forbids it, out-of-range bit indices, or a result wider
/// than [`MAX_WIDTH`].
pub fn infer(kind: OpKind, args: &[Ty], params: &[u64]) -> Result<Ty, WidthError> {
    use OpKind::*;
    let err = |m: String| Err(WidthError(m));
    let need = |n: usize| -> Result<(), WidthError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(WidthError(format!(
                "{kind:?} expects {n} operands, got {}",
                args.len()
            )))
        }
    };
    let same_sign = || -> Result<bool, WidthError> {
        if args[0].signed != args[1].signed {
            Err(WidthError(format!(
                "{kind:?} requires matching signedness ({} vs {})",
                args[0], args[1]
            )))
        } else {
            Ok(args[0].signed)
        }
    };
    let checked = |w: u32, signed: bool| -> Result<Ty, WidthError> {
        if w > MAX_WIDTH {
            Err(WidthError(format!(
                "{kind:?} result width {w} exceeds {MAX_WIDTH}"
            )))
        } else {
            Ok(Ty::new(w, signed))
        }
    };

    match kind {
        Add | Sub => {
            need(2)?;
            let s = same_sign()?;
            // `sub` on UInt yields SInt in strict FIRRTL 1.x? No: spec says
            // sub of UInts is UInt (wrap semantics handled by width+1).
            checked(args[0].width.max(args[1].width) + 1, s)
        }
        Mul => {
            need(2)?;
            let s = same_sign()?;
            checked(args[0].width + args[1].width, s)
        }
        Div => {
            need(2)?;
            let s = same_sign()?;
            checked(args[0].width + s as u32, s)
        }
        Rem => {
            need(2)?;
            let s = same_sign()?;
            checked(args[0].width.min(args[1].width).max(1), s)
        }
        Lt | Leq | Gt | Geq | Eq | Neq => {
            need(2)?;
            same_sign()?;
            checked(1, false)
        }
        Shl => {
            need(1)?;
            checked(args[0].width + params[0] as u32, args[0].signed)
        }
        Shr => {
            need(1)?;
            let w = args[0].width.saturating_sub(params[0] as u32).max(1);
            checked(w, args[0].signed)
        }
        Dshl => {
            need(2)?;
            if args[1].signed {
                return err("dshl shift amount must be unsigned".into());
            }
            let grow = 1u64
                .checked_shl(args[1].width)
                .map(|v| v - 1)
                .unwrap_or(u64::from(MAX_WIDTH) + 1);
            let w = args[0].width as u64 + grow;
            if w > MAX_WIDTH as u64 {
                return err(format!(
                    "dshl result width {w} exceeds {MAX_WIDTH}; narrow the shift operand"
                ));
            }
            checked(w as u32, args[0].signed)
        }
        Dshr => {
            need(2)?;
            if args[1].signed {
                return err("dshr shift amount must be unsigned".into());
            }
            checked(args[0].width, args[0].signed)
        }
        Neg => {
            need(1)?;
            checked(args[0].width + 1, true)
        }
        Not => {
            need(1)?;
            checked(args[0].width, false)
        }
        And | Or | Xor => {
            need(2)?;
            same_sign()?;
            checked(args[0].width.max(args[1].width), false)
        }
        Andr | Orr | Xorr => {
            need(1)?;
            checked(1, false)
        }
        Cat => {
            need(2)?;
            checked(args[0].width + args[1].width, false)
        }
        Bits => {
            need(1)?;
            let (hi, lo) = (params[0] as u32, params[1] as u32);
            if hi < lo || hi >= args[0].width.max(1) {
                return err(format!(
                    "bits({hi}, {lo}) out of range for width {}",
                    args[0].width
                ));
            }
            checked(hi - lo + 1, false)
        }
        Mux => {
            need(3)?;
            if args[1].signed != args[2].signed {
                return err(format!(
                    "mux branches must share signedness ({} vs {})",
                    args[1], args[2]
                ));
            }
            if args[0].width != 1 {
                return err(format!("mux selector must be 1 bit, got {}", args[0]));
            }
            checked(args[1].width.max(args[2].width), args[1].signed)
        }
        Copy => {
            // Copy's destination type is chosen by the builder, not
            // inferred; calling infer on it is a logic error.
            err("Copy has caller-chosen width".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::OpKind::*;

    fn u(w: u32) -> Ty {
        Ty::new(w, false)
    }
    fn s(w: u32) -> Ty {
        Ty::new(w, true)
    }

    #[test]
    fn arithmetic_widths() {
        assert_eq!(infer(Add, &[u(8), u(4)], &[]).unwrap(), u(9));
        assert_eq!(infer(Sub, &[s(8), s(8)], &[]).unwrap(), s(9));
        assert_eq!(infer(Mul, &[u(8), u(4)], &[]).unwrap(), u(12));
        assert_eq!(infer(Div, &[u(8), u(4)], &[]).unwrap(), u(8));
        assert_eq!(infer(Div, &[s(8), s(4)], &[]).unwrap(), s(9));
        assert_eq!(infer(Rem, &[u(8), u(4)], &[]).unwrap(), u(4));
    }

    #[test]
    fn comparison_and_reduction_are_one_bit() {
        assert_eq!(infer(Lt, &[u(8), u(4)], &[]).unwrap(), u(1));
        assert_eq!(infer(Eq, &[s(8), s(8)], &[]).unwrap(), u(1));
        assert_eq!(infer(Orr, &[u(13)], &[]).unwrap(), u(1));
    }

    #[test]
    fn shifts() {
        assert_eq!(infer(Shl, &[u(8)], &[3]).unwrap(), u(11));
        assert_eq!(infer(Shr, &[u(8)], &[3]).unwrap(), u(5));
        assert_eq!(infer(Shr, &[u(8)], &[20]).unwrap(), u(1));
        assert_eq!(infer(Dshl, &[u(8), u(3)], &[]).unwrap(), u(15));
        assert_eq!(infer(Dshr, &[s(8), u(3)], &[]).unwrap(), s(8));
    }

    #[test]
    fn structure_ops() {
        assert_eq!(infer(Cat, &[u(8), s(4)], &[]).unwrap(), u(12));
        assert_eq!(infer(Bits, &[u(8)], &[7, 4]).unwrap(), u(4));
        assert_eq!(infer(Mux, &[u(1), u(8), u(4)], &[]).unwrap(), u(8));
        assert_eq!(infer(Neg, &[u(8)], &[]).unwrap(), s(9));
        assert_eq!(infer(Not, &[s(8)], &[]).unwrap(), u(8));
        assert_eq!(infer(And, &[s(8), s(4)], &[]).unwrap(), u(8));
    }

    #[test]
    fn rejects_mixed_signs_and_bad_ranges() {
        assert!(infer(Add, &[u(8), s(8)], &[]).is_err());
        assert!(infer(Bits, &[u(8)], &[8, 0]).is_err());
        assert!(infer(Bits, &[u(8)], &[2, 5]).is_err());
        assert!(infer(Mux, &[u(2), u(8), u(8)], &[]).is_err());
        assert!(infer(Mux, &[u(1), u(8), s(8)], &[]).is_err());
    }

    #[test]
    fn dshl_width_explosion_is_caught() {
        assert!(infer(Dshl, &[u(8), u(32)], &[]).is_err());
    }
}
