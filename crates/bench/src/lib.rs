//! Shared harness for the table/figure reproduction binaries.
//!
//! Every binary accepts `--quick` (default: small workload scales so the
//! whole suite finishes in minutes) or `--full` (≈10× longer runs with
//! cycle-count ratios closer to the paper's Table II), plus optional
//! design names (`r16 r18 boom`) to restrict the sweep.

use essent_designs::soc::{generate_soc, SocConfig};
use essent_designs::workloads::{dhrystone, matmul, pchase, run_workload, RunResult, Workload};
use essent_netlist::{opt, Netlist};
use essent_sim::{EngineConfig, EssentSim, EventDrivenSim, FullCycleSim, Simulator};
use std::time::{Duration, Instant};

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// 1 for `--quick` (default), 10 for `--full`.
    pub scale: u32,
    /// Which designs to run (default: all three).
    pub designs: Vec<String>,
    /// `--verify`: run the static verifier stack on every built design
    /// before measuring, aborting on error findings.
    pub verify: bool,
    /// `--lanes N`: batched-lane count for lane-aware binaries
    /// (default 8; 1..=64).
    pub lanes: usize,
    /// `--seed-stride K`: per-lane stimulus stride — lane `l`'s stimulus
    /// derives from seed `l * K`, so lanes diverge deterministically
    /// (default 1; 0 replays identical stimulus on every lane).
    pub seed_stride: u64,
}

impl Cli {
    /// Parses `std::env::args`.
    pub fn parse() -> Cli {
        let mut cli = Cli {
            scale: 1,
            designs: Vec::new(),
            verify: false,
            lanes: 8,
            seed_stride: 1,
        };
        // Value-taking flag currently awaiting its argument.
        let mut pending: Option<&'static str> = None;
        for arg in std::env::args().skip(1) {
            if let Some(flag) = pending.take() {
                let parsed = arg.parse::<u64>();
                match (flag, parsed) {
                    ("--lanes", Ok(n)) if (1..=64).contains(&n) => cli.lanes = n as usize,
                    ("--seed-stride", Ok(k)) => cli.seed_stride = k,
                    _ => panic!("`{flag}` needs a numeric argument, got `{arg}`"),
                }
                continue;
            }
            match arg.as_str() {
                "--full" => cli.scale = 10,
                "--quick" => cli.scale = 1,
                "--verify" => cli.verify = true,
                "--lanes" => pending = Some("--lanes"),
                "--seed-stride" => pending = Some("--seed-stride"),
                "r16" | "r18" | "boom" | "tiny" => cli.designs.push(arg),
                other => {
                    eprintln!(
                        "usage: [--quick|--full] [--verify] [--lanes N] \
                         [--seed-stride K] [r16 r18 boom tiny]"
                    );
                    panic!("unknown argument `{other}`");
                }
            }
        }
        if let Some(flag) = pending {
            panic!("`{flag}` needs a numeric argument");
        }
        if cli.designs.is_empty() {
            cli.designs = vec!["r16".into(), "r18".into(), "boom".into()];
        }
        cli
    }

    /// The configured designs.
    pub fn configs(&self) -> Vec<SocConfig> {
        self.designs
            .iter()
            .map(|d| match d.as_str() {
                "tiny" => SocConfig::tiny(),
                "r16" => SocConfig::r16(),
                "r18" => SocConfig::r18(),
                "boom" => SocConfig::boom(),
                other => panic!("unknown design `{other}`"),
            })
            .collect()
    }
}

/// A built design: optimized and baseline (unoptimized) netlists.
pub struct BuiltDesign {
    pub config: SocConfig,
    pub optimized: Netlist,
    pub unoptimized: Netlist,
}

/// Generates and compiles one SoC configuration both ways.
///
/// # Panics
///
/// Panics if the generated FIRRTL fails to build (a bug, covered by
/// tests).
pub fn build_design(config: &SocConfig) -> BuiltDesign {
    let src = generate_soc(config);
    let circuit = essent_firrtl::parse(&src).expect("generated FIRRTL parses");
    let lowered = essent_firrtl::passes::lower(circuit).expect("generated FIRRTL lowers");
    let unoptimized = Netlist::from_circuit(&lowered).expect("netlist builds");
    let mut optimized = unoptimized.clone();
    opt::optimize(&mut optimized, &opt::OptConfig::default());
    BuiltDesign {
        config: config.clone(),
        optimized,
        unoptimized,
    }
}

/// Runs the full `essent-verify` stack on a built design when the
/// `--verify` flag was given; a no-op otherwise.
///
/// # Panics
///
/// Panics with the full report if the verifier finds any error —
/// measuring a design whose schedule or bytecode is broken would produce
/// garbage numbers.
pub fn verify_built(cli: &Cli, design: &BuiltDesign) {
    if !cli.verify {
        return;
    }
    for (label, netlist) in [
        ("optimized", &design.optimized),
        ("unoptimized", &design.unoptimized),
    ] {
        let artifacts = essent_verify::verify_design_full(netlist, &EngineConfig::default());
        let report = &artifacts.report;
        assert!(
            report.is_clean(),
            "design `{}` ({label}) failed verification:\n{report}",
            design.config.name
        );
        let independent = artifacts
            .may_overlap
            .as_ref()
            .map_or(0, essent_verify::MayOverlap::independent_pairs);
        eprintln!(
            "verify: `{}` ({label}) ok, {} finding(s), 0 errors, \
             {independent} cross-cycle independent pair(s)",
            design.config.name,
            report.len()
        );
    }
}

/// The three paper workloads at the harness scale.
///
/// `--quick` compresses the cycle-count ratios so the slowest rows stay
/// tractable; `--full` stretches toward the paper's Table II proportions
/// (pchase ≫ matmul > dhrystone).
pub fn workload_set(scale: u32) -> Vec<Workload> {
    vec![
        dhrystone(60 * scale).expect("dhrystone assembles"),
        matmul(8, 2 * scale).expect("matmul assembles"),
        pchase(512, 6_000 * scale).expect("pchase assembles"),
    ]
}

/// The engines of Table III, in row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Classic FIFO event-driven on the optimized netlist — the
    /// commercial event-driven simulator's row ("CommVer").
    CommVer,
    /// Optimized full-cycle — the "Verilator" row (the paper notes its
    /// Baseline is performance-comparable to Verilator).
    Verilator,
    /// Unoptimized full-cycle: the paper's Baseline tool flow.
    Baseline,
    /// The CCSS simulator with all optimizations.
    Essent,
}

impl Engine {
    pub const ALL: [Engine; 4] = [
        Engine::CommVer,
        Engine::Verilator,
        Engine::Baseline,
        Engine::Essent,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Engine::CommVer => "CommVer*",
            Engine::Verilator => "Verilator*",
            Engine::Baseline => "Baseline",
            Engine::Essent => "ESSENT",
        }
    }

    /// Instantiates the engine over the appropriate netlist variant.
    pub fn build(self, design: &BuiltDesign) -> Box<dyn Simulator> {
        let quiet = EngineConfig {
            capture_printf: false,
            ..EngineConfig::default()
        };
        match self {
            Engine::CommVer => Box::new(EventDrivenSim::new(
                &design.optimized,
                &EngineConfig {
                    event_levelized: false,
                    ..quiet
                },
            )),
            Engine::Verilator => Box::new(FullCycleSim::new(&design.optimized, &quiet)),
            Engine::Baseline => Box::new(FullCycleSim::new(
                &design.unoptimized,
                &EngineConfig {
                    capture_printf: false,
                    ..EngineConfig::baseline()
                },
            )),
            Engine::Essent => Box::new(EssentSim::new(&design.optimized, &quiet)),
        }
    }
}

/// Outcome of one timed cell.
#[derive(Debug, Clone, Copy)]
pub struct TimedRun {
    pub elapsed: Duration,
    pub result: RunResult,
}

/// Builds the engine, loads the workload, and times the run to
/// completion.
pub fn time_run(engine: Engine, design: &BuiltDesign, workload: &Workload) -> TimedRun {
    let mut sim = engine.build(design);
    let start = Instant::now();
    let result = run_workload(sim.as_mut(), workload, u64::MAX / 2);
    let elapsed = start.elapsed();
    assert!(
        result.finished,
        "{} did not finish {} on {}",
        engine.name(),
        workload.name,
        design.config.name
    );
    TimedRun { elapsed, result }
}

/// Simulation rate in kHz.
pub fn khz(run: &TimedRun) -> f64 {
    run.result.cycles as f64 / run.elapsed.as_secs_f64() / 1e3
}

/// Machine-speed calibration: the golden netlist interpreter's rate on
/// this design, in kHz. The interpreter lives in `essent-netlist` and
/// contains no engine or profiler code at all, so the *ratio* of two
/// calibration rates taken at different times (or on different machines)
/// isolates machine speed from any engine change — benches that gate a
/// live rate against a recorded one scale the record by this ratio.
/// Held in reset so no stop/assert can halt the run early.
pub fn calibration_khz(netlist: &Netlist) -> f64 {
    let mut golden = essent_netlist::interp::Interpreter::new(netlist);
    if let Some(id) = netlist.find("reset") {
        if matches!(netlist.signal(id).def, essent_netlist::SignalDef::Input) {
            golden.poke("reset", essent_bits::Bits::from_u64(1, 1));
        }
    }
    let start = Instant::now();
    let mut cycles = 0u64;
    loop {
        let did = golden.step(256);
        cycles += did;
        if did < 256 || start.elapsed().as_secs_f64() >= 0.2 {
            break;
        }
    }
    cycles as f64 / start.elapsed().as_secs_f64() / 1e3
}

/// Formats a duration like the paper's seconds columns.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Extracts the nested per-design `"profile": { ... }` object for
/// `name` out of a `BENCH_profile.json`-style file (brace matching; our
/// own hand-rolled format, so a string scan keeps this dependency-free)
/// and converts it into an [`ActivityPrior`] keyed to `netlist`'s plan
/// at `c_p`.
///
/// Returns `None` when the design is absent or the nested report does
/// not parse — callers treat that as "no feedback available" and fall
/// back to the neutral prior. Summary-form reports (the default
/// `BENCH_profile.json`) yield a *partial* prior: only the recorded
/// top-N partitions carry rates, everything else stays unknown, which
/// the merge phase treats as cold.
pub fn load_feedback(
    text: &str,
    netlist: &Netlist,
    name: &str,
    c_p: usize,
) -> Option<essent_core::partition::ActivityPrior> {
    let at = text.find(&format!("\"name\": \"{name}\""))?;
    let rest = &text[at..];
    let key = "\"profile\": {";
    let start = rest.find(key)? + key.len() - 1;
    let bytes = &rest.as_bytes()[start..];
    let mut depth = 0usize;
    let mut len = None;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    len = Some(i + 1);
                    break;
                }
            }
            _ => {}
        }
    }
    let report = essent_sim::ProfileReport::from_json(&rest[start..start + len?])?;
    let plan = essent_core::plan::CcssPlan::build(netlist, c_p);
    Some(essent_sim::activity_prior(netlist, &plan, &report))
}
