//! **Profile** — the essent-profile telemetry run: per-partition evals,
//! skips, wake-cause attribution, and estimated eval time on the paper
//! designs, plus the disabled-profiler overhead gate.
//!
//! Per design this measures the CCSS engine three ways:
//!
//! * profiled — `EngineConfig::profile` on, producing the
//!   [`ProfileReport`] that lands in `BENCH_profile.json` (per-partition
//!   counters, state/input wake causes, top-10 hottest partitions);
//! * unprofiled — same config, profiler off, best-of-N: this rate gates
//!   against `BENCH_interp.json`'s `tier_khz` when that file exists — a
//!   disabled profiler must cost at most [`OVERHEAD_TOLERANCE`]. Raw
//!   throughput drifts far more than the tolerance between processes
//!   and differs wildly between machines, so the recorded rate is
//!   first scaled by a *machine factor*: the ratio of the golden
//!   netlist interpreter's rate measured now to the `calibration_khz`
//!   recorded alongside the baseline. The golden interpreter contains
//!   no engine or profiler code, so the ratio isolates machine speed
//!   and the gate measures only what the profiler's probe sites cost.
//!   Each rate sample is paired with its own adjacent calibration draw
//!   and the best *corrected* pair wins, so both sides of the ratio sit
//!   in the same noise window even when a shared machine's speed swings
//!   mid-run;
//! * for the first design, a short profiled warm-up with a Chrome trace
//!   window and a cycle-bucket heatmap, written alongside the JSON
//!   (`PROFILE_<design>.trace.json`, `PROFILE_<design>.heatmap.csv`).
//!
//! Run: `cargo run --release -p essent-bench --bin profile
//! [--quick|--full|--smoke] [--feedback BENCH_profile.json]
//! [tiny r16 r18 boom]`. `--smoke` is the CI mode: tiny only, shortest
//! workload. Writes `BENCH_profile.json` — summary form by default
//! (totals, hottest partitions, top wake causes); `--full` keeps the
//! complete per-partition dump. `--feedback` profiles the
//! feedback-repartitioned engine seeded from a previous report instead
//! of the stock one.

use essent_bench::{build_design, khz, workload_set, BuiltDesign, TimedRun};
use essent_designs::soc::SocConfig;
use essent_designs::workloads::{run_workload, Workload};
use essent_sim::{EngineConfig, EssentSim, ProfileReport, Simulator};
use std::fmt::Write as _;
use std::time::Instant;

/// Maximum throughput a *disabled* profiler may cost relative to the
/// interp bench's tier rate (2%): the probe sites must monomorphize
/// away.
const OVERHEAD_TOLERANCE: f64 = 0.02;

/// The recorded baseline the overhead gate compares against, plus the
/// same-process calibration that ports it to this machine and moment.
struct Baseline {
    /// `tier_khz` from `BENCH_interp.json`.
    tier_khz: f64,
    /// `calibration_khz` recorded alongside it, when present.
    cal_ref: Option<f64>,
    /// Golden-interpreter rate measured in this process, drawn
    /// adjacent to the winning gated measurement (see [`measure_off`]).
    cal_now: f64,
}

impl Baseline {
    /// The recorded tier rate scaled to this machine's current speed.
    fn expected_khz(&self) -> f64 {
        match self.cal_ref {
            Some(r) if r > 0.0 => self.tier_khz * self.cal_now / r,
            _ => self.tier_khz,
        }
    }
}

struct Row {
    name: String,
    report: ProfileReport,
    profiled_khz: f64,
    off_khz: f64,
    /// Present when `BENCH_interp.json` records this design.
    baseline: Option<Baseline>,
}

/// Parsed command line, separated from `main` so flag interactions are
/// unit-testable.
struct Args {
    scale: u32,
    smoke: bool,
    feedback: Option<String>,
    designs: Vec<String>,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Args {
    let mut parsed = Args {
        scale: 1,
        smoke: false,
        feedback: None,
        designs: Vec::new(),
    };
    let mut feedback_next = false;
    for arg in args {
        // `--feedback`'s path is the next *non-flag* argument. Consuming
        // the very next token used to eat `--full` in
        // `--feedback --full PATH`, silently downgrading the report to
        // summary form before the prior was even loaded.
        if feedback_next && !arg.starts_with("--") {
            parsed.feedback = Some(arg);
            feedback_next = false;
            continue;
        }
        match arg.as_str() {
            "--full" => parsed.scale = 10,
            "--quick" => parsed.scale = 1,
            "--smoke" => parsed.smoke = true,
            "--feedback" => feedback_next = true,
            "tiny" | "r16" | "r18" | "boom" => parsed.designs.push(arg),
            other => {
                eprintln!(
                    "usage: profile [--quick|--full|--smoke] \
                     [--feedback BENCH_profile.json] [tiny r16 r18 boom]"
                );
                panic!("unknown argument `{other}`");
            }
        }
    }
    assert!(!feedback_next, "--feedback needs a file argument");
    if parsed.designs.is_empty() {
        parsed.designs = if parsed.smoke {
            vec!["tiny".to_string()]
        } else {
            ["tiny", "r16", "r18", "boom"].map(String::from).to_vec()
        };
    }
    parsed
}

fn main() {
    let Args {
        scale,
        smoke,
        feedback,
        designs,
    } = parse_args(std::env::args().skip(1));

    let workloads = workload_set(scale);
    let interp = std::fs::read_to_string("BENCH_interp.json").ok();
    let feedback = feedback
        .map(|path| std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}")));

    // Per design: build, verify, unprofiled rate, then the profiled
    // run — the same build→measure adjacency the interp bench has when
    // it records `tier_khz`, so the overhead gate compares like with
    // like. (Measuring after other designs' builds or profiled runs
    // systematically depresses timings via allocator state.)
    let mut rows = Vec::new();
    for (i, name) in designs.iter().enumerate() {
        let config = match name.as_str() {
            "tiny" => SocConfig::tiny(),
            "r16" => SocConfig::r16(),
            "r18" => SocConfig::r18(),
            "boom" => SocConfig::boom(),
            other => panic!("unknown design `{other}`"),
        };
        let design = build_design(&config);
        let tier_ref = interp
            .as_deref()
            .and_then(|text| interp_field(text, &design.config.name, "tier_khz"));
        let cal_ref = interp
            .as_deref()
            .and_then(|text| interp_field(text, &design.config.name, "calibration_khz"));
        let (off_khz, cal_now) = measure_off(&design, &workloads[0], tier_ref, cal_ref);
        let baseline = tier_ref.map(|tier_khz| Baseline {
            tier_khz,
            cal_ref,
            cal_now,
        });
        // `--feedback`: profile the feedback-repartitioned engine, so
        // the exported report reflects the schedule a second feedback
        // round would start from. The overhead gate above stays on the
        // stock engine — it compares against the stock tier rate.
        let prior = feedback.as_deref().and_then(|text| {
            essent_bench::load_feedback(
                text,
                &design.optimized,
                &design.config.name,
                quiet(false).c_p,
            )
        });
        rows.push(measure_profiled(
            &design,
            &workloads[0],
            off_khz,
            baseline,
            prior.as_ref(),
            i == 0,
        ));
    }

    for r in &rows {
        print_hottest(r);
    }
    print_overhead(&rows);
    let json = render_json(scale, smoke, &rows);
    std::fs::write("BENCH_profile.json", &json).expect("write BENCH_profile.json");
    eprintln!("wrote BENCH_profile.json");
}

fn quiet(profile: bool) -> EngineConfig {
    EngineConfig {
        capture_printf: false,
        profile,
        ..EngineConfig::default()
    }
}

fn time_essent(design: &BuiltDesign, workload: &Workload, config: &EngineConfig) -> TimedRun {
    let mut sim = EssentSim::new(&design.optimized, config);
    let start = Instant::now();
    let result = run_workload(&mut sim, workload, u64::MAX / 2);
    let elapsed = start.elapsed();
    assert!(
        result.finished,
        "CCSS did not finish {} on {}",
        workload.name, design.config.name
    );
    TimedRun { elapsed, result }
}

/// Verify, then the unprofiled rate, each sample *paired* with an
/// immediately adjacent machine calibration. The overhead gate divides
/// the measured rate by the machine factor, so pairing the two draws
/// puts numerator and denominator in the same noise window — on a
/// shared machine, CPU speed can swing for whole seconds, and a
/// calibration taken before a best-of batch describes a machine the
/// batch never ran on. Best-of-5 pairs by machine-corrected rate,
/// escalating to best-of-15 when the first batch sits below the gate
/// (a marginal batch is usually a cold allocator or a slow window, not
/// real overhead) — but a batch that *stays* low is reported as
/// measured and left for [`print_overhead`] to fail. Returns the
/// winning `(rate, calibration)` pair.
fn measure_off(
    design: &BuiltDesign,
    workload: &Workload,
    tier_ref: Option<f64>,
    cal_ref: Option<f64>,
) -> (f64, f64) {
    // The verifier gate — now including the profiler-wiring audit
    // (`P0301`–`P0304`), so a miswired attribution table fails the bench
    // before any number is reported from it.
    let report = essent_verify::verify_design(&design.optimized, &EngineConfig::default());
    assert_eq!(
        report.error_count(),
        0,
        "design `{}` failed verification:\n{report}",
        design.config.name
    );
    // A pair's machine-corrected rate: what the raw rate *would be* on
    // the reference machine, given the adjacent calibration draw. With
    // no reference calibration the raw rate stands alone (factor 1).
    let corrected = |off: f64, cal: f64| match cal_ref {
        Some(r) if r > 0.0 && cal > 0.0 => off * r / cal,
        _ => off,
    };
    let sample = || {
        let off = khz(&time_essent(design, workload, &quiet(false)));
        (off, essent_bench::calibration_khz(&design.optimized))
    };
    let batch = |n: usize| {
        (0..n).map(|_| sample()).fold((0.0, 0.0), |best, s| {
            if corrected(s.0, s.1) > corrected(best.0, best.1) {
                s
            } else {
                best
            }
        })
    };
    let mut best = batch(5);
    if let Some(tier) = tier_ref {
        if corrected(best.0, best.1) < tier * (1.0 - OVERHEAD_TOLERANCE) {
            let again = batch(10);
            if corrected(again.0, again.1) > corrected(best.0, best.1) {
                best = again;
            }
        }
    }
    best
}

/// Pass 2 per design: the profiled run whose numbers land in
/// `BENCH_profile.json`.
fn measure_profiled(
    design: &BuiltDesign,
    workload: &Workload,
    off_khz: f64,
    baseline: Option<Baseline>,
    prior: Option<&essent_core::partition::ActivityPrior>,
    exporters: bool,
) -> Row {
    let mut sim = match prior {
        Some(prior) => EssentSim::new_with_prior(&design.optimized, &quiet(true), prior),
        None => EssentSim::new(&design.optimized, &quiet(true)),
    };
    let start = Instant::now();
    let result = run_workload(&mut sim, workload, u64::MAX / 2);
    let elapsed = start.elapsed();
    assert!(result.finished, "profiled run did not finish");
    let profiled_khz = khz(&TimedRun { elapsed, result });
    let profile = sim.profile_report().expect("profile config is on");
    assert!(
        profile.total_evals() + profile.total_skips() > 0,
        "profiled run recorded nothing"
    );
    if exporters {
        export_views(design, workload, &design.config.name);
    }

    Row {
        name: design.config.name.clone(),
        report: profile,
        profiled_khz,
        off_khz,
        baseline,
    }
}

/// Chrome trace + skip-rate heatmap from a short profiled warm-up of one
/// design (trace windows over a full workload would be enormous).
fn export_views(design: &BuiltDesign, workload: &Workload, name: &str) {
    let mut sim = EssentSim::new(&design.optimized, &quiet(true));
    {
        let arena = sim.profile_arena_mut().expect("profile config is on");
        arena.set_bucket(64);
        arena.set_trace_window(256);
    }
    run_workload(&mut sim, workload, 4096);
    let trace = sim
        .profile_arena()
        .expect("profile config is on")
        .chrome_trace();
    let heat = sim
        .profile_report()
        .expect("profile config is on")
        .heatmap_csv();
    let trace_path = format!("PROFILE_{name}.trace.json");
    let heat_path = format!("PROFILE_{name}.heatmap.csv");
    std::fs::write(&trace_path, trace).expect("write chrome trace");
    std::fs::write(&heat_path, heat).expect("write heatmap csv");
    eprintln!("wrote {trace_path} and {heat_path}");
}

/// Pulls a numeric field for design `name` out of `BENCH_interp.json`
/// (our own hand-rolled format; a string scan keeps this
/// dependency-free).
fn interp_field(text: &str, name: &str, key: &str) -> Option<f64> {
    let at = text.find(&format!("\"name\": \"{name}\""))?;
    let rest = &text[at..];
    let pat = format!("\"{key}\": ");
    let v = &rest[rest.find(&pat)? + pat.len()..];
    let end = v.find(['\n', ',', '}'])?;
    v[..end].trim().parse().ok()
}

fn print_hottest(r: &Row) {
    println!(
        "{}: {} cycles, {} units, activity factor {:.4}",
        r.name,
        r.report.cycles,
        r.report.units.len(),
        r.report.activity_factor()
    );
    println!(
        "  {:<8} {:>10} {:>8} {:>12} {:>12} {:>10}",
        "unit", "evals", "skip%", "ops", "est_ticks", "caused"
    );
    for (_, u) in r.report.hottest(10) {
        println!(
            "  {:<8} {:>10} {:>7.1}% {:>12} {:>12.0} {:>10}",
            u.name,
            u.evals,
            u.skip_rate() * 100.0,
            u.ops,
            u.est_time(),
            u.caused
        );
    }
}

fn print_overhead(rows: &[Row]) {
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>9}",
        "design", "off(kHz)", "on(kHz)", "interp(kHz)", "expect(kHz)", "machine", "on-cost"
    );
    for r in rows {
        println!(
            "{:<6} {:>12.1} {:>12.1} {:>12} {:>12} {:>8} {:>8.1}%",
            r.name,
            r.off_khz,
            r.profiled_khz,
            r.baseline
                .as_ref()
                .map_or("-".to_string(), |b| format!("{:.1}", b.tier_khz)),
            r.baseline
                .as_ref()
                .map_or("-".to_string(), |b| format!("{:.1}", b.expected_khz())),
            r.baseline
                .as_ref()
                .and_then(|b| b.cal_ref.map(|c| format!("{:.2}x", b.cal_now / c)))
                .unwrap_or_else(|| "-".to_string()),
            (1.0 - r.profiled_khz / r.off_khz) * 100.0,
        );
        // The hard gate: with the profiler compiled out, throughput must
        // be within tolerance of the interp bench's recorded tier rate,
        // scaled to this machine's current speed by the profiler-free
        // calibration. Skip (with a note) when no baseline exists.
        match &r.baseline {
            Some(b) => assert!(
                r.off_khz >= b.expected_khz() * (1.0 - OVERHEAD_TOLERANCE),
                "design `{}`: disabled-profiler rate {:.1} kHz fell more than {:.0}% below \
                 the machine-scaled BENCH_interp.json tier rate {:.1} kHz \
                 (recorded {:.1} kHz, machine factor {:.3})",
                r.name,
                r.off_khz,
                OVERHEAD_TOLERANCE * 100.0,
                b.expected_khz(),
                b.tier_khz,
                b.cal_ref.map_or(1.0, |c| b.cal_now / c),
            ),
            None => eprintln!(
                "note: no BENCH_interp.json baseline for `{}`; overhead gate skipped",
                r.name
            ),
        }
    }
}

fn render_json(scale: u32, smoke: bool, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"profile\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"overhead_tolerance\": {OVERHEAD_TOLERANCE},");
    let _ = writeln!(s, "  \"designs\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"profiled_khz\": {:.1},", r.profiled_khz);
        let _ = writeln!(s, "      \"unprofiled_khz\": {:.1},", r.off_khz);
        let _ = writeln!(
            s,
            "      \"interp_tier_khz\": {},",
            r.baseline
                .as_ref()
                .map_or("null".into(), |b| format!("{:.1}", b.tier_khz))
        );
        let _ = writeln!(
            s,
            "      \"expected_khz\": {},",
            r.baseline
                .as_ref()
                .map_or("null".into(), |b| format!("{:.1}", b.expected_khz()))
        );
        let _ = writeln!(
            s,
            "      \"machine_factor\": {},",
            r.baseline
                .as_ref()
                .and_then(|b| b.cal_ref.map(|c| format!("{:.3}", b.cal_now / c)))
                .unwrap_or_else(|| "null".into())
        );
        // The nested report: summary form by default (totals + the
        // hottest partitions + top wake causes — a few dozen lines per
        // design instead of thousands); `--full` keeps the complete
        // per-partition dump for offline analysis.
        let report = if scale >= 10 {
            r.report.to_json()
        } else {
            r.report.to_summary_json(10)
        };
        let mut lines = report.lines();
        let _ = writeln!(s, "      \"profile\": {}", lines.next().unwrap_or("{"));
        for line in lines {
            let _ = writeln!(s, "      {line}");
        }
        let _ = writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn parse(args: &[&str]) -> super::Args {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    /// Regression: `--full` combined with `--feedback` must yield *both*
    /// artifacts — the full per-partition dump (`scale == 10`) *and* the
    /// feedback prior — regardless of argument order. The middle case is
    /// the historical bug: `--full` was consumed as the feedback path.
    #[test]
    fn full_and_feedback_compose_in_any_order() {
        for order in [
            ["--full", "--feedback", "prior.json"],
            ["--feedback", "--full", "prior.json"],
            ["--feedback", "prior.json", "--full"],
        ] {
            let args = parse(&order);
            assert_eq!(args.scale, 10, "{order:?}: full report lost");
            assert_eq!(
                args.feedback.as_deref(),
                Some("prior.json"),
                "{order:?}: feedback path lost"
            );
        }
    }

    #[test]
    fn feedback_path_and_designs_still_parse() {
        let args = parse(&["--smoke", "--feedback", "BENCH_profile.json", "r18", "boom"]);
        assert!(args.smoke);
        assert_eq!(args.scale, 1);
        assert_eq!(args.feedback.as_deref(), Some("BENCH_profile.json"));
        assert_eq!(args.designs, ["r18", "boom"]);
    }

    #[test]
    fn default_design_set_fills_in() {
        assert_eq!(parse(&[]).designs, ["tiny", "r16", "r18", "boom"]);
        assert_eq!(parse(&["--smoke"]).designs, ["tiny"]);
    }

    #[test]
    #[should_panic(expected = "--feedback needs a file argument")]
    fn dangling_feedback_is_rejected() {
        parse(&["--feedback"]);
    }

    #[test]
    #[should_panic(expected = "--feedback needs a file argument")]
    fn feedback_followed_only_by_flags_is_rejected() {
        parse(&["--feedback", "--full"]);
    }
}
