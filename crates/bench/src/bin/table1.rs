//! **Table I** — design sizes: FIRRTL source lines, netlist nodes, and
//! netlist edges for the three evaluation designs.
//!
//! Paper values (Rocket Chip 2016/2018, BOOM): r16 = 112,167 Verilog
//! lines / 33,426 nodes / 51,356 edges; r18 = 328,367 / 67,803 / 123,151;
//! boom = 425,241 / 128,712 / 291,010. Our generated SoCs are laptop-scale
//! analogs with the same size ordering; see EXPERIMENTS.md.
//!
//! Run: `cargo run --release -p essent-bench --bin table1`

use essent_bench::{build_design, verify_built, Cli};
use essent_designs::soc::generate_soc;

fn main() {
    let cli = Cli::parse();
    println!("Table I: open-source processor designs used for evaluation\n");
    println!(
        "{:>6} | {:>12} | {:>12} | {:>12} | {:>6} | {:>6}",
        "Design", "FIRRTL lines", "nodes", "edges", "regs", "mems"
    );
    println!("{}", "-".repeat(72));
    for config in cli.configs() {
        let lines = generate_soc(&config).lines().count();
        let design = build_design(&config);
        verify_built(&cli, &design);
        let stats = design.optimized.stats();
        println!(
            "{:>6} | {:>12} | {:>12} | {:>12} | {:>6} | {:>6}",
            config.name, lines, stats.signals, stats.edges, stats.regs, stats.mems
        );
    }
    println!("\n(nodes/edges measured on the optimized netlist, matching the");
    println!(" paper's post-transformation FIRRTL graph)");
}
