//! **Table III** — execution times and ESSENT's speedup over Baseline
//! for every design × workload under the four simulators.
//!
//! Paper shape to reproduce: ESSENT fastest everywhere (speedups over
//! Baseline of 2.2–7.7×, largest on r18); Baseline comparable to
//! Verilator (both full-cycle); the commercial event-driven simulator
//! slowest. The starred rows are this repo's substitutes (see DESIGN.md):
//! `CommVer*` = classic FIFO event-driven engine, `Verilator*` =
//! optimized full-cycle engine.
//!
//! Run: `cargo run --release -p essent-bench --bin table3 [--full] [designs...]`

use essent_bench::{build_design, khz, secs, time_run, verify_built, workload_set, Cli, Engine};

fn main() {
    let cli = Cli::parse();
    println!("Table III: execution times (sec) and ESSENT's speedup over Baseline\n");
    println!(
        "{:>6} {:>10} | {:>10} {:>10} {:>10} {:>10} | {:>8} | {:>9}",
        "Design",
        "Workload",
        "CommVer*",
        "Verilator*",
        "Baseline",
        "ESSENT",
        "Speedup",
        "ESSENT kHz"
    );
    println!("{}", "-".repeat(96));
    for config in cli.configs() {
        let design = build_design(&config);
        verify_built(&cli, &design);
        for workload in workload_set(cli.scale) {
            let mut times = Vec::new();
            let mut essent_khz = 0.0;
            let mut checks = Vec::new();
            for engine in Engine::ALL {
                let run = time_run(engine, &design, &workload);
                if engine == Engine::Essent {
                    essent_khz = khz(&run);
                }
                checks.push((run.result.tohost, run.result.cycles));
                times.push(run.elapsed);
            }
            // Architectural agreement across engines.
            assert!(
                checks.windows(2).all(|w| w[0] == w[1]),
                "engines disagree on {}/{}: {checks:?}",
                config.name,
                workload.name
            );
            let speedup = times[2].as_secs_f64() / times[3].as_secs_f64();
            println!(
                "{:>6} {:>10} | {:>10} {:>10} {:>10} {:>10} | {:>7.2}x | {:>9.1}",
                config.name,
                workload.name,
                secs(times[0]),
                secs(times[1]),
                secs(times[2]),
                secs(times[3]),
                speedup,
                essent_khz
            );
        }
    }
    println!("\n* substituted engines (DESIGN.md): CommVer* = FIFO event-driven,");
    println!("  Verilator* = optimized full-cycle. Speedup = Baseline / ESSENT.");
}
