//! **Figure 6** — execution time versus the partitioning parameter `C_p`.
//!
//! The paper's claim: the best `C_p` is mostly insensitive to the design
//! and workload (they pick `C_p = 8`), eliminating the design-specific
//! tuning prior work required. Each row prints times normalized to that
//! row's best `C_p` so the convergence is easy to see.
//!
//! Run: `cargo run --release -p essent-bench --bin figure6 [designs...]`

use essent_bench::{build_design, verify_built, workload_set, Cli};
use essent_core::partition::partition;
use essent_core::plan::{extended_dag, CcssPlan, PlanOptions};
use essent_designs::workloads::run_workload;
use essent_sim::{EngineConfig, EssentSim};
use std::time::Instant;

const CPS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

fn main() {
    let cli = Cli::parse();
    println!("Figure 6: normalized execution time vs partitioning parameter C_p\n");
    print!("{:>6} {:>10} |", "Design", "Workload");
    for cp in CPS {
        print!(" {cp:>6}");
    }
    println!(" | best");
    println!("{}", "-".repeat(84));

    for config in cli.configs() {
        let design = build_design(&config);
        verify_built(&cli, &design);
        let (dag, writes) = extended_dag(&design.optimized);
        for workload in workload_set(cli.scale) {
            let mut times = Vec::new();
            for cp in CPS {
                let parts = partition(&dag, cp);
                let plan = CcssPlan::from_partitioning(
                    &design.optimized,
                    &dag,
                    &writes,
                    &parts,
                    PlanOptions::default(),
                );
                let mut sim = EssentSim::from_plan(
                    &design.optimized,
                    plan,
                    &EngineConfig {
                        c_p: cp,
                        capture_printf: false,
                        ..EngineConfig::default()
                    },
                );
                let start = Instant::now();
                let run = run_workload(&mut sim, &workload, u64::MAX / 2);
                assert!(run.finished);
                times.push(start.elapsed().as_secs_f64());
            }
            let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let best_cp = CPS[times
                .iter()
                .position(|&t| t == best)
                .expect("best time exists")];
            print!("{:>6} {:>10} |", config.name, workload.name);
            for t in &times {
                print!(" {:>6.2}", t / best);
            }
            println!(" | C_p={best_cp}");
        }
    }
    println!("\n(values are execution time normalized to each row's best C_p;");
    println!(" flat minima across rows = the paper's design-insensitivity claim)");
}
