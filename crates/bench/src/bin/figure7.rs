//! **Figure 7** — decomposition of simulation work into base work,
//! static overhead, and dynamic overhead, plus the effective activity
//! factor, as `C_p` sweeps (r16 × dhrystone in the paper).
//!
//! The paper computes this by counting host instructions; the
//! interpreter counts the same categories directly and deterministically:
//!
//! * **base work** — operations evaluated (`ops_evaluated`);
//! * **static overhead** — per-cycle activity flag tests and unconditional
//!   commit checks (`static_checks`), proportional to the number of
//!   partitions;
//! * **dynamic overhead** — output change comparisons and consumer
//!   wakeups performed by active partitions (`dynamic_checks`),
//!   proportional to the cut edges of active partitions.
//!
//! Expected shape: increasing `C_p` shrinks static overhead (fewer
//! partitions) while the effective activity factor grows (coarser
//! skipping); dynamic overhead stays roughly constant.
//!
//! Run: `cargo run --release -p essent-bench --bin figure7`

use essent_bench::{build_design, verify_built, workload_set, Cli};
use essent_core::partition::partition;
use essent_core::plan::{extended_dag, CcssPlan, PlanOptions};
use essent_designs::soc::SocConfig;
use essent_designs::workloads::run_workload;
use essent_sim::{EngineConfig, EssentSim, Simulator};

const CPS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

fn main() {
    let cli = Cli::parse();
    let design = build_design(&SocConfig::r16());
    verify_built(&cli, &design);
    let workload = &workload_set(cli.scale)[0]; // dhrystone
    let (dag, writes) = extended_dag(&design.optimized);

    println!("Figure 7: overhead decomposition vs C_p (r16 x dhrystone)\n");
    println!(
        "{:>5} | {:>10} | {:>11} {:>11} {:>11} | {:>10} | {:>9}",
        "C_p", "partitions", "base/cyc", "static/cyc", "dynamic/cyc", "total/cyc", "eff. act."
    );
    println!("{}", "-".repeat(86));
    for cp in CPS {
        let parts = partition(&dag, cp);
        let plan = CcssPlan::from_partitioning(
            &design.optimized,
            &dag,
            &writes,
            &parts,
            PlanOptions::default(),
        );
        let partitions = plan.partitions.len();
        let mut sim = EssentSim::from_plan(
            &design.optimized,
            plan,
            &EngineConfig {
                c_p: cp,
                capture_printf: false,
                ..EngineConfig::default()
            },
        );
        let full_steps = sim.full_steps_per_cycle();
        let run = run_workload(&mut sim, workload, u64::MAX / 2);
        assert!(run.finished);
        let c = sim.counters();
        let cycles = c.cycles as f64;
        let effective = c.ops_evaluated as f64 / (cycles * full_steps as f64);
        println!(
            "{:>5} | {:>10} | {:>11.1} {:>11.1} {:>11.1} | {:>10.1} | {:>8.2}%",
            cp,
            partitions,
            c.ops_evaluated as f64 / cycles,
            c.static_checks as f64 / cycles,
            c.dynamic_checks as f64 / cycles,
            c.total() as f64 / cycles,
            100.0 * effective
        );
    }
    println!("\n(work units per simulated cycle; eff. act. = fraction of the");
    println!(" design evaluated = ops / (cycles x full-cycle steps))");
}
