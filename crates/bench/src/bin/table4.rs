//! **Table IV** — qualitative comparison of simulation approaches, with
//! the attributes of paper Section II, rendered from what this repository
//! actually implements.
//!
//! Run: `cargo run --release -p essent-bench --bin table4`

fn main() {
    println!("Table IV: comparison of simulation approaches\n");
    let header = [
        "Approach",
        "Cond.",
        "Coarse",
        "Static",
        "Singular",
        "Coarsening method",
        "Auto",
    ];
    let rows: [[&str; 7]; 6] = [
        [
            "Full-cycle (FullCycleSim / Verilator)",
            " ",
            " ",
            "x",
            "x",
            "n/a",
            "n/a",
        ],
        [
            "Event-driven FIFO (EventDrivenSim / Icarus)",
            "x",
            " ",
            " ",
            " ",
            "n/a",
            "n/a",
        ],
        [
            "Event-driven levelized (EventDrivenSim)",
            "x",
            " ",
            " ",
            "x",
            "n/a",
            "n/a",
        ],
        [
            "Perez et al. [19] (module-based)",
            "x",
            "x",
            "x",
            " ",
            "user modules",
            " ",
        ],
        [
            "Cascade [11] (module-based)",
            "x",
            "x",
            "x",
            "x",
            "user modules",
            " ",
        ],
        [
            "ESSENT (EssentSim, this work)",
            "x",
            "x",
            "x",
            "x",
            "acyclic partitioner",
            "x",
        ],
    ];
    let widths = [44, 5, 6, 6, 8, 20, 4];
    let render = |cells: &[&str; 7]| {
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!("{cell:<w$} | "));
        }
        line.trim_end_matches(" | ").to_string()
    };
    println!("{}", render(&header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len())
    );
    for row in &rows {
        println!("{}", render(row));
    }
    println!(
        "\nAttributes per paper Section II: Conditional execution, Coarsened\n\
         schedule, Static schedule, Singular execution (each element evaluated\n\
         at most once per cycle), coarsening method, and whether coarsening +\n\
         triggering are automated. Chatterjee et al.'s GPU clustering (row\n\
         omitted: clustering with replication is not a partitioning) is\n\
         discussed in the paper's related work."
    );
}
