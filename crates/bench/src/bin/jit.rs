//! **JIT** — the native tier's dividend on the paper designs: per-design
//! CCSS rate with hot partitions lowered to machine code, vs. the tier-1
//! threaded interpreter, vs. the generic interpreter — plus how many
//! partitions the profiled eval-tick cost model actually selected for
//! compilation.
//!
//! Differential oracles: every timed variant's run result (cycle count,
//! retired instructions, tohost checksum) must match the golden netlist
//! interpreter, and — when a host C++ compiler is on `PATH` — the
//! emitted C++ simulator (`codegen::emit_cpp`) compiled and run as a
//! second, fully independent oracle. No compiler means the C++ oracle is
//! skipped cleanly, not failed.
//!
//! The binary fails (exit 1 via panic) when a design verifies with
//! errors (the verifier audits the emitted machine code itself,
//! `J0701`–`J0704`), when any variant disagrees with an oracle, or —
//! on hosts where the JIT is supported — when the cost model selects
//! nothing to compile on the larger designs.
//!
//! Run: `cargo run --release -p essent-bench --bin jit
//! [--quick|--full] [tiny r16 r18 boom]`.
//! Writes `BENCH_jit.json` to the working directory.

use essent_bench::{build_design, khz, workload_set, BuiltDesign, TimedRun};
use essent_bits::Bits;
use essent_core::partition::ActivityPrior;
use essent_core::plan::CcssPlan;
use essent_designs::soc::SocConfig;
use essent_designs::workloads::{run_workload, RunResult, Workload};
use essent_netlist::interp::Interpreter;
use essent_sim::{jit, EngineConfig, EssentSim, Simulator};
use std::fmt::Write as _;
use std::process::Command;
use std::time::Instant;

const MAX_CYCLES: u64 = u64::MAX / 2;

struct Row {
    name: String,
    partitions: usize,
    compiled: usize,
    generic_khz: f64,
    tier1_khz: f64,
    jit_khz: f64,
    cycles: u64,
    tohost: u64,
    cpp_oracle: &'static str,
}

fn main() {
    let mut scale = 1;
    let mut designs: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--full" => scale = 10,
            "--quick" => scale = 1,
            "tiny" | "r16" | "r18" | "boom" => designs.push(arg),
            other => {
                eprintln!("usage: jit [--quick|--full] [tiny r16 r18 boom]");
                panic!("unknown argument `{other}`");
            }
        }
    }
    if designs.is_empty() {
        designs = ["tiny", "r16", "r18", "boom"].map(String::from).to_vec();
    }

    let workloads = workload_set(scale);
    let mut rows = Vec::new();
    for name in &designs {
        let config = match name.as_str() {
            "tiny" => SocConfig::tiny(),
            "r16" => SocConfig::r16(),
            "r18" => SocConfig::r18(),
            "boom" => SocConfig::boom(),
            other => panic!("unknown design `{other}`"),
        };
        rows.push(measure(name, &config, &workloads[0]));
    }

    print_table(&rows);
    let json = render_json(scale, &rows);
    std::fs::write("BENCH_jit.json", &json).expect("write BENCH_jit.json");
    eprintln!("wrote BENCH_jit.json");
}

fn quiet() -> EngineConfig {
    EngineConfig {
        capture_printf: false,
        ..EngineConfig::default()
    }
}

fn jit_config() -> EngineConfig {
    EngineConfig {
        jit: true,
        ..quiet()
    }
}

/// Times the CCSS engine under an explicit config and checks its run
/// result against the golden interpreter's.
fn time_checked(
    design: &BuiltDesign,
    workload: &Workload,
    config: &EngineConfig,
    prior: Option<&ActivityPrior>,
    golden: &RunResult,
    label: &str,
) -> TimedRun {
    let mut sim = match prior {
        Some(prior) => EssentSim::new_with_prior(&design.optimized, config, prior),
        None => EssentSim::new(&design.optimized, config),
    };
    let start = Instant::now();
    let result = run_workload(&mut sim, workload, MAX_CYCLES);
    let elapsed = start.elapsed();
    check_result(&result, golden, label, &design.config.name);
    TimedRun { elapsed, result }
}

/// Profiled seeding run → per-node activity prior, exactly the feedback
/// loop a user runs. The JIT's cost model consumes this prior, turning
/// static step counts into measured eval-tick costs — the selection the
/// tier is designed around. Tier-1 and JIT are then timed on the *same*
/// prior-guided engine, so the reported speedup isolates the native tier
/// from the repartitioning gain.
fn profile_prior(design: &BuiltDesign, workload: &Workload) -> ActivityPrior {
    let mut sim = EssentSim::new(
        &design.optimized,
        &EngineConfig {
            profile: true,
            ..quiet()
        },
    );
    run_workload(&mut sim, workload, MAX_CYCLES);
    let report = sim.profile_report().expect("profile config is on");
    let plan = CcssPlan::build(&design.optimized, quiet().c_p);
    essent_sim::activity_prior(&design.optimized, &plan, &report)
}

fn check_result(got: &RunResult, golden: &RunResult, label: &str, design: &str) {
    assert!(got.finished, "{label} did not finish on {design}");
    assert!(
        got.cycles == golden.cycles && got.instret == golden.instret && got.tohost == golden.tohost,
        "{label} diverged from the golden interpreter on {design}: \
         cycles {} vs {}, instret {} vs {}, tohost {:#x} vs {:#x}",
        got.cycles,
        golden.cycles,
        got.instret,
        golden.instret,
        got.tohost,
        golden.tohost
    );
}

/// [`run_workload`] against the golden netlist interpreter (it has no
/// engine code at all, so it anchors every variant independently).
fn golden_run(design: &BuiltDesign, workload: &Workload) -> RunResult {
    let mut sim = Interpreter::new(&design.optimized);
    for (i, &word) in workload.words.iter().enumerate() {
        sim.write_mem("imem", i, Bits::from_u64(word as u64, 32))
            .expect("golden imem load");
    }
    sim.poke("reset", Bits::from_u64(1, 1));
    sim.step(2);
    sim.poke("reset", Bits::from_u64(0, 1));
    let start = sim.cycle();
    let mut remaining = MAX_CYCLES;
    while remaining > 0 && sim.halted().is_none() {
        let n = remaining.min(8192);
        sim.step(n);
        remaining -= n;
    }
    // `peek` on a `RegOut` reads the eval-time (pre-commit) value; the
    // committed state after the halting cycle is the `$next` value the
    // interpreter's commit stored — read that, matching the engines'
    // committed-register reads in `run_workload`.
    let committed = |name: &str| -> u64 {
        design
            .optimized
            .regs()
            .iter()
            .find(|r| r.name == name)
            .map(|r| sim.peek_id(r.next).to_u64().unwrap_or(0))
            .unwrap_or(0)
    };
    let result = RunResult {
        cycles: sim.cycle() - start,
        instret: committed("instret_r"),
        tohost: committed("tohost_r"),
        finished: sim.halted().is_some(),
    };
    assert!(
        result.finished,
        "golden interpreter did not finish {} on {}",
        workload.name, design.config.name
    );
    result
}

fn measure(cli_name: &str, config: &SocConfig, workload: &Workload) -> Row {
    let design = build_design(config);

    // The verifier gate, with the JIT on so the J07xx native-code audit
    // runs over every partition's emitted stream (both architectures).
    let report = essent_verify::verify_design(&design.optimized, &jit_config());
    assert_eq!(
        report.error_count(),
        0,
        "design `{}` failed verification:\n{report}",
        config.name
    );

    let golden = golden_run(&design, workload);
    let prior = profile_prior(&design, workload);

    let (partitions, compiled) = {
        let sim = EssentSim::new_with_prior(&design.optimized, &jit_config(), &prior);
        (sim.partition_count(), sim.jit_compiled_count())
    };
    if jit::supported() && cli_name != "tiny" {
        assert!(
            compiled > 0,
            "design `{}`: cost model selected nothing to compile",
            config.name
        );
    }

    let generic_khz = khz(&time_checked(
        &design,
        workload,
        &EngineConfig {
            tier1: false,
            fuse_triggers: false,
            ..quiet()
        },
        None,
        &golden,
        "generic",
    ));
    // Best-of-3 for the two tiers being compared head-to-head: a single
    // draw can ride a transient slow window on a shared machine.
    let tier1_khz = (0..3)
        .map(|_| {
            khz(&time_checked(
                &design,
                workload,
                &quiet(),
                Some(&prior),
                &golden,
                "tier-1",
            ))
        })
        .fold(0.0f64, f64::max);
    let jit_khz = (0..3)
        .map(|_| {
            khz(&time_checked(
                &design,
                workload,
                &jit_config(),
                Some(&prior),
                &golden,
                "jit",
            ))
        })
        .fold(0.0f64, f64::max);

    let cpp_oracle = match cpp_oracle_run(&design, workload) {
        Some(result) => {
            check_result(&result, &golden, "C++ oracle", &config.name);
            "ok"
        }
        None => "skipped",
    };

    Row {
        name: config.name.clone(),
        partitions,
        compiled,
        generic_khz,
        tier1_khz,
        jit_khz,
        cycles: golden.cycles,
        tohost: golden.tohost,
        cpp_oracle,
    }
}

/// Same identifier sanitization as the C++ emitter.
fn cpp_ident(name: &str) -> String {
    let mut out = String::new();
    if name.starts_with(|c: char| c.is_ascii_digit()) {
        out.push('_');
    }
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Compiles and runs the emitted C++ simulator on the workload; `None`
/// (with a note) when the design cannot be emitted or no host C++
/// compiler is available — a skip, never a failure.
fn cpp_oracle_run(design: &BuiltDesign, workload: &Workload) -> Option<RunResult> {
    let cpp = match essent_sim::codegen::emit_cpp(&design.optimized, &quiet()) {
        Ok(cpp) => cpp,
        Err(e) => {
            eprintln!("note: C++ oracle skipped for {}: {e}", design.config.name);
            return None;
        }
    };
    let cxx = ["c++", "g++", "clang++"]
        .iter()
        .find(|c| {
            Command::new(c)
                .arg("--version")
                .output()
                .is_ok_and(|o| o.status.success())
        })
        .copied();
    let Some(cxx) = cxx else {
        eprintln!("note: C++ oracle skipped: no C++ compiler on PATH");
        return None;
    };

    let dir = std::env::temp_dir().join(format!(
        "essent_jit_oracle_{}_{}",
        std::process::id(),
        design.config.name
    ));
    std::fs::create_dir_all(&dir).expect("oracle dir");
    std::fs::write(dir.join("sim.hpp"), &cpp).expect("write sim.hpp");

    let dut = cpp_ident(&design.optimized.name);
    let mut main_src = String::new();
    let _ = writeln!(main_src, "#include <cstdint>\n#include <cstdio>");
    let _ = writeln!(main_src, "#include \"sim.hpp\"");
    let _ = write!(main_src, "static const uint32_t kWords[] = {{");
    for (i, w) in workload.words.iter().enumerate() {
        if i % 8 == 0 {
            let _ = write!(main_src, "\n  ");
        }
        let _ = write!(main_src, "0x{w:08x}u,");
    }
    let _ = writeln!(main_src, "\n}};");
    let _ = writeln!(main_src, "int main() {{");
    let _ = writeln!(main_src, "  static {dut} dut;");
    let _ = writeln!(
        main_src,
        "  for (uint64_t i = 0; i < sizeof(kWords) / sizeof(kWords[0]); i++) dut.imem[i] = kWords[i];"
    );
    let _ = writeln!(main_src, "  dut.poke_reset(1); dut.cycle(); dut.cycle();");
    let _ = writeln!(main_src, "  dut.poke_reset(0);");
    let _ = writeln!(main_src, "  uint64_t start = dut.cycles;");
    // The cap only guards against a codegen bug hanging the oracle; ten
    // times the golden run is far past any legitimate finish.
    let _ = writeln!(
        main_src,
        "  while (!dut.done && dut.cycles - start < {}ull) dut.cycle();",
        workload.words.len() as u64 * 10_000 + 1_000_000
    );
    let _ = writeln!(
        main_src,
        "  printf(\"RESULT cycles=%llu instret=%llu tohost=%llu finished=%d\\n\", \
         (unsigned long long)(dut.cycles - start), (unsigned long long)dut.instret_r, \
         (unsigned long long)dut.tohost_r, dut.done ? 1 : 0);"
    );
    let _ = writeln!(main_src, "  return 0;");
    let _ = writeln!(main_src, "}}");
    std::fs::write(dir.join("main.cpp"), &main_src).expect("write main.cpp");

    let bin = dir.join("sim");
    let status = Command::new(cxx)
        .args(["-O1", "-std=c++17", "-o"])
        .arg(&bin)
        .arg(dir.join("main.cpp"))
        .status();
    match status {
        Ok(s) if s.success() => {}
        other => {
            eprintln!(
                "note: C++ oracle skipped for {}: compile failed ({other:?})",
                design.config.name
            );
            return None;
        }
    }
    let out = Command::new(&bin).output().expect("run C++ oracle");
    assert!(
        out.status.success(),
        "C++ oracle crashed on {}",
        design.config.name
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with("RESULT "))
        .unwrap_or_else(|| panic!("no RESULT line from C++ oracle:\n{stdout}"));
    let field = |key: &str| -> u64 {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("bad RESULT line: {line}"))
    };
    let _ = std::fs::remove_dir_all(&dir);
    Some(RunResult {
        cycles: field("cycles"),
        instret: field("instret"),
        tohost: field("tohost"),
        finished: field("finished") == 1,
    })
}

fn print_table(rows: &[Row]) {
    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "design", "compiled", "generic", "tier-1", "jit", "speedup", "cycles", "cpp"
    );
    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "", "(of parts)", "(kHz)", "(kHz)", "(kHz)", "(vs t1)", "(k)", ""
    );
    for r in rows {
        println!(
            "{:<6} {:>10} {:>12.1} {:>10.1} {:>10.1} {:>9.2}x {:>8} {:>8}",
            r.name,
            format!("{}/{}", r.compiled, r.partitions),
            r.generic_khz,
            r.tier1_khz,
            r.jit_khz,
            r.jit_khz / r.tier1_khz,
            r.cycles / 1000,
            r.cpp_oracle,
        );
    }
}

fn render_json(scale: u32, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"jit\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"jit_supported\": {},", jit::supported());
    let _ = writeln!(s, "  \"arch\": \"{}\",", std::env::consts::ARCH);
    let _ = writeln!(s, "  \"designs\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"partitions\": {},", r.partitions);
        let _ = writeln!(s, "      \"jit_compiled\": {},", r.compiled);
        let _ = writeln!(s, "      \"generic_khz\": {:.1},", r.generic_khz);
        let _ = writeln!(s, "      \"tier1_khz\": {:.1},", r.tier1_khz);
        let _ = writeln!(s, "      \"jit_khz\": {:.1},", r.jit_khz);
        let _ = writeln!(
            s,
            "      \"speedup_vs_tier1\": {:.3},",
            r.jit_khz / r.tier1_khz
        );
        let _ = writeln!(
            s,
            "      \"speedup_vs_generic\": {:.3},",
            r.jit_khz / r.generic_khz
        );
        let _ = writeln!(s, "      \"cycles\": {},", r.cycles);
        let _ = writeln!(s, "      \"tohost\": {},", r.tohost);
        let _ = writeln!(s, "      \"cpp_oracle\": \"{}\"", r.cpp_oracle);
        let _ = writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
