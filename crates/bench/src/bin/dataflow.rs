//! **Dataflow** — what the known-bits/value-range analysis buys on the
//! paper designs: arena words saved by width narrowing, signals folded
//! from analysis facts alone, the lint codes each netlist variant
//! raises, and the CCSS simulation rate on the fully optimized netlist.
//!
//! Three netlist variants per design:
//! * `unopt` — straight from the builder (the Baseline tool flow);
//! * `structural` — [`OptConfig::structural`]: everything except the
//!   analysis passes (the "before" side of the comparison);
//! * `full` — [`OptConfig::default`]: structural plus analysis folding
//!   and width narrowing.
//!
//! The binary fails (exit 1 via panic) when either optimized variant
//! verifies with errors, or when the full variant raises a diagnostic
//! code the structural variant does not — the analysis passes must never
//! *introduce* findings (they may well remove some, e.g. `L0006`
//! dead-upper-bits that narrowing shrank away).
//!
//! Run: `cargo run --release -p essent-bench --bin dataflow [--quick|--full] [tiny r16 r18 boom]`
//! Writes `BENCH_dataflow.json` to the working directory.

use essent_bench::{build_design, khz, time_run, workload_set, Engine};
use essent_designs::soc::SocConfig;
use essent_netlist::opt::{self, OptConfig};
use essent_sim::compile::Layout;
use essent_sim::EngineConfig;
use std::fmt::Write as _;

struct Row {
    name: String,
    signals: [usize; 3],
    arena_words: [usize; 3],
    narrowed: usize,
    analysis_folded: usize,
    codes: [Vec<String>; 3],
    ccss_khz: Option<f64>,
}

fn main() {
    let mut scale = 1;
    let mut designs: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--full" => scale = 10,
            "--quick" => scale = 1,
            "tiny" | "r16" | "r18" | "boom" => designs.push(arg),
            other => {
                eprintln!("usage: dataflow [--quick|--full] [tiny r16 r18 boom]");
                panic!("unknown argument `{other}`");
            }
        }
    }
    if designs.is_empty() {
        designs = ["tiny", "r16", "r18", "boom"].map(String::from).to_vec();
    }

    let workloads = workload_set(scale);
    let mut rows = Vec::new();
    for name in &designs {
        let config = match name.as_str() {
            "tiny" => SocConfig::tiny(),
            "r16" => SocConfig::r16(),
            "r18" => SocConfig::r18(),
            "boom" => SocConfig::boom(),
            other => panic!("unknown design `{other}`"),
        };
        rows.push(measure(&config, &workloads));
    }

    print_table(&rows);
    let json = render_json(scale, &rows);
    std::fs::write("BENCH_dataflow.json", &json).expect("write BENCH_dataflow.json");
    eprintln!("wrote BENCH_dataflow.json");
}

fn measure(config: &SocConfig, workloads: &[essent_designs::workloads::Workload]) -> Row {
    let design = build_design(config);
    let unopt = &design.unoptimized;
    let mut structural = unopt.clone();
    opt::optimize(&mut structural, &OptConfig::structural());
    let full = &design.optimized;
    let full_stats = {
        let mut n = unopt.clone();
        opt::optimize(&mut n, &OptConfig::default())
    };

    let variants = [unopt, &structural, full];
    let signals = variants.map(|n| n.signal_count());
    let arena_words = variants.map(|n| Layout::new(n).total_words());
    let codes = variants.map(|n| {
        let report = essent_verify::verify_design(n, &EngineConfig::default());
        assert_eq!(
            report.error_count(),
            0,
            "design `{}` failed verification:\n{report}",
            config.name
        );
        let mut ids: Vec<String> = report.codes().iter().map(|c| c.id.to_string()).collect();
        ids.sort();
        ids.dedup();
        ids
    });

    // Diagnostic-regression gate: the analysis passes must not raise
    // codes the structural pipeline did not.
    let introduced: Vec<&String> = codes[2].iter().filter(|c| !codes[1].contains(c)).collect();
    assert!(
        introduced.is_empty(),
        "design `{}`: analysis passes introduced diagnostic code(s) {introduced:?}",
        config.name
    );

    // CCSS rate on the fully optimized netlist (dhrystone, the fastest
    // paper workload — this row is a sanity rate, not a Table III cell).
    let run = time_run(Engine::Essent, &design, &workloads[0]);
    let ccss_khz = Some(khz(&run));

    Row {
        name: config.name.clone(),
        signals,
        arena_words,
        narrowed: full_stats.signals_narrowed,
        analysis_folded: full_stats.analysis_folded,
        codes,
        ccss_khz,
    }
}

fn print_table(rows: &[Row]) {
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>8} {:>8} {:>8} {:>10}",
        "design", "words", "words", "words", "saved", "narrow", "fold", "ccss"
    );
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>8} {:>8} {:>8} {:>10}",
        "", "(unopt)", "(structural)", "(full)", "", "", "", "(kHz)"
    );
    for r in rows {
        let saved = r.arena_words[1].saturating_sub(r.arena_words[2]);
        println!(
            "{:<6} {:>10} {:>12} {:>12} {:>8} {:>8} {:>8} {:>10}",
            r.name,
            r.arena_words[0],
            r.arena_words[1],
            r.arena_words[2],
            saved,
            r.narrowed,
            r.analysis_folded,
            r.ccss_khz.map_or("-".into(), |k| format!("{k:.1}")),
        );
    }
}

fn render_json(scale: u32, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"dataflow\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"designs\": [");
    for (i, r) in rows.iter().enumerate() {
        let saved = r.arena_words[1].saturating_sub(r.arena_words[2]);
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        for (key, vals) in [("signals", &r.signals), ("arena_words", &r.arena_words)] {
            let _ = writeln!(
                s,
                "      \"{key}\": {{\"unopt\": {}, \"structural\": {}, \"full\": {}}},",
                vals[0], vals[1], vals[2]
            );
        }
        let _ = writeln!(s, "      \"arena_words_saved\": {saved},");
        let _ = writeln!(s, "      \"signals_narrowed\": {},", r.narrowed);
        let _ = writeln!(s, "      \"analysis_folded\": {},", r.analysis_folded);
        for (key, codes) in [
            ("codes_structural", &r.codes[1]),
            ("codes_full", &r.codes[2]),
        ] {
            let quoted: Vec<String> = codes.iter().map(|c| format!("\"{c}\"")).collect();
            let _ = writeln!(s, "      \"{key}\": [{}],", quoted.join(", "));
        }
        let _ = writeln!(
            s,
            "      \"ccss_khz\": {}",
            r.ccss_khz.map_or("null".into(), |k| format!("{k:.1}"))
        );
        let _ = writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
