//! **Feedback** — the profile-guided repartitioning loop, closed and
//! gated: profile a design, convert the report into an
//! [`ActivityPrior`], rebuild the engine with the activity-merge phase
//! and measure whether the feedback-guided schedule holds (or beats) the
//! structural baseline.
//!
//! Per design this runs four measurements:
//!
//! * **base** — the stock CCSS engine (the PR-4 configuration),
//!   best-of-N;
//! * a profiled run producing the in-process [`ProfileReport`] that
//!   seeds the prior (complete, not summary-truncated);
//! * **feedback** — the engine rebuilt via `new_with_prior`, best-of-N.
//!   The hard gate: feedback must reach at least
//!   `(1 - REGRESSION_TOLERANCE)` of base — the merge phase's side
//!   conditions are supposed to make it conservative, so a real
//!   slowdown is a bug, not noise. A marginal first batch escalates to
//!   a larger one before failing, like the profile bench's overhead
//!   gate;
//! * the parallel engine both ways — legacy uniform level sweep vs.
//!   LPT bins packed by the measured costs (informational columns; the
//!   LPT-vs-sweep equivalence is property-tested, not benchmarked).
//!
//! Run: `cargo run --release -p essent-bench --bin feedback
//! [--quick|--full|--smoke] [tiny r16 r18 boom]`. `--smoke` is the CI
//! mode: tiny only. Writes `BENCH_feedback.json`.

use essent_bench::{build_design, khz, workload_set, BuiltDesign, TimedRun};
use essent_core::partition::{partition, partition_with_prior, ActivityMergeParams};
use essent_core::plan::extended_dag;
use essent_designs::soc::SocConfig;
use essent_designs::workloads::{run_workload, Workload};
use essent_sim::{EngineConfig, EssentSim, ParEssentSim, ProfileReport, Simulator};
use std::fmt::Write as _;
use std::time::Instant;

/// How far below the base rate the feedback-guided rate may fall before
/// the bin fails: the activity merge only fuses always-co-active
/// neighbors, so it should never buy a real slowdown.
const REGRESSION_TOLERANCE: f64 = 0.05;

struct Row {
    name: String,
    base_khz: f64,
    feedback_khz: f64,
    par_sweep_khz: f64,
    par_lpt_khz: f64,
    /// Live partitions before / after the activity merge, and how many
    /// merges the log records.
    parts_before: usize,
    parts_after: usize,
    merges: usize,
    /// Mean activation rate over the profiled partitions.
    activity: f64,
}

fn main() {
    let mut scale = 1;
    let mut smoke = false;
    let mut designs: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--full" => scale = 10,
            "--quick" => scale = 1,
            "--smoke" => smoke = true,
            "tiny" | "r16" | "r18" | "boom" => designs.push(arg),
            other => {
                eprintln!("usage: feedback [--quick|--full|--smoke] [tiny r16 r18 boom]");
                panic!("unknown argument `{other}`");
            }
        }
    }
    if designs.is_empty() {
        designs = if smoke {
            vec!["tiny".to_string()]
        } else {
            ["tiny", "r16", "r18", "boom"].map(String::from).to_vec()
        };
    }

    let workloads = workload_set(scale);
    let mut rows = Vec::new();
    for name in &designs {
        let config = match name.as_str() {
            "tiny" => SocConfig::tiny(),
            "r16" => SocConfig::r16(),
            "r18" => SocConfig::r18(),
            "boom" => SocConfig::boom(),
            other => panic!("unknown design `{other}`"),
        };
        rows.push(measure(&config, &workloads[0]));
    }

    print_table(&rows);
    for r in &rows {
        assert!(
            r.feedback_khz >= r.base_khz * (1.0 - REGRESSION_TOLERANCE),
            "design `{}`: feedback-guided rate {:.1} kHz fell more than {:.0}% below \
             the base rate {:.1} kHz",
            r.name,
            r.feedback_khz,
            REGRESSION_TOLERANCE * 100.0,
            r.base_khz,
        );
    }
    let json = render_json(scale, smoke, &rows);
    std::fs::write("BENCH_feedback.json", &json).expect("write BENCH_feedback.json");
    eprintln!("wrote BENCH_feedback.json");
}

fn quiet(profile: bool) -> EngineConfig {
    EngineConfig {
        capture_printf: false,
        profile,
        ..EngineConfig::default()
    }
}

/// Times one engine run to workload completion.
fn timed(mut sim: impl Simulator, workload: &Workload, what: &str, name: &str) -> TimedRun {
    let start = Instant::now();
    let result = run_workload(&mut sim, workload, u64::MAX / 2);
    let elapsed = start.elapsed();
    assert!(
        result.finished,
        "{what} did not finish {} on {name}",
        workload.name
    );
    TimedRun { elapsed, result }
}

fn measure(config: &SocConfig, workload: &Workload) -> Row {
    let design = build_design(config);

    // The verifier gate — the full stack, now including the F0401–F0403
    // feedback layer, so a broken merge replay or bin cover fails the
    // bench before any number is reported.
    let report = essent_verify::verify_design(&design.optimized, &EngineConfig::default());
    assert_eq!(
        report.error_count(),
        0,
        "design `{}` failed verification:\n{report}",
        config.name
    );

    // Base: the stock engine, best-of-5.
    let base_batch = |n: usize| {
        (0..n)
            .map(|_| {
                khz(&timed(
                    EssentSim::new(&design.optimized, &quiet(false)),
                    workload,
                    "base CCSS",
                    &config.name,
                ))
            })
            .fold(0.0f64, f64::max)
    };
    let base_khz = base_batch(5);

    // The profiled seeding run: complete in-process report (no summary
    // truncation), converted to a per-node prior.
    let profile = profile_run(&design, workload);
    // The plan the profiled engine ran (the default construction), so
    // unit indices in the report line up with the plan's partitions.
    let plan = essent_core::plan::CcssPlan::build(&design.optimized, quiet(false).c_p);
    let prior = essent_sim::activity_prior(&design.optimized, &plan, &profile);
    let activity = profile.activity_factor();

    // What the merge phase does with that prior, for the report.
    let (dag, _) = extended_dag(&design.optimized);
    let parts_before = partition(&dag, quiet(false).c_p).live_partitions().count();
    let (merged, log) = partition_with_prior(
        &dag,
        quiet(false).c_p,
        &prior,
        &ActivityMergeParams::for_cp(quiet(false).c_p),
    );
    let parts_after = merged.live_partitions().count();

    // Feedback: the engine rebuilt with the prior, best-of-5 with one
    // escalation — the gate compares two same-process measurements, but
    // single draws still vary by a few percent.
    let fb_batch = |n: usize| {
        (0..n)
            .map(|_| {
                khz(&timed(
                    EssentSim::new_with_prior(&design.optimized, &quiet(false), &prior),
                    workload,
                    "feedback CCSS",
                    &config.name,
                ))
            })
            .fold(0.0f64, f64::max)
    };
    let mut feedback_khz = fb_batch(5);
    if feedback_khz < base_khz * (1.0 - REGRESSION_TOLERANCE) {
        feedback_khz = feedback_khz.max(fb_batch(10));
    }

    // Parallel engine, both schedulers (informational).
    let par = |lpt: bool| {
        let cfg = EngineConfig {
            par_lpt: lpt,
            ..quiet(false)
        };
        let sim = match lpt {
            true => ParEssentSim::new_with_prior(&design.optimized, &cfg, 4, &prior),
            false => ParEssentSim::new(&design.optimized, &cfg, 4),
        };
        khz(&timed(sim, workload, "parallel CCSS", &config.name))
    };
    let par_sweep_khz = par(false);
    let par_lpt_khz = par(true);

    Row {
        name: config.name.clone(),
        base_khz,
        feedback_khz,
        par_sweep_khz,
        par_lpt_khz,
        parts_before,
        parts_after,
        merges: log.len(),
        activity,
    }
}

/// One profiled run producing the seeding report.
fn profile_run(design: &BuiltDesign, workload: &Workload) -> ProfileReport {
    let mut sim = EssentSim::new(&design.optimized, &quiet(true));
    let result = run_workload(&mut sim, workload, u64::MAX / 2);
    assert!(result.finished, "profiled run did not finish");
    let report = sim.profile_report().expect("profile config is on");
    assert!(
        report.total_evals() + report.total_skips() > 0,
        "profiled run recorded nothing"
    );
    report
}

fn print_table(rows: &[Row]) {
    println!(
        "{:<6} {:>10} {:>10} {:>7} {:>14} {:>8} {:>10} {:>10}",
        "design", "base(kHz)", "fb(kHz)", "ratio", "parts", "merges", "sweep(kHz)", "lpt(kHz)"
    );
    for r in rows {
        println!(
            "{:<6} {:>10.1} {:>10.1} {:>6.2}x {:>7}->{:<6} {:>8} {:>10.1} {:>10.1}",
            r.name,
            r.base_khz,
            r.feedback_khz,
            r.feedback_khz / r.base_khz,
            r.parts_before,
            r.parts_after,
            r.merges,
            r.par_sweep_khz,
            r.par_lpt_khz,
        );
    }
}

fn render_json(scale: u32, smoke: bool, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"feedback\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"regression_tolerance\": {REGRESSION_TOLERANCE},");
    let _ = writeln!(s, "  \"designs\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"base_khz\": {:.1},", r.base_khz);
        let _ = writeln!(s, "      \"feedback_khz\": {:.1},", r.feedback_khz);
        let _ = writeln!(s, "      \"speedup\": {:.3},", r.feedback_khz / r.base_khz);
        let _ = writeln!(s, "      \"activity_factor\": {:.4},", r.activity);
        let _ = writeln!(s, "      \"partitions_before\": {},", r.parts_before);
        let _ = writeln!(s, "      \"partitions_after\": {},", r.parts_after);
        let _ = writeln!(s, "      \"merges\": {},", r.merges);
        let _ = writeln!(s, "      \"par_sweep_khz\": {:.1},", r.par_sweep_khz);
        let _ = writeln!(s, "      \"par_lpt_khz\": {:.1}", r.par_lpt_khz);
        let _ = writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
