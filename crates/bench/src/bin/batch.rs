//! **Batch** — N-lane batched CCSS throughput in cycles×lanes/sec.
//!
//! Per design this measures three rates over the dhrystone workload:
//!
//! * single — a plain single-instance [`EssentSim`] run (the tier-1
//!   engine every other bench reports), in kHz;
//! * lane-1 — a 1-lane [`BatchSim`]: the honest cost of the strided
//!   arena and lane dispatch with no batching to amortize it;
//! * lane-N — an N-lane [`BatchSim`] (default `--lanes 8`) where lane
//!   `l` runs its own workload variant derived from `l * --seed-stride`
//!   (different iteration counts, so lanes finish at different cycles
//!   and the run exercises partial wake masks and lane compaction).
//!   Reported as *aggregate* throughput: total lane-cycles simulated
//!   per second — the batch engine's whole point is that N lanes share
//!   one instruction dispatch, so aggregate cycles×lanes/sec beats the
//!   single-instance rate even though each individual lane is slower.
//!
//! Every lane is gated by a golden single-instance oracle: an
//! independent `EssentSim` runs the identical per-lane program and must
//! agree on cycle count, retired instructions, and the `tohost`
//! checksum. The bench also runs the full verifier stack (including the
//! `X08xx` batched-lane layer) on every design before timing, and —
//! on `soc` and `r18` at ≥ 8 lanes — asserts the aggregate rate is at
//! least [`MIN_SPEEDUP`]× the 1-lane batch rate.
//!
//! Run: `cargo run --release -p essent-bench --bin batch
//! [--quick|--full] [--lanes N] [--seed-stride K] [tiny r16 r18 boom]`.
//! Writes `BENCH_batch.json`.

use essent_bench::{build_design, secs, BuiltDesign, Cli};
use essent_bits::Bits;
use essent_designs::workloads::{dhrystone, run_workload, RunResult, Workload};
use essent_sim::batch::BatchSim;
use essent_sim::{EngineConfig, EssentSim};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Required aggregate speedup — cycles×lanes/sec at ≥ 8 lanes versus
/// the 1-lane batch rate — on `soc` and `r18`.
const MIN_SPEEDUP: f64 = 3.0;

/// Each rate is pooled over repeated runs until at least this much
/// stepping time has accumulated. The small `soc` design finishes a
/// dhrystone run in tens of milliseconds — far too short for a stable
/// one-shot rate on a busy host, and a single lucky sample in a
/// best-of-N scheme can swing the gate ratio by 30%.
const MIN_SAMPLE: Duration = Duration::from_millis(500);

/// Minimum number of (1-lane, N-lane) sample pairs behind the gate
/// ratio — the gate compares the *median* of per-pair ratios, so a
/// couple of windows that caught a slow patch on a shared host cannot
/// flip the verdict.
const MIN_PAIRS: usize = 7;

/// Runs `f` (one timed workload execution, returning simulated cycles
/// and stepping time) until [`MIN_SAMPLE`] accumulates; returns the
/// pooled rate in kHz along with the total time sampled.
fn sample_khz(mut f: impl FnMut() -> (u64, Duration)) -> (f64, Duration) {
    let mut cycles = 0u64;
    let mut elapsed = Duration::ZERO;
    while elapsed < MIN_SAMPLE {
        let (c, e) = f();
        cycles += c;
        elapsed += e;
    }
    (cycles as f64 / elapsed.as_secs_f64() / 1e3, elapsed)
}

/// Per-lane workload: dhrystone with an iteration count offset derived
/// from `lane * seed_stride`, so lanes do deterministically different
/// amounts of work and halt at different cycles.
fn lane_workload(scale: u32, lane: usize, seed_stride: u64) -> Workload {
    let offset = (lane as u64 * seed_stride % 29) as u32;
    dhrystone(40 * scale + offset).expect("dhrystone assembles")
}

struct LaneRun {
    elapsed: Duration,
    results: Vec<RunResult>,
}

/// The batch-engine analogue of `run_workload`: loads one program per
/// lane, releases reset on all lanes, and steps until every lane halts.
fn run_batch(sim: &mut BatchSim, programs: &[Workload], max_cycles: u64) -> LaneRun {
    assert_eq!(programs.len(), sim.lanes());
    for (lane, wl) in programs.iter().enumerate() {
        for (i, &word) in wl.words.iter().enumerate() {
            sim.write_mem_lane(lane, "imem", i, &Bits::from_u64(word as u64, 32));
        }
    }
    sim.poke("reset", Bits::from_u64(1, 1));
    sim.step(2);
    sim.poke("reset", Bits::from_u64(0, 1));
    let start_cycles: Vec<u64> = (0..sim.lanes()).map(|l| sim.cycle_of(l)).collect();
    let start = Instant::now();
    let mut remaining = max_cycles;
    const CHUNK: u64 = 8192;
    while remaining > 0 {
        let n = remaining.min(CHUNK);
        if sim.step(n) < n {
            break;
        }
        remaining -= n;
    }
    let elapsed = start.elapsed();
    let results = (0..sim.lanes())
        .map(|lane| RunResult {
            cycles: sim.cycle_of(lane) - start_cycles[lane],
            instret: sim.peek_lane(lane, "instret_r").to_u64().unwrap_or(0),
            tohost: sim.peek_lane(lane, "tohost_r").to_u64().unwrap_or(0),
            finished: sim.halted_of(lane).is_some(),
        })
        .collect();
    LaneRun { elapsed, results }
}

struct Row {
    name: String,
    lanes: usize,
    seed_stride: u64,
    single_khz: f64,
    lane1_khz: f64,
    aggregate_khz: f64,
    /// Median of per-pair aggregate/lane1 ratios (the gated quantity).
    speedup_vs_lane1: f64,
    lane_cycles: Vec<u64>,
    compactions: u64,
    elapsed: Duration,
}

fn quiet(lanes: usize) -> EngineConfig {
    EngineConfig {
        capture_printf: false,
        lanes,
        ..EngineConfig::default()
    }
}

fn measure(design: &BuiltDesign, cli: &Cli) -> Row {
    // Verifier gate — includes the X08xx batched-lane audit, so a
    // miswired stride or wake route fails before any number is reported.
    let report = essent_verify::verify_design(&design.optimized, &EngineConfig::default());
    assert!(
        report.is_clean(),
        "design `{}` failed verification:\n{report}",
        design.config.name
    );

    let programs: Vec<Workload> = (0..cli.lanes)
        .map(|l| lane_workload(cli.scale, l, cli.seed_stride))
        .collect();

    // Golden single-instance oracles, one per lane's program; lane 0's
    // pooled timing is the single-instance rate.
    let oracles: Vec<RunResult> = programs
        .iter()
        .enumerate()
        .map(|(lane, wl)| {
            let mut sim = EssentSim::new(&design.optimized, &quiet(1));
            let r = run_workload(&mut sim, wl, u64::MAX / 2);
            assert!(r.finished, "oracle for lane {lane} did not finish");
            r
        })
        .collect();
    let (single_khz, _) = sample_khz(|| {
        let mut sim = EssentSim::new(&design.optimized, &quiet(1));
        let start = Instant::now();
        let r = run_workload(&mut sim, &programs[0], u64::MAX / 2);
        (r.cycles, start.elapsed())
    });

    // The 1-lane batch rate (the honest strided-arena overhead row) and
    // the N-lane rate are sampled in strict alternation: adjacent
    // windows see essentially the same machine speed, so each pair's
    // aggregate/lane1 ratio is clean even when the host is busy, and
    // the gate takes the *median* over ≥ MIN_PAIRS pairs so outlier
    // windows cannot flip it. The displayed kHz columns are the pooled
    // rates. Every N-lane run's every lane is gated by its oracle.
    let mut lane1 = (0u64, Duration::ZERO);
    let mut lanen = (0u64, Duration::ZERO);
    let mut pair_ratios: Vec<f64> = Vec::new();
    let mut last: Option<(LaneRun, u64)> = None;
    while lane1.1 < MIN_SAMPLE || lanen.1 < MIN_SAMPLE || pair_ratios.len() < MIN_PAIRS {
        let l1_khz = {
            let mut sim = BatchSim::new(&design.optimized, &quiet(1));
            let run = run_batch(&mut sim, &programs[..1], u64::MAX / 2);
            lane1.0 += run.results[0].cycles;
            lane1.1 += run.elapsed;
            run.results[0].cycles as f64 / run.elapsed.as_secs_f64() / 1e3
        };
        let ln_khz = {
            let mut sim = BatchSim::new(&design.optimized, &quiet(cli.lanes));
            let run = run_batch(&mut sim, &programs, u64::MAX / 2);
            for (lane, (got, want)) in run.results.iter().zip(&oracles).enumerate() {
                assert_eq!(
                    got, want,
                    "design `{}` lane {lane}: batched run disagrees with its golden \
                     single-instance oracle",
                    design.config.name
                );
            }
            let cycles: u64 = run.results.iter().map(|r| r.cycles).sum();
            lanen.0 += cycles;
            lanen.1 += run.elapsed;
            let khz = cycles as f64 / run.elapsed.as_secs_f64() / 1e3;
            last = Some((run, sim.compactions()));
            khz
        };
        pair_ratios.push(ln_khz / l1_khz);
    }
    pair_ratios.sort_by(f64::total_cmp);
    let speedup_vs_lane1 = pair_ratios[pair_ratios.len() / 2];
    let lane1_khz = lane1.0 as f64 / lane1.1.as_secs_f64() / 1e3;
    let aggregate_khz = lanen.0 as f64 / lanen.1.as_secs_f64() / 1e3;
    let elapsed = lanen.1;
    let (run, compactions) = last.expect("at least one N-lane run");

    Row {
        name: design.config.name.clone(),
        lanes: cli.lanes,
        seed_stride: cli.seed_stride,
        single_khz,
        lane1_khz,
        aggregate_khz,
        speedup_vs_lane1,
        lane_cycles: run.results.iter().map(|r| r.cycles).collect(),
        compactions,
        elapsed,
    }
}

fn main() {
    let mut cli = Cli::parse();
    if cli.designs == ["r16", "r18", "boom"] {
        // This bench's default sweep includes the small `soc` config —
        // it is one of the two gated designs.
        cli.designs = ["tiny", "r16", "r18", "boom"].map(String::from).to_vec();
    }

    let mut rows = Vec::new();
    for config in cli.configs() {
        let design = build_design(&config);
        rows.push(measure(&design, &cli));
    }

    println!(
        "{:<6} {:>6} {:>12} {:>12} {:>14} {:>9} {:>9} {:>8}",
        "design",
        "lanes",
        "single(kHz)",
        "lane1(kHz)",
        "agg(kc/s)",
        "x single",
        "x lane1",
        "time(s)"
    );
    for r in &rows {
        println!(
            "{:<6} {:>6} {:>12.1} {:>12.1} {:>14.1} {:>8.2}x {:>8.2}x {:>8}",
            r.name,
            r.lanes,
            r.single_khz,
            r.lane1_khz,
            r.aggregate_khz,
            r.aggregate_khz / r.single_khz,
            r.speedup_vs_lane1,
            secs(r.elapsed),
        );
        // The hard gate on the two designs the CI nightly watches:
        // aggregate at >= 8 lanes versus the 1-lane batch rate, as the
        // median of paired interleaved samples. The single-instance
        // column stays a *report*, not a gate — the strided arena has
        // real single-lane overhead (see DESIGN.md §14) and the honest
        // number belongs in the JSON, not hidden behind a gate that
        // measures a different engine.
        if (r.name == "soc" || r.name == "r18") && r.lanes >= 8 {
            assert!(
                r.speedup_vs_lane1 >= MIN_SPEEDUP,
                "design `{}`: {}-lane aggregate is only {:.2}x the 1-lane batch \
                 rate (median of paired samples; gate {MIN_SPEEDUP}x)",
                r.name,
                r.lanes,
                r.speedup_vs_lane1,
            );
        }
    }

    let json = render_json(&cli, &rows);
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    eprintln!("wrote BENCH_batch.json");
}

fn render_json(cli: &Cli, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"batch\",");
    let _ = writeln!(s, "  \"scale\": {},", cli.scale);
    let _ = writeln!(s, "  \"min_speedup\": {MIN_SPEEDUP},");
    let _ = writeln!(s, "  \"designs\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"lanes\": {},", r.lanes);
        let _ = writeln!(s, "      \"seed_stride\": {},", r.seed_stride);
        let _ = writeln!(s, "      \"single_khz\": {:.1},", r.single_khz);
        let _ = writeln!(s, "      \"lane1_khz\": {:.1},", r.lane1_khz);
        let _ = writeln!(
            s,
            "      \"aggregate_kcycles_lanes_per_sec\": {:.1},",
            r.aggregate_khz
        );
        let _ = writeln!(
            s,
            "      \"speedup_vs_single\": {:.3},",
            r.aggregate_khz / r.single_khz
        );
        let _ = writeln!(s, "      \"speedup_vs_lane1\": {:.3},", r.speedup_vs_lane1);
        let _ = writeln!(s, "      \"compactions\": {},", r.compactions);
        let cycles: Vec<String> = r.lane_cycles.iter().map(u64::to_string).collect();
        let _ = writeln!(s, "      \"lane_cycles\": [{}],", cycles.join(", "));
        let _ = writeln!(s, "      \"oracle\": \"pass\"");
        let _ = writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
