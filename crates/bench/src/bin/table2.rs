//! **Table II** — software workloads and their cycle counts on r16.
//!
//! Paper values (cycles on r16): dhrystone 489.1K, matmul 715.8K,
//! pchase 8,428.1K. Our workloads reproduce the same regimes at harness
//! scale; `--full` stretches the counts toward the paper's proportions.
//!
//! Run: `cargo run --release -p essent-bench --bin table2 [--full]`

use essent_bench::{build_design, verify_built, workload_set, Cli, Engine};
use essent_designs::soc::SocConfig;

fn main() {
    let cli = Cli::parse();
    let design = build_design(&SocConfig::r16());
    verify_built(&cli, &design);
    println!("Table II: software workloads for evaluation (cycle counts on r16)\n");
    println!(
        "{:>10} | {:>12} | {:>12} | {:>8} | description",
        "Benchmark", "cycles (K)", "instret (K)", "CPI"
    );
    println!("{}", "-".repeat(88));
    let descriptions = [
        "Dhrystone-like mixed-integer microbenchmark",
        "Matrix multiplication benchmark",
        "Pointer-chasing synthetic microbenchmark",
    ];
    for (workload, desc) in workload_set(cli.scale).iter().zip(descriptions) {
        let run = essent_bench::time_run(Engine::Essent, &design, workload);
        let cycles = run.result.cycles as f64 / 1e3;
        let instret = run.result.instret as f64 / 1e3;
        println!(
            "{:>10} | {:>12.1} | {:>12.1} | {:>8.2} | {}",
            workload.name,
            cycles,
            instret,
            run.result.cycles as f64 / run.result.instret.max(1) as f64,
            desc
        );
    }
}
