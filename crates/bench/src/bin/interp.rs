//! **Interp** — what the word-specialized threaded interpreter (the
//! tier-1 bytecode backend) buys on the paper designs: per-design CCSS
//! simulation rate with the tier on vs. the generic interpreter, the
//! fraction of steps executing in the one-word tier, and the fraction of
//! partition outputs whose compare-and-wake trigger tail was fused into
//! the instruction stream.
//!
//! The binary fails (exit 1 via panic) when a design verifies with
//! errors (the verifier now audits the tier programs, `B0210`–`B0212`),
//! or when tier coverage regresses below the floor the lowering is
//! expected to reach after width narrowing.
//!
//! Run: `cargo run --release -p essent-bench --bin interp
//! [--quick|--full] [--feedback BENCH_profile.json] [tiny r16 r18 boom]`.
//! `--feedback` adds an informational feedback-guided rate per design,
//! seeded from a previous profile export. Writes `BENCH_interp.json` to
//! the working directory.

use essent_bench::{build_design, khz, workload_set, BuiltDesign, TimedRun};
use essent_designs::soc::SocConfig;
use essent_designs::workloads::{run_workload, Workload};
use essent_sim::step1::TierStats;
use essent_sim::{EngineConfig, EssentSim};
use std::fmt::Write as _;
use std::time::Instant;

/// Coverage floor: after width narrowing nearly every step is
/// single-word; falling below this means the lowering regressed.
const COVERAGE_FLOOR: f64 = 0.90;

struct Row {
    name: String,
    stats: TierStats,
    tier_khz: f64,
    generic_khz: f64,
    /// Golden-interpreter rate measured in the same process, adjacent to
    /// `tier_khz` — the machine-speed reference the profile bench's
    /// overhead gate scales `tier_khz` by (the interpreter contains no
    /// engine or profiler code, so the ratio isolates machine speed).
    calibration_khz: f64,
    /// `ccss_khz` recorded by the dataflow bench, when available (the
    /// pre-tier rate; informational, not a gate — different machines).
    dataflow_khz: Option<f64>,
    /// `--feedback`: the tiered rate with the loaded activity prior
    /// driving the repartitioning (informational; the gated comparison
    /// lives in the `feedback` bin).
    feedback_khz: Option<f64>,
}

fn main() {
    let mut scale = 1;
    let mut profile = false;
    let mut feedback: Option<String> = None;
    let mut feedback_next = false;
    let mut designs: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if feedback_next {
            feedback = Some(arg);
            feedback_next = false;
            continue;
        }
        match arg.as_str() {
            "--full" => scale = 10,
            "--quick" => scale = 1,
            "--profile" => profile = true,
            "--feedback" => feedback_next = true,
            "tiny" | "r16" | "r18" | "boom" => designs.push(arg),
            other => {
                eprintln!(
                    "usage: interp [--quick|--full] [--profile] \
                     [--feedback BENCH_profile.json] [tiny r16 r18 boom]"
                );
                panic!("unknown argument `{other}`");
            }
        }
    }
    assert!(!feedback_next, "--feedback needs a file argument");
    if designs.is_empty() {
        designs = ["tiny", "r16", "r18", "boom"].map(String::from).to_vec();
    }

    let workloads = workload_set(scale);
    let baselines = std::fs::read_to_string("BENCH_dataflow.json").ok();
    let feedback = feedback
        .map(|path| std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}")));
    let mut rows = Vec::new();
    for name in &designs {
        let config = match name.as_str() {
            "tiny" => SocConfig::tiny(),
            "r16" => SocConfig::r16(),
            "r18" => SocConfig::r18(),
            "boom" => SocConfig::boom(),
            other => panic!("unknown design `{other}`"),
        };
        rows.push(measure(
            &config,
            &workloads[0],
            baselines.as_deref(),
            feedback.as_deref(),
        ));
        if profile {
            print_profile(&config, &workloads[0]);
        }
    }

    print_table(&rows);
    let json = render_json(scale, &rows);
    std::fs::write("BENCH_interp.json", &json).expect("write BENCH_interp.json");
    eprintln!("wrote BENCH_interp.json");
}

fn quiet() -> EngineConfig {
    EngineConfig {
        capture_printf: false,
        ..EngineConfig::default()
    }
}

/// Times the CCSS engine under an explicit config (the stock
/// [`essent_bench::time_run`] always uses the default config).
fn time_essent(design: &BuiltDesign, workload: &Workload, config: &EngineConfig) -> TimedRun {
    let mut sim = EssentSim::new(&design.optimized, config);
    let start = Instant::now();
    let result = run_workload(&mut sim, workload, u64::MAX / 2);
    let elapsed = start.elapsed();
    assert!(
        result.finished,
        "CCSS did not finish {} on {}",
        workload.name, design.config.name
    );
    TimedRun { elapsed, result }
}

fn measure(
    config: &SocConfig,
    workload: &Workload,
    baselines: Option<&str>,
    feedback: Option<&str>,
) -> Row {
    let design = build_design(config);

    // The verifier gate: includes the tier-1 program audit.
    let report = essent_verify::verify_design(&design.optimized, &EngineConfig::default());
    assert_eq!(
        report.error_count(),
        0,
        "design `{}` failed verification:\n{report}",
        config.name
    );

    let stats = EssentSim::new(&design.optimized, &quiet())
        .tier_stats()
        .expect("default config lowers the tier");
    assert!(
        stats.coverage() >= COVERAGE_FLOOR,
        "design `{}`: tier coverage regressed to {:.1}% ({} of {} steps)",
        config.name,
        stats.coverage() * 100.0,
        stats.tier1_steps,
        stats.total_steps
    );

    // Machine calibration and the tier rate are both best-of-3: the
    // profile bench's overhead gate divides one by the other, and a
    // single draw of either can ride a transient slow window on a
    // shared machine, skewing the recorded ratio for every later run.
    let calibration_khz = (0..3)
        .map(|_| essent_bench::calibration_khz(&design.optimized))
        .fold(0.0f64, f64::max);
    let tier_khz = (0..3)
        .map(|_| khz(&time_essent(&design, workload, &quiet())))
        .fold(0.0f64, f64::max);
    let generic_khz = khz(&time_essent(
        &design,
        workload,
        &EngineConfig {
            tier1: false,
            fuse_triggers: false,
            ..quiet()
        },
    ));
    let dataflow_khz = baselines.and_then(|text| dataflow_baseline(text, &config.name));
    let feedback_khz = feedback
        .and_then(|text| {
            let prior =
                essent_bench::load_feedback(text, &design.optimized, &config.name, quiet().c_p);
            if prior.is_none() {
                eprintln!("note: no feedback profile for `{}`", config.name);
            }
            prior
        })
        .map(|prior| {
            let mut sim = EssentSim::new_with_prior(&design.optimized, &quiet(), &prior);
            let start = Instant::now();
            let result = run_workload(&mut sim, workload, u64::MAX / 2);
            let elapsed = start.elapsed();
            assert!(result.finished, "feedback run did not finish");
            khz(&TimedRun { elapsed, result })
        });

    Row {
        name: config.name.clone(),
        stats,
        tier_khz,
        generic_khz,
        calibration_khz,
        dataflow_khz,
        feedback_khz,
    }
}

/// `--profile`: rerun the tiered config with telemetry on and print the
/// ten hottest partitions (full reports come from the `profile` bin).
fn print_profile(config: &SocConfig, workload: &Workload) {
    use essent_sim::Simulator as _;
    let design = build_design(config);
    let mut sim = EssentSim::new(
        &design.optimized,
        &EngineConfig {
            profile: true,
            ..quiet()
        },
    );
    run_workload(&mut sim, workload, u64::MAX / 2);
    let report = sim.profile_report().expect("profile config is on");
    println!(
        "{}: activity factor {:.4}, hottest partitions:",
        config.name,
        report.activity_factor()
    );
    for (_, u) in report.hottest(10) {
        println!(
            "  {:<8} evals {:>10}  skip {:>6.1}%  ops {:>12}  caused {:>8}",
            u.name,
            u.evals,
            u.skip_rate() * 100.0,
            u.ops,
            u.caused
        );
    }
}

/// Pulls `ccss_khz` for `name` out of `BENCH_dataflow.json` (the JSON is
/// our own hand-rolled format; a string scan keeps this dependency-free).
fn dataflow_baseline(text: &str, name: &str) -> Option<f64> {
    let at = text.find(&format!("\"name\": \"{name}\""))?;
    let rest = &text[at..];
    let key = "\"ccss_khz\": ";
    let v = &rest[rest.find(key)? + key.len()..];
    let end = v.find(['\n', ',', '}'])?;
    v[..end].trim().parse().ok()
}

fn print_table(rows: &[Row]) {
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>10} {:>12} {:>8}",
        "design", "steps", "tier1", "cover", "fused", "generic(kHz)", "tier(kHz)"
    );
    for r in rows {
        println!(
            "{:<6} {:>8} {:>8} {:>7.1}% {:>7}/{:<3} {:>12.1} {:>8.1}  ({:.2}x)",
            r.name,
            r.stats.total_steps,
            r.stats.tier1_steps,
            r.stats.coverage() * 100.0,
            r.stats.fused_outputs,
            r.stats.total_outputs,
            r.generic_khz,
            r.tier_khz,
            r.tier_khz / r.generic_khz,
        );
        if let Some(fb) = r.feedback_khz {
            println!(
                "       feedback-guided: {fb:.1} kHz ({:.2}x tier)",
                fb / r.tier_khz
            );
        }
    }
}

fn render_json(scale: u32, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"interp\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"coverage_floor\": {COVERAGE_FLOOR},");
    let _ = writeln!(s, "  \"designs\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"total_steps\": {},", r.stats.total_steps);
        let _ = writeln!(s, "      \"tier1_steps\": {},", r.stats.tier1_steps);
        let _ = writeln!(s, "      \"tier_coverage\": {:.4},", r.stats.coverage());
        let _ = writeln!(s, "      \"fused_outputs\": {},", r.stats.fused_outputs);
        let _ = writeln!(s, "      \"total_outputs\": {},", r.stats.total_outputs);
        let _ = writeln!(s, "      \"generic_khz\": {:.1},", r.generic_khz);
        let _ = writeln!(s, "      \"tier_khz\": {:.1},", r.tier_khz);
        let _ = writeln!(s, "      \"calibration_khz\": {:.2},", r.calibration_khz);
        let _ = writeln!(s, "      \"speedup\": {:.3},", r.tier_khz / r.generic_khz);
        let _ = writeln!(
            s,
            "      \"dataflow_ccss_khz\": {},",
            r.dataflow_khz.map_or("null".into(), |k| format!("{k:.1}"))
        );
        let _ = writeln!(
            s,
            "      \"feedback_khz\": {}",
            r.feedback_khz.map_or("null".into(), |k| format!("{k:.1}"))
        );
        let _ = writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
