//! **Sanitize** — runs the parallel CCSS engine under the shadow-memory
//! race sanitizer on real designs and workloads, as the dynamic
//! counterpart of the static footprint proof (`essent-verify`
//! `R0501`–`R0504`): the sanitizer panics on any same-level
//! cross-partition arena conflict, so a clean run is a dynamic witness
//! that the proven schedule is the one actually executed.
//!
//! Two engines per design run the same workload — sanitizer on and off —
//! and the binary fails (exit 1 via panic) when their architectural
//! results ([`RunResult`]) or [`WorkCounters`] diverge, i.e. the
//! sanitizer must be a pure observer.
//!
//! Build with `--features race-sanitizer` for the real check; without
//! the feature the binary still runs the twin comparison but says so
//! (the sanitizer hooks compile away).
//!
//! Run: `cargo run --release -p essent-bench --features race-sanitizer
//! --bin sanitize [--cycles N] [--threads T] [--dataflow] [tiny r16 r18 boom]`.
//!
//! `--dataflow` runs the statically scheduled dataflow engine
//! ([`EngineConfig::par_dataflow`]) instead of the LPT level sweep: the
//! sanitizer then dynamically witnesses the `S06xx` dependence-layer
//! proof (ready-flag waits cover every conflict, cycle-boundary overlap
//! only between footprint-independent partitions) rather than the
//! level-barrier discipline.

use essent_bench::build_design;
use essent_designs::soc::SocConfig;
use essent_designs::workloads::{dhrystone, run_workload};
use essent_sim::{EngineConfig, ParEssentSim, Simulator};

fn main() {
    let mut designs: Vec<String> = Vec::new();
    let mut max_cycles: u64 = 50_000;
    let mut threads: usize = 3;
    let mut dataflow = false;
    let mut expect_value = false;
    let mut expect: Option<&mut dyn FnMut(&str)> = None;
    let mut set_cycles = |v: &str| max_cycles = v.parse().expect("--cycles takes a number");
    let mut set_threads = |v: &str| threads = v.parse().expect("--threads takes a number");
    for arg in std::env::args().skip(1) {
        if expect_value {
            expect.take().expect("flag parser state")(&arg);
            expect_value = false;
            continue;
        }
        match arg.as_str() {
            "--cycles" => {
                expect = Some(&mut set_cycles);
                expect_value = true;
            }
            "--threads" => {
                expect = Some(&mut set_threads);
                expect_value = true;
            }
            "--dataflow" => dataflow = true,
            "tiny" | "r16" | "r18" | "boom" => designs.push(arg),
            other => {
                eprintln!(
                    "usage: sanitize [--cycles N] [--threads T] [--dataflow] \
                     [tiny r16 r18 boom]"
                );
                panic!("unknown argument `{other}`");
            }
        }
    }
    assert!(!expect_value, "flag needs a value argument");
    if designs.is_empty() {
        designs = vec!["tiny".to_string()];
    }

    if cfg!(feature = "race-sanitizer") {
        println!("sanitize: race-sanitizer feature ON (shadow memory armed)");
    } else {
        println!("sanitize: race-sanitizer feature OFF (twin comparison only)");
    }
    let workload = dhrystone(20).expect("dhrystone assembles");

    for name in &designs {
        let config = match name.as_str() {
            "tiny" => SocConfig::tiny(),
            "r16" => SocConfig::r16(),
            "r18" => SocConfig::r18(),
            _ => SocConfig::boom(),
        };
        let built = build_design(&config);
        let engine = EngineConfig {
            par_dataflow: dataflow,
            ..EngineConfig::default()
        };
        let mut off = ParEssentSim::new(&built.optimized, &engine, threads);
        let mut on = ParEssentSim::new(
            &built.optimized,
            &EngineConfig {
                race_sanitizer: true,
                ..engine
            },
            threads,
        );
        let r_off = run_workload(&mut off, &workload, max_cycles);
        let r_on = run_workload(&mut on, &workload, max_cycles);
        assert_eq!(
            (r_on.cycles, r_on.instret, r_on.tohost, r_on.finished),
            (r_off.cycles, r_off.instret, r_off.tohost, r_off.finished),
            "sanitizer changed architectural results on `{name}`"
        );
        assert_eq!(
            on.counters(),
            off.counters(),
            "sanitizer changed work counters on `{name}`"
        );
        println!(
            "sanitize: `{name}` ok — {} cycle(s), {} instruction(s), \
             tohost {:#x}, {} thread(s), {} engine, no races observed",
            r_on.cycles,
            r_on.instret,
            r_on.tohost,
            threads,
            if dataflow { "dataflow" } else { "level-sweep" }
        );
    }
}
