//! **BSP** — the barrier-free dataflow schedule against the barriered
//! LPT level sweep it replaces (ROADMAP item 2: `par_lpt` loses to the
//! sequential engine on every large design because each dependency
//! level ends in a global barrier).
//!
//! Three engines per design run the same workload to completion:
//!
//! * `seq` — the sequential CCSS engine ([`EssentSim`]);
//! * `par_lpt` — the parallel level sweep at 4 threads, the paper-era
//!   configuration the ROADMAP measured losing;
//! * `par_dataflow` — the statically scheduled dataflow engine
//!   ([`EngineConfig::par_dataflow`]), with the worker count clamped to
//!   the machine's actual parallelism: the schedule synthesizer already
//!   refuses workers it cannot feed, and oversubscribing a small host
//!   would measure scheduler thrash, not the schedule.
//!
//! The binary fails (exit 1 via panic) when any engine disagrees on
//! architectural results ([`RunResult`]) or [`WorkCounters`] — the
//! dataflow schedule may only change *when* partitions run, never what
//! they compute — and, with `--verify`, when the full verifier stack
//! (including the `S06xx` dependence/schedule layer) finds an error.
//!
//! Run: `cargo run --release -p essent-bench --bin bsp
//! [--quick|--full] [--verify] [tiny r16 r18 boom]`.
//! Writes `BENCH_bsp.json` to the working directory.

use essent_bench::{build_design, verify_built, workload_set, BuiltDesign, Cli};
use essent_designs::workloads::{run_workload, RunResult, Workload};
use essent_sim::{EngineConfig, EssentSim, ParEssentSim, Simulator};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: String,
    cycles: u64,
    seq_khz: f64,
    lpt_khz: f64,
    dataflow_khz: f64,
    workers: usize,
    exempt: usize,
    partitions: usize,
}

fn timed(
    sim: &mut dyn Simulator,
    workload: &Workload,
    label: &str,
    name: &str,
) -> (RunResult, f64) {
    let start = Instant::now();
    let result = run_workload(sim, workload, u64::MAX / 2);
    let elapsed = start.elapsed().as_secs_f64();
    assert!(result.finished, "{label} did not finish on `{name}`");
    (result, result.cycles as f64 / elapsed / 1e3)
}

fn measure(
    design: &BuiltDesign,
    workload: &Workload,
    lpt_threads: usize,
    df_threads: usize,
) -> Row {
    let name = &design.config.name;
    let quiet = EngineConfig {
        capture_printf: false,
        ..EngineConfig::default()
    };
    let lpt_cfg = EngineConfig {
        par_lpt: true,
        ..quiet.clone()
    };
    let df_cfg = EngineConfig {
        par_dataflow: true,
        ..quiet.clone()
    };

    // Profiled seeding run, exactly as the feedback bench does it: both
    // parallel engines are built `new_with_prior`, so the LPT baseline
    // is the ROADMAP configuration whose losses this engine exists to
    // fix, and the dataflow synthesizer sees the profiled cost model.
    let mut seeding = EssentSim::new(
        &design.optimized,
        &EngineConfig {
            profile: true,
            ..quiet.clone()
        },
    );
    let r_seed = run_workload(&mut seeding, workload, u64::MAX / 2);
    assert!(r_seed.finished, "profiled seeding run did not finish");
    let report = seeding.profile_report().expect("profile config is on");
    let plan = essent_core::plan::CcssPlan::build(&design.optimized, quiet.c_p);
    let prior = essent_sim::activity_prior(&design.optimized, &plan, &report);

    let mut seq = EssentSim::new(&design.optimized, &quiet);
    let (r_seq, seq_khz) = timed(&mut seq, workload, "seq", name);

    let mut lpt = ParEssentSim::new_with_prior(&design.optimized, &lpt_cfg, lpt_threads, &prior);
    let (r_lpt, lpt_khz) = timed(&mut lpt, workload, "par_lpt", name);

    let mut df = ParEssentSim::new_with_prior(&design.optimized, &df_cfg, df_threads, &prior);
    let (r_df, df_khz) = timed(&mut df, workload, "par_dataflow", name);

    // Correctness cross-check: identical architectural results and
    // identical work done, engine for engine.
    for (label, r) in [("par_lpt", &r_lpt), ("par_dataflow", &r_df)] {
        assert_eq!(
            (r.cycles, r.instret, r.tohost, r.finished),
            (r_seq.cycles, r_seq.instret, r_seq.tohost, r_seq.finished),
            "{label} changed architectural results on `{name}`"
        );
    }
    // The two parallel engines share one prior-merged plan, so they
    // must agree counter for counter — the dataflow schedule may only
    // change *when* partitions run. (The sequential engine plans at the
    // default partitioning and books activity checks differently, so
    // only its architectural results are comparable.)
    assert_eq!(
        df.counters(),
        lpt.counters(),
        "par_dataflow changed the work done on `{name}`"
    );

    let ds = df
        .dataflow_schedule()
        .expect("par_dataflow engine carries its schedule");
    Row {
        name: name.clone(),
        cycles: r_seq.cycles,
        seq_khz,
        lpt_khz,
        dataflow_khz: df_khz,
        workers: ds.worker_count(),
        exempt: ds.exempt_count(),
        partitions: ds.worker_of.len(),
    }
}

fn main() {
    let cli = Cli::parse();
    let workloads = workload_set(cli.scale);
    // dhrystone: the workload behind BENCH_feedback.json's par_lpt
    // cells — the numbers ROADMAP item 2 cites — so the speedup column
    // is apples-to-apples with the recorded losses.
    let workload = &workloads[0];

    let lpt_threads = 4;
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let df_threads = hw.min(4);
    eprintln!(
        "bsp: par_lpt at {lpt_threads} thread(s), par_dataflow clamped to \
         {df_threads} worker(s) ({hw} hardware thread(s))"
    );

    let mut rows = Vec::new();
    for config in cli.configs() {
        let design = build_design(&config);
        verify_built(&cli, &design);
        rows.push(measure(&design, workload, lpt_threads, df_threads));
    }

    print_table(&rows);
    let json = render_json(cli.scale, lpt_threads, df_threads, &rows);
    std::fs::write("BENCH_bsp.json", &json).expect("write BENCH_bsp.json");
    eprintln!("wrote BENCH_bsp.json");
}

fn print_table(rows: &[Row]) {
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>12} {:>8} {:>14}",
        "design", "seq", "par_lpt", "dataflow", "vs par_lpt", "workers", "exempt"
    );
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>12} {:>8} {:>14}",
        "", "(kHz)", "(kHz)", "(kHz)", "", "", "(partitions)"
    );
    for r in rows {
        println!(
            "{:<6} {:>9.1} {:>9.1} {:>9.1} {:>11.2}x {:>8} {:>7}/{:<6}",
            r.name,
            r.seq_khz,
            r.lpt_khz,
            r.dataflow_khz,
            r.dataflow_khz / r.lpt_khz,
            r.workers,
            r.exempt,
            r.partitions,
        );
    }
}

fn render_json(scale: u32, lpt_threads: usize, df_threads: usize, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"bsp\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"lpt_threads\": {lpt_threads},");
    let _ = writeln!(s, "  \"dataflow_workers\": {df_threads},");
    let _ = writeln!(s, "  \"designs\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"cycles\": {},", r.cycles);
        let _ = writeln!(s, "      \"seq_khz\": {:.1},", r.seq_khz);
        let _ = writeln!(s, "      \"par_lpt_khz\": {:.1},", r.lpt_khz);
        let _ = writeln!(s, "      \"par_dataflow_khz\": {:.1},", r.dataflow_khz);
        let _ = writeln!(
            s,
            "      \"dataflow_vs_lpt\": {:.2},",
            r.dataflow_khz / r.lpt_khz
        );
        let _ = writeln!(s, "      \"workers\": {},", r.workers);
        let _ = writeln!(s, "      \"exempt_partitions\": {},", r.exempt);
        let _ = writeln!(s, "      \"partitions\": {}", r.partitions);
        let _ = writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
