//! **Ablation** — the contribution of each optimization DESIGN.md calls
//! out, measured on r16 × dhrystone (plus pchase for the activity-
//! dependent ones).
//!
//! Rows:
//! * `essent` — everything on (the Table III configuration);
//! * `-elision` — state-update elision off (Section III-B1): all
//!   registers/memories commit at end of cycle;
//! * `-mux-cond` — conditional mux-way evaluation off (Section III-B);
//! * `pull-triggers` — pull-direction activity detection (each partition
//!   snapshots and compares its inputs every cycle) instead of the
//!   paper's push triggering;
//! * `-partitioning` — the full-cycle engine on the same optimized
//!   netlist (activity skipping removed entirely);
//! * `-netlist-opts` — ESSENT on the unoptimized netlist;
//! * `event-lev` — levelized event-driven (fine-grained singular activity
//!   tracking, the per-signal alternative the paper argues against);
//! * `event-fifo` — classic FIFO event-driven (repeat evaluations).
//!
//! Run: `cargo run --release -p essent-bench --bin ablation [--full]`

use essent_bench::{build_design, verify_built, workload_set, Cli};
use essent_designs::soc::SocConfig;
use essent_designs::workloads::run_workload;
use essent_sim::{EngineConfig, EssentSim, EventDrivenSim, FullCycleSim, Simulator};
use std::time::Instant;

fn main() {
    let cli = Cli::parse();
    let design = build_design(&SocConfig::r16());
    verify_built(&cli, &design);
    let quiet = EngineConfig {
        capture_printf: false,
        ..EngineConfig::default()
    };

    type Variant<'a> = (&'a str, Box<dyn Fn() -> Box<dyn Simulator>>);
    let variants: Vec<Variant> = vec![
        ("essent", {
            let n = design.optimized.clone();
            let c = quiet.clone();
            Box::new(move || Box::new(EssentSim::new(&n, &c)))
        }),
        ("-elision", {
            let n = design.optimized.clone();
            let c = EngineConfig {
                elide_state: false,
                ..quiet.clone()
            };
            Box::new(move || Box::new(EssentSim::new(&n, &c)))
        }),
        ("-mux-cond", {
            let n = design.optimized.clone();
            let c = EngineConfig {
                mux_conditional: false,
                ..quiet.clone()
            };
            Box::new(move || Box::new(EssentSim::new(&n, &c)))
        }),
        ("pull-triggers", {
            let n = design.optimized.clone();
            let c = EngineConfig {
                trigger_push: false,
                ..quiet.clone()
            };
            Box::new(move || Box::new(EssentSim::new(&n, &c)))
        }),
        ("-partitioning", {
            let n = design.optimized.clone();
            let c = quiet.clone();
            Box::new(move || Box::new(FullCycleSim::new(&n, &c)))
        }),
        ("-netlist-opts", {
            let n = design.unoptimized.clone();
            let c = quiet.clone();
            Box::new(move || Box::new(EssentSim::new(&n, &c)))
        }),
        ("event-lev", {
            let n = design.optimized.clone();
            let c = quiet.clone();
            Box::new(move || Box::new(EventDrivenSim::new(&n, &c)))
        }),
        ("event-fifo", {
            let n = design.optimized.clone();
            let c = EngineConfig {
                event_levelized: false,
                ..quiet.clone()
            };
            Box::new(move || Box::new(EventDrivenSim::new(&n, &c)))
        }),
    ];

    println!("Ablation on r16 (times in seconds; slowdown vs full ESSENT)\n");
    let workloads = workload_set(cli.scale);
    print!("{:>15} |", "variant");
    for w in &workloads {
        print!(" {:>10} {:>7} |", w.name, "slow");
    }
    println!();
    println!("{}", "-".repeat(17 + workloads.len() * 21));

    let mut baselines = vec![0.0f64; workloads.len()];
    for (vi, (name, make)) in variants.iter().enumerate() {
        print!("{name:>15} |");
        for (wi, workload) in workloads.iter().enumerate() {
            let mut sim = make();
            let start = Instant::now();
            let run = run_workload(sim.as_mut(), workload, u64::MAX / 2);
            assert!(run.finished, "{name} stalled on {}", workload.name);
            let t = start.elapsed().as_secs_f64();
            if vi == 0 {
                baselines[wi] = t;
            }
            print!(" {:>10.2} {:>6.2}x |", t, t / baselines[wi]);
        }
        println!();
    }
    println!("\n(cold-path hints are a code-layout effect of the generated C++;");
    println!(" the interpreter's code footprint is constant, so that ablation");
    println!(" is meaningful only for the emitted simulator — see EXPERIMENTS.md)");
}
