//! **Figure 5** — distribution of per-cycle activity factors for every
//! design × workload (log-count histograms).
//!
//! The paper observes activities are "typically low" — a few percent of
//! signals change per cycle — with the workload's IPC shifting the
//! distribution modestly in absolute terms.
//!
//! Run: `cargo run --release -p essent-bench --bin figure5 [designs...]`

use essent_bench::{build_design, verify_built, workload_set, Cli};
use essent_bits::Bits;
use essent_sim::activity::ActivityProbe;
use essent_sim::{EngineConfig, FullCycleSim, Simulator};

/// Activity sampling is arena-snapshot-per-cycle, so cap the profiled
/// window; the distribution stabilizes long before this.
const MAX_PROFILE_CYCLES: u64 = 30_000;

fn main() {
    let cli = Cli::parse();
    println!("Figure 5: distribution of per-cycle activity factors\n");
    for config in cli.configs() {
        let design = build_design(&config);
        verify_built(&cli, &design);
        for workload in workload_set(cli.scale) {
            let mut sim = FullCycleSim::new(
                &design.optimized,
                &EngineConfig {
                    capture_printf: false,
                    ..EngineConfig::default()
                },
            );
            for (i, &word) in workload.words.iter().enumerate() {
                sim.write_mem("imem", i, Bits::from_u64(word as u64, 32));
            }
            sim.poke("reset", Bits::from_u64(1, 1));
            sim.step(2);
            sim.poke("reset", Bits::from_u64(0, 1));
            let mut probe = ActivityProbe::new(sim.machine());
            for _ in 0..MAX_PROFILE_CYCLES {
                if sim.halted().is_some() {
                    break;
                }
                sim.step(1);
                probe.sample(sim.machine());
            }
            let (edges, counts) = probe.histogram(16, 0.32);
            println!(
                "--- {} x {}: mean activity {:.2}% over {} cycles ({} signals)",
                config.name,
                workload.name,
                100.0 * probe.mean(),
                probe.samples().len() - 1,
                probe.tracked_signals()
            );
            for (edge, count) in edges.iter().zip(&counts) {
                if *count == 0 {
                    continue;
                }
                // Log-scale bars, matching the paper's log y-axes.
                let bar: String = "#".repeat(((*count as f64).log10() * 8.0) as usize + 1);
                println!("   <= {:>5.1}% | {:>7} {}", edge * 100.0, count, bar);
            }
            println!();
        }
    }
}
