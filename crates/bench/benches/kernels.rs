//! Criterion micro-benchmarks of the value kernels: the per-operation
//! cost floor of every engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use essent_bits::kernels;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.throughput(Throughput::Elements(1));
    let a64 = [0x1234_5678_9abc_def0u64];
    let b64 = [0x0fed_cba9_8765_4321u64];
    let a128 = [u64::MAX, 0x7fff_ffff_ffff_ffff];
    let b128 = [3u64, 1];
    let mut dst1 = [0u64; 1];
    let mut dst2 = [0u64; 2];
    let mut dst3 = [0u64; 3];

    group.bench_function("add_64", |b| {
        b.iter(|| kernels::add(&mut dst2, 65, &a64, 64, &b64, 64, false))
    });
    group.bench_function("add_128", |b| {
        b.iter(|| kernels::add(&mut dst3, 129, &a128, 127, &b128, 127, false))
    });
    group.bench_function("mul_64x64", |b| {
        b.iter(|| kernels::mul(&mut dst2, 128, &a64, 64, &b64, 64, false))
    });
    group.bench_function("cmp_signed_128", |b| {
        b.iter(|| kernels::cmp(&a128, 127, &b128, 127, true))
    });
    group.bench_function("div_64", |b| {
        b.iter(|| kernels::div(&mut dst1, 64, &a64, 64, &b64, 64, false))
    });
    group.bench_function("div_192_bit_serial", |b| {
        let n192 = [u64::MAX, u64::MAX, 0xff];
        let d192 = [0x1234_5678u64, 1, 0];
        let mut q = [0u64; 3];
        b.iter(|| kernels::div(&mut q, 192, &n192, 192, &d192, 192, false))
    });
    group.bench_function("cat_unaligned", |b| {
        b.iter(|| kernels::cat(&mut dst2, 104, &a64, 64, &b64, 40))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
