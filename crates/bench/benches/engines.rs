//! Criterion micro-benchmarks: cycles/second of the three engines on
//! small designs and the tiny SoC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use essent_bits::Bits;
use essent_designs::small;
use essent_designs::soc::{generate_soc, SocConfig};
use essent_designs::workloads::dhrystone;
use essent_netlist::{opt, Netlist};
use essent_sim::{EngineConfig, EssentSim, EventDrivenSim, FullCycleSim, Simulator};

fn build(src: &str) -> Netlist {
    let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
    let mut n = Netlist::from_circuit(&lowered).unwrap();
    opt::optimize(&mut n, &opt::OptConfig::default());
    n
}

fn quiet() -> EngineConfig {
    EngineConfig {
        capture_printf: false,
        ..EngineConfig::default()
    }
}

fn bench_small_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("small_designs");
    group.sample_size(20);
    const CYCLES: u64 = 10_000;
    group.throughput(Throughput::Elements(CYCLES));
    for (name, src) in [
        ("counter64", small::counter(64)),
        ("gcd16", small::gcd(16)),
        ("fir8", small::fir(16, 8)),
        ("lfsr", small::lfsr()),
    ] {
        let netlist = build(&src);
        group.bench_with_input(BenchmarkId::new("full_cycle", name), &netlist, |b, n| {
            b.iter(|| {
                let mut sim = FullCycleSim::new(n, &quiet());
                if n.find("reset").is_some() {
                    sim.poke("reset", Bits::from_u64(0, 1));
                }
                sim.step(CYCLES)
            })
        });
        group.bench_with_input(BenchmarkId::new("essent", name), &netlist, |b, n| {
            b.iter(|| {
                let mut sim = EssentSim::new(n, &quiet());
                if n.find("reset").is_some() {
                    sim.poke("reset", Bits::from_u64(0, 1));
                }
                sim.step(CYCLES)
            })
        });
    }
    group.finish();
}

fn bench_soc_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiny_soc_dhrystone");
    group.sample_size(10);
    let netlist = build(&generate_soc(&SocConfig::tiny()));
    let workload = dhrystone(5).unwrap();
    group.bench_function("full_cycle", |b| {
        b.iter(|| {
            let mut sim = FullCycleSim::new(&netlist, &quiet());
            essent_designs::workloads::run_workload(&mut sim, &workload, 1_000_000)
        })
    });
    group.bench_function("essent", |b| {
        b.iter(|| {
            let mut sim = EssentSim::new(&netlist, &quiet());
            essent_designs::workloads::run_workload(&mut sim, &workload, 1_000_000)
        })
    });
    group.bench_function("event_driven", |b| {
        b.iter(|| {
            let mut sim = EventDrivenSim::new(&netlist, &quiet());
            essent_designs::workloads::run_workload(&mut sim, &workload, 1_000_000)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_small_designs, bench_soc_workload);
criterion_main!(benches);
