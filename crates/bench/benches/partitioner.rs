//! Criterion micro-benchmarks of the acyclic partitioner itself:
//! MFFC decomposition, the full merge pipeline, and plan construction on
//! real design graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use essent_core::dag::DagView;
use essent_core::mffc::mffc_decompose;
use essent_core::partition::partition;
use essent_core::plan::{extended_dag, CcssPlan};
use essent_designs::soc::{generate_soc, SocConfig};
use essent_netlist::{opt, Netlist};

fn r16_netlist() -> Netlist {
    let src = generate_soc(&SocConfig::r16());
    let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(&src).unwrap()).unwrap();
    let mut n = Netlist::from_circuit(&lowered).unwrap();
    opt::optimize(&mut n, &opt::OptConfig::default());
    n
}

fn bench_partitioner(c: &mut Criterion) {
    let netlist = r16_netlist();
    let (dag, _writes) = extended_dag(&netlist);
    let mut group = c.benchmark_group("partitioner_r16");
    group.sample_size(20);
    group.bench_function("mffc_decompose", |b| b.iter(|| mffc_decompose(&dag)));
    for cp in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("partition", cp), &cp, |b, &cp| {
            b.iter(|| partition(&dag, cp))
        });
    }
    group.bench_function("ccss_plan_cp8", |b| b.iter(|| CcssPlan::build(&netlist, 8)));
    group.finish();
}

fn bench_random_dags(c: &mut Criterion) {
    // Layered random DAG, the partitioner's scaling shape.
    let mut edges = Vec::new();
    let layers = 50;
    let width = 100;
    let n = layers * width;
    for l in 1..layers {
        for i in 0..width {
            let dst = l * width + i;
            edges.push(((l - 1) * width + i, dst));
            edges.push(((l - 1) * width + (i * 7 + 3) % width, dst));
        }
    }
    let dag = DagView::from_edges(n, &edges);
    let mut group = c.benchmark_group("partitioner_random_5k");
    group.sample_size(10);
    group.bench_function("partition_cp8", |b| b.iter(|| partition(&dag, 8)));
    group.finish();
}

criterion_group!(benches, bench_partitioner, bench_random_dags);
criterion_main!(benches);
