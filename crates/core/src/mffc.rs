//! Maximum fanout-free cone (MFFC) decomposition — the seed partitioning
//! (paper Section IV, Figure 3).
//!
//! The MFFC of a node `v` is the largest set of ancestors of `v` whose
//! every path toward the sinks passes through `v`. Results computed
//! inside an MFFC are visible only within the cone and at `v`, which is
//! why an MFFC decomposition is guaranteed acyclic (Cong et al.).
//!
//! Following the paper, the decomposition crawls upward from the sink
//! nodes (state-element writes and external outputs): processing nodes in
//! reverse topological order, a node whose fanouts all landed in one
//! partition joins that partition; any node with diverging fanout (or
//! none) roots a new cone.

use crate::dag::DagView;
use crate::partition::Partitioning;

/// Decomposes the graph into MFFCs, returning the seed partitioning.
///
/// # Panics
///
/// Panics if the graph has a cycle (the netlist layer guarantees
/// acyclicity; random-graph tests construct DAGs).
pub fn mffc_decompose(dag: &DagView) -> Partitioning {
    let order = dag.topo_order().expect("MFFC decomposition requires a DAG");
    let n = dag.node_count();
    const UNASSIGNED: usize = usize::MAX;
    let mut part_of = vec![UNASSIGNED; n];
    let mut next_partition = 0;

    // Reverse topological order: every fanout is already assigned when a
    // node is visited.
    for &v in order.iter().rev() {
        let succs = &dag.succs[v];
        let joined = if succs.is_empty() {
            None
        } else {
            let first = part_of[succs[0]];
            debug_assert_ne!(first, UNASSIGNED);
            succs[1..]
                .iter()
                .all(|&s| part_of[s] == first)
                .then_some(first)
        };
        part_of[v] = match joined {
            Some(p) => p,
            None => {
                let p = next_partition;
                next_partition += 1;
                p
            }
        };
    }
    Partitioning::from_assignment(part_of, next_partition)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3's shape: a chain into a fanout point.
    ///
    /// ```text
    /// 0 -> 1 -> 2 -> 3        (3 fans out to 4 and 5)
    ///                3 -> 4
    ///                3 -> 5
    /// ```
    #[test]
    fn chain_is_one_cone_fanout_roots_new_ones() {
        let dag = DagView::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (3, 5)]);
        let parts = mffc_decompose(&dag);
        parts.validate(&dag).unwrap();
        // 0,1,2,3 form one cone (3's MFFC); 4 and 5 are their own cones.
        let p3 = parts.part_of(3);
        assert_eq!(parts.part_of(0), p3);
        assert_eq!(parts.part_of(1), p3);
        assert_eq!(parts.part_of(2), p3);
        assert_ne!(parts.part_of(4), p3);
        assert_ne!(parts.part_of(5), p3);
        assert_ne!(parts.part_of(4), parts.part_of(5));
    }

    /// A node with siblings (shared parent) roots a trivially small MFFC.
    #[test]
    fn shared_parent_makes_singletons() {
        // 0 feeds both 1 and 2; 1 and 2 feed 3.
        let dag = DagView::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let parts = mffc_decompose(&dag);
        parts.validate(&dag).unwrap();
        // 3 roots a cone containing 1 and 2 (their only fanout is 3); 0
        // fans out to two members of the same cone, so 0 joins it too —
        // the whole diamond is one MFFC.
        let p = parts.part_of(3);
        assert!((0..4).all(|v| parts.part_of(v) == p));
    }

    #[test]
    fn diverging_fanout_to_distinct_cones_splits() {
        // 0 -> 1, 0 -> 2 where 1 and 2 are sinks: 0's fanouts land in two
        // different cones, so 0 is its own cone.
        let dag = DagView::from_edges(3, &[(0, 1), (0, 2)]);
        let parts = mffc_decompose(&dag);
        parts.validate(&dag).unwrap();
        assert_eq!(parts.live_partitions().count(), 3);
    }

    /// The containment property of Figure 3: every node of a cone reaches
    /// the cone's root without leaving the cone.
    #[test]
    fn cone_members_reach_root_internally() {
        let dag = DagView::from_edges(
            8,
            &[
                (0, 2),
                (1, 2),
                (2, 3),
                (2, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (5, 7),
            ],
        );
        let parts = mffc_decompose(&dag);
        parts.validate(&dag).unwrap();
        for p in parts.live_partitions() {
            let members = parts.members(p);
            // The root is the unique member with no successor inside p.
            let roots: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&v| dag.succs[v].iter().all(|&s| parts.part_of(s) != p))
                .collect();
            assert_eq!(roots.len(), 1, "partition {p} must have one root");
        }
    }

    #[test]
    fn empty_graph() {
        let dag = DagView::from_edges(0, &[]);
        let parts = mffc_decompose(&dag);
        assert_eq!(parts.live_partitions().count(), 0);
    }
}
