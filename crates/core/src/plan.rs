//! The CCSS execution plan: everything a generated simulator needs to run
//! the conditional, coarsened, singular, static schedule of paper
//! Section III.
//!
//! Built from a netlist plus an acyclic partitioning, the plan contains:
//!
//! * the **static schedule** — partitions in topological order (with the
//!   extra ordering edges required by state-update elision);
//! * per-partition **member evaluation order** (computed signals only, in
//!   dependency order);
//! * per-partition **output triggers** — for each member read by another
//!   partition, the consumer partitions to wake when its value changes
//!   (the push-direction activation of Figure 1);
//! * the **state-element update elision** analysis of Section III-B1:
//!   a register (or memory write port) is updated *in place inside its
//!   partition* when no path leads from the writing partition back to any
//!   reader, with ordering edges pinning readers before the writer; the
//!   writing partition then immediately wakes next-cycle consumers.
//!   Non-elidable state falls back to an end-of-cycle commit with change
//!   detection;
//! * per-input **wake lists** so the main eval function can trigger
//!   activity when the testbench changes an external input.
//!
//! # The extended graph
//!
//! Memory writes are *actions*, not signals, so the plan extends the
//! signal DAG with one node per write port, depending on the port's
//! `addr`/`en`/`mask`/`data` signals. The partitioner runs over this
//! extended graph, which guarantees the schedule orders every write after
//! the partitions computing its fields.

use crate::dag::DagView;
use crate::diag::{codes, Diagnostic, Report};
use crate::partition::{partition, Partitioning};
use essent_netlist::{MemId, Netlist, RegId, SignalDef, SignalId};
use std::collections::BTreeSet;

/// Options controlling plan construction (ablation switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Apply register/memory update elision (Section III-B1). When off,
    /// all state commits at end of cycle.
    pub elide_state: bool,
    /// Allow *memory write* elision specifically. The parallel engine
    /// turns this off: in-partition memory writes from concurrently
    /// executing partitions would race on the banks, while register
    /// elision stays safe (each register has one writing partition and
    /// a private slot).
    pub elide_mem: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            elide_state: true,
            elide_mem: true,
        }
    }
}

/// One partition's compiled form, in schedule order.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Computed member signals (defs `Op` or `MemRead`) in dependency
    /// order; inputs, constants, and register outputs need no evaluation.
    pub members: Vec<SignalId>,
    /// Members read by other partitions, with the consumers to wake on
    /// change.
    pub outputs: Vec<OutputPlan>,
    /// Indices into [`CcssPlan::reg_plans`] updated in place at the end of
    /// this partition's evaluation.
    pub elided_regs: Vec<usize>,
    /// Indices into [`CcssPlan::mem_write_plans`] executed in place at the
    /// end of this partition's evaluation.
    pub elided_writes: Vec<usize>,
}

/// A partition output: one signal and the scheduled indices of the
/// partitions that consume it.
#[derive(Debug, Clone)]
pub struct OutputPlan {
    pub signal: SignalId,
    pub consumers: Vec<u32>,
}

/// Execution plan for one register.
#[derive(Debug, Clone)]
pub struct RegPlan {
    pub reg: RegId,
    /// Updated in place inside the partition holding its next-value
    /// (true) or committed at end of cycle (false).
    pub elided: bool,
    /// Scheduled partitions reading the register's output; woken (for the
    /// next cycle) when the stored value changes.
    pub wake_on_change: Vec<u32>,
}

/// Execution plan for one memory write port.
#[derive(Debug, Clone)]
pub struct MemWritePlan {
    pub mem: MemId,
    /// Index into the memory's `writers`.
    pub writer: usize,
    pub elided: bool,
    /// Scheduled partitions holding this memory's read-data signals.
    pub wake_on_change: Vec<u32>,
}

/// Cross-cycle independence matrix: which next-cycle *head* partitions
/// (dependency level 0) are footprint-disjoint from which current-cycle
/// *tail* partitions (deepest dependency level) through the
/// register-elision boundary. `disjoint[i][j]` is `true` iff head
/// `heads[i]` could start cycle `C+1` while tail `tails[j]` is still
/// finishing cycle `C`: their arena and memory-bank footprints never
/// touch and the tail does not wake the head's activity flag. Computed
/// by the footprint verifier layer; a future BSP runtime consumes it to
/// overlap adjacent cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MayOverlap {
    /// Scheduled indices of the level-0 partitions of a cycle.
    pub heads: Vec<u32>,
    /// Scheduled indices of the deepest-level partitions of a cycle.
    pub tails: Vec<u32>,
    /// `disjoint[i][j]`: head `heads[i]` vs tail `tails[j]`.
    pub disjoint: Vec<Vec<bool>>,
}

impl MayOverlap {
    /// Number of (head, tail) pairs proven independent.
    pub fn independent_pairs(&self) -> usize {
        self.disjoint
            .iter()
            .map(|row| row.iter().filter(|&&d| d).count())
            .sum()
    }

    /// Hand-rolled JSON serialization (the repo carries no serde); the
    /// artifact the CI lanes upload and the BSP runtime would load.
    pub fn to_json(&self) -> String {
        let list = |v: &[u32]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut rows = Vec::with_capacity(self.disjoint.len());
        for row in &self.disjoint {
            let cells: Vec<&str> = row
                .iter()
                .map(|&d| if d { "true" } else { "false" })
                .collect();
            rows.push(format!("[{}]", cells.join(",")));
        }
        format!(
            "{{\"heads\":[{}],\"tails\":[{}],\"disjoint\":[{}],\"independent_pairs\":{}}}",
            list(&self.heads),
            list(&self.tails),
            rows.join(","),
            self.independent_pairs()
        )
    }
}

/// The complete CCSS execution plan.
#[derive(Debug, Clone)]
pub struct CcssPlan {
    pub partitions: Vec<PartitionPlan>,
    /// Signal → scheduled partition index.
    pub sched_of_signal: Vec<u32>,
    /// Per external input: the partitions to wake when it changes.
    pub input_wakes: Vec<(SignalId, Vec<u32>)>,
    pub reg_plans: Vec<RegPlan>,
    pub mem_write_plans: Vec<MemWritePlan>,
    /// Cross-cycle independence matrix attached by the footprint
    /// verifier ([`CcssPlan::attach_may_overlap`]); `None` until an
    /// analysis has run.
    pub may_overlap: Option<MayOverlap>,
    /// Static dataflow (BSP) schedule attached by
    /// [`CcssPlan::attach_dataflow`] after
    /// [`synthesize_dataflow`](crate::depgraph::synthesize_dataflow);
    /// `None` until a synthesis has run.
    pub dataflow: Option<crate::depgraph::DataflowSchedule>,
}

impl CcssPlan {
    /// Convenience: partition the netlist at threshold `c_p` and build the
    /// plan with default options.
    pub fn build(netlist: &Netlist, c_p: usize) -> CcssPlan {
        let (dag, writes) = extended_dag(netlist);
        let parts = partition(&dag, c_p);
        CcssPlan::from_partitioning(netlist, &dag, &writes, &parts, PlanOptions::default())
    }

    /// Builds the plan from an existing partitioning over the extended
    /// graph (see [`extended_dag`]).
    ///
    /// # Panics
    ///
    /// Panics if the partitioning is inconsistent with the netlist (the
    /// partitioner's `validate` would fail).
    pub fn from_partitioning(
        netlist: &Netlist,
        dag: &DagView,
        write_nodes: &[(MemId, usize)],
        parts: &Partitioning,
        options: PlanOptions,
    ) -> CcssPlan {
        let signal_count = netlist.signal_count();
        let live: Vec<usize> = parts.live_partitions().collect();
        let rank_of_part =
            |p: usize| -> usize { live.binary_search(&p).expect("live partition id") };

        // Partition adjacency (recomputed over live ids) + ordering edges.
        let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); live.len()];
        for node in 0..dag.node_count() {
            let p = rank_of_part(parts.part_of(node));
            for &s in &dag.succs[node] {
                let q = rank_of_part(parts.part_of(s));
                if p != q {
                    succs[p].insert(q);
                }
            }
        }

        let reach = |succs: &Vec<BTreeSet<usize>>, from: usize, to: usize| -> bool {
            if from == to {
                return false;
            }
            let mut visited = vec![false; succs.len()];
            let mut stack = vec![from];
            visited[from] = true;
            while let Some(p) = stack.pop() {
                for &s in &succs[p] {
                    if s == to {
                        return true;
                    }
                    if !visited[s] {
                        visited[s] = true;
                        stack.push(s);
                    }
                }
            }
            false
        };

        // --- State-update elision (Section III-B1) ---
        // Memory-write elision is decided first: a register whose output
        // feeds a *non-elided* write action must not be elided, because
        // the end-of-cycle write would otherwise observe the register's
        // next-cycle value (after copy forwarding the write's fields can
        // alias the register output directly).
        let mut write_elided = vec![false; write_nodes.len()];
        // Reader partitions per memory (partitions holding read-data).
        let mem_reader_parts: Vec<Vec<usize>> = netlist
            .mems()
            .iter()
            .map(|m| {
                let set: BTreeSet<usize> = m
                    .readers
                    .iter()
                    .map(|r| rank_of_part(parts.part_of(r.data.index())))
                    .collect();
                set.into_iter().collect()
            })
            .collect();
        for (wi, &(mem, _port)) in write_nodes.iter().enumerate() {
            if !options.elide_state || !options.elide_mem {
                continue;
            }
            let writer = rank_of_part(parts.part_of(signal_count + wi));
            let readers = &mem_reader_parts[mem.index()];
            if readers
                .iter()
                .all(|&p| p == writer || !reach(&succs, writer, p))
            {
                write_elided[wi] = true;
                for &p in readers {
                    if p != writer {
                        succs[p].insert(writer);
                    }
                }
            }
        }

        let mut reg_elided = vec![false; netlist.regs().len()];
        let mut reg_readers: Vec<Vec<usize>> = Vec::with_capacity(netlist.regs().len());
        for (ri, reg) in netlist.regs().iter().enumerate() {
            let writer = rank_of_part(parts.part_of(reg.next.index()));
            let readers: BTreeSet<usize> = dag.succs[reg.out.index()]
                .iter()
                .map(|&s| rank_of_part(parts.part_of(s)))
                .collect();
            reg_readers.push(readers.iter().copied().collect());
            if !options.elide_state {
                continue;
            }
            // A non-elided write action reading this register executes at
            // end of cycle and needs the pre-update value: keep the
            // register two-phase in that case.
            let feeds_unelided_write = dag.succs[reg.out.index()]
                .iter()
                .any(|&s| s >= signal_count && !write_elided[s - signal_count]);
            if feeds_unelided_write {
                continue;
            }
            // Elidable iff no reader is downstream of the writer.
            if readers
                .iter()
                .all(|&p| p == writer || !reach(&succs, writer, p))
            {
                reg_elided[ri] = true;
                for &p in &readers {
                    if p != writer {
                        succs[p].insert(writer);
                    }
                }
            }
        }

        // --- Static schedule: deterministic topological order ---
        let mut indegree = vec![0usize; live.len()];
        for part_succs in &succs {
            for &s in part_succs {
                indegree[s] += 1;
            }
        }
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..live.len())
            .filter(|&p| indegree[p] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut sched_of_rank = vec![u32::MAX; live.len()];
        let mut rank_of_sched = Vec::with_capacity(live.len());
        while let Some(std::cmp::Reverse(p)) = heap.pop() {
            sched_of_rank[p] = rank_of_sched.len() as u32;
            rank_of_sched.push(p);
            for &s in &succs[p] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    heap.push(std::cmp::Reverse(s));
                }
            }
        }
        assert_eq!(
            rank_of_sched.len(),
            live.len(),
            "ordering edges must keep the partition graph acyclic"
        );

        // --- Per-signal schedule map ---
        let mut sched_of_signal = vec![0u32; signal_count];
        for (s, sched) in sched_of_signal.iter_mut().enumerate() {
            *sched = sched_of_rank[rank_of_part(parts.part_of(s))];
        }

        // --- Members in evaluation order ---
        let topo = essent_netlist::graph::topo_order(netlist).expect("netlist is acyclic");
        let mut partitions: Vec<PartitionPlan> = (0..live.len())
            .map(|_| PartitionPlan {
                members: Vec::new(),
                outputs: Vec::new(),
                elided_regs: Vec::new(),
                elided_writes: Vec::new(),
            })
            .collect();
        for &sig in &topo {
            let def = &netlist.signal(sig).def;
            if matches!(def, SignalDef::Op(_) | SignalDef::MemRead { .. }) {
                let sched = sched_of_signal[sig.index()] as usize;
                partitions[sched].members.push(sig);
            }
        }

        // --- Output triggers ---
        for (s, &my_sched) in sched_of_signal.iter().enumerate() {
            let sig = SignalId(s as u32);
            if !matches!(
                netlist.signal(sig).def,
                SignalDef::Op(_) | SignalDef::MemRead { .. }
            ) {
                continue;
            }
            let consumers: BTreeSet<u32> = dag.succs[s]
                .iter()
                .map(|&t| sched_of_rank[rank_of_part(parts.part_of(t))])
                .filter(|&c| c != my_sched)
                .collect();
            if !consumers.is_empty() {
                partitions[my_sched as usize].outputs.push(OutputPlan {
                    signal: sig,
                    consumers: consumers.into_iter().collect(),
                });
            }
        }

        // --- Register plans ---
        let mut reg_plans = Vec::with_capacity(netlist.regs().len());
        for (ri, reg) in netlist.regs().iter().enumerate() {
            let wake: Vec<u32> = reg_readers[ri]
                .iter()
                .map(|&p| sched_of_rank[p])
                .collect::<BTreeSet<u32>>()
                .into_iter()
                .collect();
            if reg_elided[ri] {
                let sched = sched_of_signal[reg.next.index()] as usize;
                partitions[sched].elided_regs.push(ri);
            }
            reg_plans.push(RegPlan {
                reg: RegId(ri as u32),
                elided: reg_elided[ri],
                wake_on_change: wake,
            });
        }

        // --- Memory write plans ---
        let mut mem_write_plans = Vec::with_capacity(write_nodes.len());
        for (wi, &(mem, port)) in write_nodes.iter().enumerate() {
            let wake: Vec<u32> = mem_reader_parts[mem.index()]
                .iter()
                .map(|&p| sched_of_rank[p])
                .collect::<BTreeSet<u32>>()
                .into_iter()
                .collect();
            if write_elided[wi] {
                let writer_rank = rank_of_part(parts.part_of(signal_count + wi));
                let sched = sched_of_rank[writer_rank] as usize;
                partitions[sched].elided_writes.push(wi);
            }
            mem_write_plans.push(MemWritePlan {
                mem,
                writer: port,
                elided: write_elided[wi],
                wake_on_change: wake,
            });
        }

        // --- Input wake lists ---
        let input_wakes = netlist
            .inputs()
            .iter()
            .map(|&input| {
                let wakes: BTreeSet<u32> = dag.succs[input.index()]
                    .iter()
                    .map(|&t| sched_of_rank[rank_of_part(parts.part_of(t))])
                    .collect();
                (input, wakes.into_iter().collect())
            })
            .collect();

        CcssPlan {
            partitions,
            sched_of_signal,
            input_wakes,
            reg_plans,
            mem_write_plans,
            may_overlap: None,
            dataflow: None,
        }
    }

    /// Stores a footprint-derived cross-cycle independence matrix in the
    /// plan so downstream consumers (the BSP runtime) can read it
    /// without re-running the analysis.
    pub fn attach_may_overlap(&mut self, matrix: MayOverlap) {
        self.may_overlap = Some(matrix);
    }

    /// Stores a synthesized dataflow schedule in the plan for the
    /// `par_dataflow` runtime to consume.
    pub fn attach_dataflow(&mut self, sched: crate::depgraph::DataflowSchedule) {
        self.dataflow = Some(sched);
    }

    /// Number of partitions in the schedule.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of (output, consumer) trigger pairs — the quantity the
    /// paper's dynamic overhead is proportional to.
    pub fn trigger_count(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.outputs.iter())
            .map(|o| o.consumers.len())
            .sum()
    }

    /// Checks the plan's structural invariants against the netlist.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant (used heavily by
    /// the property tests).
    ///
    /// Thin shim over [`CcssPlan::check`]; prefer the structured
    /// [`Report`] it returns.
    pub fn validate(&self, netlist: &Netlist) -> Result<(), String> {
        self.check(netlist).into_legacy_result()
    }

    /// Structured-diagnostic form of [`CcssPlan::validate`]: reports every
    /// violation (not just the first) with stable codes.
    pub fn check(&self, netlist: &Netlist) -> Report {
        let mut report = Report::new();
        // Members are topologically consistent within and across
        // partitions: a member's dependencies in other partitions must be
        // scheduled strictly earlier; same-partition deps earlier in the
        // member list. Register outputs / inputs / constants are exempt
        // (state or cycle-start values).
        let mut member_pos = vec![usize::MAX; netlist.signal_count()];
        for (sched, part) in self.partitions.iter().enumerate() {
            for (i, &m) in part.members.iter().enumerate() {
                if self.sched_of_signal[m.index()] as usize != sched {
                    report.push(
                        Diagnostic::error(
                            codes::MEMBER_MISPLACED,
                            format!(
                                "member {m} listed in partition {sched} but assigned to {}",
                                self.sched_of_signal[m.index()]
                            ),
                        )
                        .with_signal(&netlist.signal(m).name)
                        .with_partition(sched),
                    );
                }
                member_pos[m.index()] = i;
            }
        }
        for (sched, part) in self.partitions.iter().enumerate() {
            for (i, &m) in part.members.iter().enumerate() {
                for dep in netlist.deps(m) {
                    let dep_def = &netlist.signal(dep).def;
                    if !matches!(dep_def, SignalDef::Op(_) | SignalDef::MemRead { .. }) {
                        continue;
                    }
                    let dep_sched = self.sched_of_signal[dep.index()] as usize;
                    if dep_sched == sched {
                        if member_pos[dep.index()] >= i {
                            report.push(
                                Diagnostic::error(
                                    codes::TOPO_ORDER,
                                    format!("member {m} evaluated before same-partition dep {dep}"),
                                )
                                .with_signal(&netlist.signal(m).name)
                                .with_partition(sched),
                            );
                        }
                    } else if dep_sched > sched {
                        report.push(
                            Diagnostic::error(
                                codes::TOPO_ORDER,
                                format!(
                                    "partition {sched} uses {dep} from later partition {dep_sched}"
                                ),
                            )
                            .with_signal(&netlist.signal(dep).name)
                            .with_partition(sched),
                        );
                    }
                }
            }
        }
        // Elision safety: every reader of an elided register/memory is
        // scheduled no later than the writer.
        for (ri, rp) in self.reg_plans.iter().enumerate() {
            if !rp.elided {
                continue;
            }
            let reg = &netlist.regs()[ri];
            let writer = self.sched_of_signal[reg.next.index()];
            for &reader in &rp.wake_on_change {
                if reader > writer {
                    report.push(
                        Diagnostic::error(
                            codes::UNSAFE_ELISION,
                            format!(
                                "elided register {} read by partition {reader} after writer {writer}",
                                reg.name
                            ),
                        )
                        .with_signal(&reg.name)
                        .with_partition(reader as usize),
                    );
                }
            }
        }
        for wp in &self.mem_write_plans {
            if !wp.elided {
                continue;
            }
            // The writer partition holds the elided write.
            let writer = self
                .partitions
                .iter()
                .position(|p| {
                    p.elided_writes
                        .iter()
                        .any(|&wi| std::ptr::eq(&self.mem_write_plans[wi], wp))
                })
                .unwrap_or(usize::MAX);
            for &reader in &wp.wake_on_change {
                if writer != usize::MAX && (reader as usize) > writer {
                    report.push(
                        Diagnostic::error(
                            codes::UNSAFE_ELISION,
                            format!(
                                "elided memory write read by partition {reader} after writer {writer}"
                            ),
                        )
                        .with_signal(&netlist.mems()[wp.mem.index()].name)
                        .with_partition(reader as usize),
                    );
                }
            }
        }
        report
    }
}

/// Builds the extended DAG: signal nodes plus one action node per memory
/// write port (depending on the port's four field signals). Returns the
/// graph and the `(mem, writer-index)` identity of each action node, in
/// order, starting at node id `netlist.signal_count()`.
pub fn extended_dag(netlist: &Netlist) -> (DagView, Vec<(MemId, usize)>) {
    let s = netlist.signal_count();
    let mut edges = Vec::new();
    for i in 0..s {
        for dep in netlist.deps(SignalId(i as u32)) {
            edges.push((dep.index(), i));
        }
    }
    let mut write_nodes = Vec::new();
    for (mi, mem) in netlist.mems().iter().enumerate() {
        for (wi, w) in mem.writers.iter().enumerate() {
            let node = s + write_nodes.len();
            write_nodes.push((MemId(mi as u32), wi));
            for field in [w.addr, w.en, w.mask, w.data] {
                edges.push((field.index(), node));
            }
        }
    }
    (
        DagView::from_edges(s + write_nodes.len(), &edges),
        write_nodes,
    )
}

/// Groups a plan's scheduled partitions by dependency level: the
/// partition-level edges are combinational triggers (always forward in
/// schedule order) plus elision ordering (reader -> writer), and a
/// partition's level is one past its deepest predecessor.
///
/// Shared by the parallel runtime's level sweep and LPT packer;
/// `essent-verify` keeps an *independent* re-derivation
/// (`footprint::derive_levels`) per the layer discipline.
pub fn plan_levels(plan: &CcssPlan) -> Vec<Vec<u32>> {
    let np = plan.partitions.len();
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); np];
    for (sched, part) in plan.partitions.iter().enumerate() {
        for o in &part.outputs {
            for &c in &o.consumers {
                if (c as usize) > sched {
                    preds[c as usize].push(sched as u32);
                }
            }
        }
        for &ri in &part.elided_regs {
            for &reader in &plan.reg_plans[ri].wake_on_change {
                if (reader as usize) != sched {
                    preds[sched].push(reader);
                }
            }
        }
    }
    let mut level_of = vec![0u32; np];
    // Scheduled order is a topological order of this graph.
    for sched in 0..np {
        let lvl = preds[sched]
            .iter()
            .map(|&p| level_of[p as usize] + 1)
            .max()
            .unwrap_or(0);
        level_of[sched] = lvl;
    }
    let max_level = level_of.iter().copied().max().unwrap_or(0) as usize;
    let mut levels: Vec<Vec<u32>> = vec![Vec::new(); max_level + 1];
    for (sched, &lvl) in level_of.iter().enumerate() {
        levels[lvl as usize].push(sched as u32);
    }
    levels
}

/// The complete activity-wake routing of a plan, flattened into one
/// canonical, deterministic artifact: every path by which the engines set
/// an activity flag. The batched engine builds its per-lane wake-mask
/// tables from this (lane bit `l` of consumer `c`'s mask is set exactly
/// when single-instance ESSENT would set `flags[c]` for that lane's
/// values), and `essent-verify`'s X08 layer re-derives it from an
/// independently built plan to prove the engine's captured tables
/// complete — a missing consumer here is a lane that silently stops
/// waking (mask-bit misrouting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeRouting {
    /// Per scheduled partition: its outputs as `(signal, consumers)`,
    /// consumers sorted and deduplicated.
    pub outputs: Vec<Vec<(SignalId, Vec<u32>)>>,
    /// Per [`CcssPlan::reg_plans`] entry: sorted wake-on-change readers.
    pub reg_wakes: Vec<Vec<u32>>,
    /// Per [`CcssPlan::mem_write_plans`] entry: sorted wake-on-change
    /// readers.
    pub mem_wakes: Vec<Vec<u32>>,
    /// Per external input (sorted by signal): partitions woken on change.
    pub input_wakes: Vec<(SignalId, Vec<u32>)>,
}

impl CcssPlan {
    /// Flattens this plan's wake edges into a [`WakeRouting`].
    pub fn wake_routing(&self) -> WakeRouting {
        let canon = |v: &[u32]| -> Vec<u32> {
            let mut s: Vec<u32> = v.to_vec();
            s.sort_unstable();
            s.dedup();
            s
        };
        let outputs = self
            .partitions
            .iter()
            .map(|p| {
                p.outputs
                    .iter()
                    .map(|o| (o.signal, canon(&o.consumers)))
                    .collect()
            })
            .collect();
        let reg_wakes = self
            .reg_plans
            .iter()
            .map(|r| canon(&r.wake_on_change))
            .collect();
        let mem_wakes = self
            .mem_write_plans
            .iter()
            .map(|w| canon(&w.wake_on_change))
            .collect();
        let mut input_wakes: Vec<(SignalId, Vec<u32>)> = self
            .input_wakes
            .iter()
            .map(|(s, w)| (*s, canon(w)))
            .collect();
        input_wakes.sort_by_key(|(s, _)| s.0);
        WakeRouting {
            outputs,
            reg_wakes,
            mem_wakes,
            input_wakes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn netlist_of(src: &str) -> Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    const COUNTER: &str = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";

    #[test]
    fn counter_plan_elides_register() {
        let n = netlist_of(COUNTER);
        let plan = CcssPlan::build(&n, 8);
        plan.validate(&n).unwrap();
        assert_eq!(plan.reg_plans.len(), 1);
        assert!(plan.reg_plans[0].elided, "feedback-only register elides");
        // The register wakes its own partition (feedback loop).
        let writer = plan.sched_of_signal[n.regs()[0].next.index()];
        assert!(plan.reg_plans[0].wake_on_change.contains(&writer));
    }

    #[test]
    fn plan_covers_every_computed_signal_once() {
        let n = netlist_of(COUNTER);
        let plan = CcssPlan::build(&n, 4);
        let mut seen = vec![false; n.signal_count()];
        for p in &plan.partitions {
            for &m in &p.members {
                assert!(!seen[m.index()], "member listed twice");
                seen[m.index()] = true;
            }
        }
        for (i, s) in n.signals().iter().enumerate() {
            let computed = matches!(s.def, SignalDef::Op(_) | SignalDef::MemRead { .. });
            assert_eq!(seen[i], computed, "signal {} coverage", s.name);
        }
    }

    #[test]
    fn triggers_point_forward_or_are_state_wakes() {
        let src = "circuit T :\n  module T :\n    input a : UInt<8>\n    input b : UInt<8>\n    output x : UInt<9>\n    output y : UInt<9>\n    output z : UInt<1>\n    x <= add(a, b)\n    y <= sub(a, b)\n    z <= eq(a, b)\n";
        let n = netlist_of(src);
        let plan = CcssPlan::build(&n, 1);
        plan.validate(&n).unwrap();
        for (sched, part) in plan.partitions.iter().enumerate() {
            for o in &part.outputs {
                for &c in &o.consumers {
                    // Combinational triggers go strictly forward.
                    assert!(c as usize > sched, "combinational trigger must go forward");
                }
            }
        }
    }

    #[test]
    fn input_wakes_cover_direct_readers() {
        let n = netlist_of(COUNTER);
        let plan = CcssPlan::build(&n, 8);
        let reset = n.find("reset").unwrap();
        let wake = plan
            .input_wakes
            .iter()
            .find(|(s, _)| *s == reset)
            .map(|(_, w)| w.clone())
            .unwrap();
        assert!(!wake.is_empty(), "reset must wake its consumers");
    }

    #[test]
    fn memory_write_plan_orders_readers_first() {
        let src = "circuit M :\n  module M :\n    input clock : Clock\n    input addr : UInt<3>\n    input wen : UInt<1>\n    input wdata : UInt<8>\n    output o : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 8\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= addr\n    m.w.clk <= clock\n    m.w.en <= wen\n    m.w.addr <= addr\n    m.w.data <= wdata\n    m.w.mask <= UInt<1>(1)\n    o <= m.r.data\n";
        let n = netlist_of(src);
        let plan = CcssPlan::build(&n, 8);
        plan.validate(&n).unwrap();
        assert_eq!(plan.mem_write_plans.len(), 1);
        let wp = &plan.mem_write_plans[0];
        assert!(!wp.wake_on_change.is_empty());
    }

    #[test]
    fn elision_disabled_by_options() {
        let n = netlist_of(COUNTER);
        let (dag, writes) = extended_dag(&n);
        let parts = crate::partition::partition(&dag, 8);
        let plan = CcssPlan::from_partitioning(
            &n,
            &dag,
            &writes,
            &parts,
            PlanOptions {
                elide_state: false,
                elide_mem: false,
            },
        );
        assert!(plan.reg_plans.iter().all(|r| !r.elided));
        plan.validate(&n).unwrap();
    }

    #[test]
    fn may_overlap_attaches_and_serializes() {
        let n = netlist_of(COUNTER);
        let mut plan = CcssPlan::build(&n, 8);
        assert!(plan.may_overlap.is_none());
        let matrix = MayOverlap {
            heads: vec![0, 2],
            tails: vec![1],
            disjoint: vec![vec![true], vec![false]],
        };
        assert_eq!(matrix.independent_pairs(), 1);
        plan.attach_may_overlap(matrix.clone());
        assert_eq!(plan.may_overlap.as_ref(), Some(&matrix));
        let json = matrix.to_json();
        assert_eq!(
            json,
            "{\"heads\":[0,2],\"tails\":[1],\"disjoint\":[[true],[false]],\"independent_pairs\":1}"
        );
    }

    #[test]
    fn plan_works_across_cp_values() {
        let src = "circuit W :\n  module W :\n    input clock : Clock\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<8>\n    reg r1 : UInt<8>, clock\n    reg r2 : UInt<8>, clock\n    r1 <= xor(a, b)\n    r2 <= and(r1, a)\n    o <= or(r2, b)\n";
        let n = netlist_of(src);
        for cp in [1, 2, 4, 8, 32] {
            let plan = CcssPlan::build(&n, cp);
            plan.validate(&n).unwrap_or_else(|e| panic!("cp={cp}: {e}"));
        }
    }
}
