//! Structured diagnostics shared by every static checker in the
//! workspace: the legality/validation shims in this crate and the
//! independent `essent-verify` subsystem (netlist lints, schedule
//! verifier, bytecode verifier).
//!
//! Every finding carries a **stable code** ([`DiagCode`], rendered like
//! `V0102-trigger-missing`), a severity, a human-readable message, and
//! the offending signal/partition when known, so tooling can match on
//! codes instead of scraping strings. The full code table lives in
//! [`codes`] and is documented in the README.

use std::fmt;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never fails a check.
    Info,
    /// Suspicious but not soundness-breaking (lints).
    Warning,
    /// An invariant violation: the artifact must not be executed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A stable diagnostic code: a short machine id (`"V0102"`) plus a
/// kebab-case slug (`"trigger-missing"`). Codes are append-only — once
/// shipped, an id keeps its meaning forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiagCode {
    pub id: &'static str,
    pub slug: &'static str,
}

impl DiagCode {
    /// Defines a code. Use the constants in [`codes`] rather than
    /// minting ad-hoc codes.
    pub const fn new(id: &'static str, slug: &'static str) -> DiagCode {
        DiagCode { id, slug }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.id, self.slug)
    }
}

/// The stable code table. Families: `L____` netlist lints, `V____`
/// schedule (plan) invariants, `B____` compiled bytecode invariants,
/// `P____` profiler wiring invariants, `F____` profile-feedback
/// (activity repartitioning / level scheduling) invariants, `R____`
/// footprint / race-freedom invariants, `S____` dependence /
/// dataflow-schedule invariants.
pub mod codes {
    use super::DiagCode;

    // --- L: netlist lints -------------------------------------------------
    /// The combinational graph contains a cycle (named minimally).
    pub const COMB_LOOP: DiagCode = DiagCode::new("L0001", "comb-loop");
    /// A register has no reset path: its power-on value is undefined.
    pub const UNRESET_REGISTER: DiagCode = DiagCode::new("L0002", "unreset-register");
    /// A copy/connect narrows a signal, dropping high bits.
    pub const WIDTH_TRUNCATION: DiagCode = DiagCode::new("L0003", "width-truncation");
    /// A signal is unreachable from every sink (dead code).
    pub const DEAD_SIGNAL: DiagCode = DiagCode::new("L0004", "dead-signal");
    /// A memory write port field has inconsistent width.
    pub const MEM_FIELD_WIDTH: DiagCode = DiagCode::new("L0005", "mem-field-width");
    /// Dataflow analysis proves a signal's upper bits never carry
    /// information (always zero / sign copies): the declared width is
    /// wider than the values that flow through it.
    pub const DEAD_UPPER_BITS: DiagCode = DiagCode::new("L0006", "dead-upper-bits");
    /// A comparison whose outcome is decided at compile time by the
    /// operands' known bits/ranges (always true or always false).
    pub const CONST_COMPARISON: DiagCode = DiagCode::new("L0007", "const-comparison");
    /// A register whose value provably never leaves its reset value.
    pub const CONST_REGISTER: DiagCode = DiagCode::new("L0008", "const-register");
    /// A mux whose selector is pinned: one way can never be taken.
    pub const UNREACHABLE_MUX_WAY: DiagCode = DiagCode::new("L0009", "unreachable-mux-way");

    // --- V: schedule / plan invariants ------------------------------------
    /// A computed signal is in no scheduled partition.
    pub const COVER_MISSING: DiagCode = DiagCode::new("V0101", "cover-missing");
    /// A cross-partition edge has no registered wake-up trigger.
    pub const TRIGGER_MISSING: DiagCode = DiagCode::new("V0102", "trigger-missing");
    /// The partition graph (with ordering edges) has a cycle.
    pub const PARTITION_CYCLE: DiagCode = DiagCode::new("V0103", "partition-cycle");
    /// Evaluation order violates dependency order (across partitions or
    /// within a partition's member list).
    pub const TOPO_ORDER: DiagCode = DiagCode::new("V0104", "topo-order");
    /// A node/signal is covered by more than one partition.
    pub const DOUBLE_COVER: DiagCode = DiagCode::new("V0105", "double-cover");
    /// An elided state update could be observed by a later-scheduled
    /// reader within the same cycle.
    pub const UNSAFE_ELISION: DiagCode = DiagCode::new("V0106", "unsafe-elision");
    /// An external input's wake list misses a reader partition.
    pub const INPUT_WAKE_MISSING: DiagCode = DiagCode::new("V0107", "input-wake-missing");
    /// A register/memory change wake list misses a reader partition.
    pub const STATE_WAKE_MISSING: DiagCode = DiagCode::new("V0108", "state-wake-missing");
    /// `sched_of_signal` disagrees with the member lists.
    pub const MEMBER_MISPLACED: DiagCode = DiagCode::new("V0109", "member-misplaced");
    /// A trigger consumer index is outside the schedule.
    pub const CONSUMER_RANGE: DiagCode = DiagCode::new("V0110", "consumer-range");
    /// The node→partition assignment references a dead partition.
    pub const DEAD_PARTITION: DiagCode = DiagCode::new("V0111", "dead-partition");

    // --- B: compiled bytecode invariants ----------------------------------
    /// An `ArgRef` reads outside the arena or its signal's slot.
    pub const ARG_OUT_OF_BOUNDS: DiagCode = DiagCode::new("B0201", "arg-out-of-bounds");
    /// A `DstRef` writes outside the arena or its signal's slot.
    pub const DST_OUT_OF_BOUNDS: DiagCode = DiagCode::new("B0202", "dst-out-of-bounds");
    /// A step's width/signedness disagrees with the netlist signal.
    pub const WIDTH_MISMATCH: DiagCode = DiagCode::new("B0203", "width-mismatch");
    /// A step reads a computed value before the step defining it.
    pub const DEF_BEFORE_USE: DiagCode = DiagCode::new("B0204", "def-before-use");
    /// A `MemRead` step names a memory/port that does not exist.
    pub const MEM_INDEX: DiagCode = DiagCode::new("B0205", "mem-index");
    /// A computed signal was never compiled to a step.
    pub const STEP_MISSING: DiagCode = DiagCode::new("B0206", "step-missing");
    /// A computed signal was compiled more than once.
    pub const STEP_DUPLICATE: DiagCode = DiagCode::new("B0207", "step-duplicate");
    /// Two signals' arena slots overlap.
    pub const LAYOUT_OVERLAP: DiagCode = DiagCode::new("B0208", "layout-overlap");
    /// A step's operand count/order disagrees with its defining op.
    pub const ARG_ARITY: DiagCode = DiagCode::new("B0209", "arg-arity");
    /// A word-specialized (tier-1) instruction decodes differently from
    /// the block item it lowers — wrong opcode, operand offset,
    /// sign-extension shift, mask, or immediate.
    pub const TIER_DECODE: DiagCode = DiagCode::new("B0210", "tier-decode");
    /// A fused trigger write disagrees with the plan's trigger map:
    /// missing or spurious fusion, or a consumer list mismatch.
    pub const TIER_FUSE: DiagCode = DiagCode::new("B0211", "tier-fuse");
    /// Tier-1 control flow is malformed: a jump is backward or out of
    /// bounds, or a conditional-mux diamond has the wrong shape.
    pub const TIER_FLOW: DiagCode = DiagCode::new("B0212", "tier-flow");

    // --- P: profiler wiring invariants ------------------------------------
    /// The profiler's unit/state/input tables have the wrong cardinality
    /// for the plan they claim to describe.
    pub const PROFILE_UNIT_COUNT: DiagCode = DiagCode::new("P0301", "profile-unit-count");
    /// A counter slot attributes work to the wrong unit or state element
    /// (off-by-one or permuted attribution).
    pub const PROFILE_MISATTRIBUTION: DiagCode = DiagCode::new("P0302", "profile-misattribution");
    /// Two distinct wake causes share one counter slot, so their counts
    /// would be conflated.
    pub const PROFILE_SLOT_ALIAS: DiagCode = DiagCode::new("P0303", "profile-slot-alias");
    /// A counter slot indexes outside its table.
    pub const PROFILE_SLOT_RANGE: DiagCode = DiagCode::new("P0304", "profile-slot-range");

    // --- F: profile-feedback invariants -----------------------------------
    /// An activity-guided merge violated a side condition: a cold
    /// endpoint, a size-cap overflow, an illegal (cycle-inducing) pair,
    /// or a final assignment that the audited merge log cannot reproduce.
    pub const ACTIVITY_SIDE_CONDITION: DiagCode = DiagCode::new("F0401", "activity-side-condition");
    /// The per-level thread bins are not an exact cover of the schedule:
    /// a partition is missing, duplicated, or binned at the wrong level.
    pub const BIN_COVER: DiagCode = DiagCode::new("F0402", "bin-cover");
    /// The scheduler's cost table is malformed: wrong cardinality or a
    /// non-positive entry (every partition must carry positive cost or
    /// LPT packing degenerates).
    pub const COST_RANGE: DiagCode = DiagCode::new("F0403", "cost-range");

    // --- R: footprint / race-freedom invariants ----------------------------
    /// The read/write footprint derived from a partition's generic
    /// `Block` bytecode disagrees with the footprint independently
    /// re-derived from its lowered `Tier1Program` instruction stream.
    pub const FOOTPRINT_TIER_MISMATCH: DiagCode = DiagCode::new("R0501", "footprint-tier-mismatch");
    /// Two partitions co-scheduled in the same dependency level write an
    /// overlapping arena word or memory bank (a write/write data race
    /// under the parallel engine).
    pub const FOOTPRINT_WRITE_WRITE: DiagCode = DiagCode::new("R0502", "footprint-write-write");
    /// One partition writes an arena word or memory bank that another
    /// partition in the same dependency level reads (a write/read data
    /// race under the parallel engine).
    pub const FOOTPRINT_WRITE_READ: DiagCode = DiagCode::new("R0503", "footprint-write-read");
    /// A partition's derived write set escapes its declared arena range
    /// (the slots of its member signals plus the out-slots of registers
    /// it legally commits), or falls outside the arena entirely.
    pub const FOOTPRINT_ESCAPE: DiagCode = DiagCode::new("R0504", "footprint-escape");

    // --- S: dependence / dataflow-schedule invariants -----------------------
    /// A true cross-partition dependence (word-level footprint overlap
    /// or a trigger-flag wake) has no covering wait edge in the
    /// synthesized dataflow schedule: the two partitions could run
    /// unordered in the same cycle.
    pub const DEP_EDGE_UNCOVERED: DiagCode = DiagCode::new("S0601", "dep-edge-uncovered");
    /// A partition marked exempt from the serial-phase barrier actually
    /// overlaps the serial phase's footprint (registers committed,
    /// memory banks written, stop/printf inputs read) — the claimed
    /// cycle-boundary overlap would race the serial phase.
    pub const FABRICATED_OVERLAP: DiagCode = DiagCode::new("S0602", "fabricated-overlap");
    /// The dataflow schedule's same-cycle wait graph (wait edges plus
    /// per-worker list order) contains a cycle: the runtime would
    /// deadlock.
    pub const SCHEDULE_CYCLE: DiagCode = DiagCode::new("S0603", "schedule-cycle");
    /// An exempt partition can start cycle `k+1` before a partition it
    /// conflicts with has finished cycle `k`: a required cross-cycle
    /// wait (`waits_prev`) is missing.
    pub const MISSING_CROSS_CYCLE_COVER: DiagCode =
        DiagCode::new("S0604", "missing-cross-cycle-cover");
    /// The worker lists are not an exact, schedule-order-ascending cover
    /// of the partitions, or the schedule's index maps / wait targets
    /// are inconsistent with them.
    pub const WORKER_COVER: DiagCode = DiagCode::new("S0605", "worker-cover");

    // --- M: testbench memory-reference errors -------------------------------
    /// A testbench back-door memory access named a memory that does not
    /// exist in the netlist.
    pub const MEM_REF_UNKNOWN: DiagCode = DiagCode::new("M0001", "unknown-mem-ref");
    /// A testbench back-door memory access addressed at or beyond the
    /// memory's depth.
    pub const MEM_REF_RANGE: DiagCode = DiagCode::new("M0002", "mem-addr-range");

    // --- J: tier-2 JIT emission invariants ----------------------------------
    /// The emitted native stream fails to decode under the emitter's
    /// closed encoding subset, or its prologue/epilogue is malformed.
    pub const JIT_DECODE: DiagCode = DiagCode::new("J0701", "jit-decode");
    /// A decoded arena load/store offset disagrees with the `Inst1`
    /// source's operand/destination slots (the in-arena footprint).
    pub const JIT_OPERAND: DiagCode = DiagCode::new("J0702", "jit-operand");
    /// Compiled control flow is malformed: a branch is backward, lands
    /// outside the stream, or a mux diamond / guard has the wrong shape.
    pub const JIT_FLOW: DiagCode = DiagCode::new("J0703", "jit-flow");
    /// A fused flag-sink site disagrees with the program's consumer
    /// table: a wake store is missing, spurious, or hits the wrong flag.
    pub const JIT_FUSE: DiagCode = DiagCode::new("J0704", "jit-fuse");

    // --- X: batched-lane engine invariants ----------------------------------
    /// The batch engine's stride geometry is inconsistent: lane count
    /// out of mask range, stride ≠ lanes, arena/scratch sized off the
    /// layout, or a routed trigger offset lies outside its partition's
    /// independently derived write footprint.
    pub const BATCH_STRIDE: DiagCode = DiagCode::new("X0801", "batch-stride");
    /// The engine's wake routing (snapshot-compare triggers ∪ fused
    /// instruction ranges, register/memory/input wakes) disagrees with
    /// the consumer sets re-derived from an independently built plan —
    /// a lane's change would wake the wrong partitions.
    pub const BATCH_WAKE_ROUTE: DiagCode = DiagCode::new("X0802", "batch-wake-route");
    /// The lane compaction permutation is not a bijection or its two
    /// directions disagree — a logical lane has been lost or duplicated
    /// by a remap.
    pub const BATCH_LANE_PERM: DiagCode = DiagCode::new("X0803", "batch-lane-perm");
    /// A lane's memory bank shapes disagree with the netlist's memory
    /// declarations.
    pub const BATCH_BANK_SHAPE: DiagCode = DiagCode::new("X0804", "batch-bank-shape");
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: DiagCode,
    pub severity: Severity,
    pub message: String,
    /// Name of the offending signal, when one is identifiable.
    pub signal: Option<String>,
    /// Scheduled partition index involved, when one is identifiable.
    pub partition: Option<usize>,
}

impl Diagnostic {
    /// An error-severity finding.
    pub fn error(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            signal: None,
            partition: None,
        }
    }

    /// A warning-severity finding.
    pub fn warning(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// An info-severity finding.
    pub fn info(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attaches the offending signal name.
    pub fn with_signal(mut self, name: impl Into<String>) -> Diagnostic {
        self.signal = Some(name.into());
        self
    }

    /// Attaches the offending partition index.
    pub fn with_partition(mut self, partition: usize) -> Diagnostic {
        self.partition = Some(partition);
        self
    }
}

/// Lifts the interpreter's structured memory-reference error (defined in
/// `essent-netlist`, which sits below this crate and cannot name
/// [`Diagnostic`]) into a coded finding, so testbench harnesses surface
/// bad back-door accesses with the same machinery as the verifier.
impl From<essent_netlist::interp::MemRefError> for Diagnostic {
    fn from(e: essent_netlist::interp::MemRefError) -> Diagnostic {
        use essent_netlist::interp::MemRefError;
        match &e {
            MemRefError::NoSuchMem { mem } => {
                Diagnostic::error(codes::MEM_REF_UNKNOWN, e.to_string()).with_signal(mem.clone())
            }
            MemRefError::AddrOutOfRange { mem, .. } => {
                Diagnostic::error(codes::MEM_REF_RANGE, e.to_string()).with_signal(mem.clone())
            }
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.code, self.message)?;
        if let Some(s) = &self.signal {
            write!(f, " (signal `{s}`)")?;
        }
        if let Some(p) = self.partition {
            write!(f, " (partition {p})")?;
        }
        Ok(())
    }
}

/// An ordered collection of findings from one checker run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Appends every finding of another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of findings (all severities).
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// `true` when no error-severity finding is present (warnings and
    /// infos do not fail a check).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` when some finding carries `code`.
    pub fn contains(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The distinct codes present, in first-seen order.
    pub fn codes(&self) -> Vec<DiagCode> {
        let mut out: Vec<DiagCode> = Vec::new();
        for d in &self.diagnostics {
            if !out.contains(&d.code) {
                out.push(d.code);
            }
        }
        out
    }

    /// Legacy adapter: `Ok(())` when clean, else the first error's
    /// rendered text — the shape of the pre-diagnostic `validate`
    /// methods. Kept for the deprecated shims.
    pub fn into_legacy_result(self) -> Result<(), String> {
        match self.errors().next() {
            None => Ok(()),
            Some(e) => Err(e.to_string()),
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "clean: no findings");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        writeln!(
            f,
            "{} finding(s): {} error(s), {} warning(s)",
            self.len(),
            self.error_count(),
            warnings
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_stably() {
        assert_eq!(codes::TRIGGER_MISSING.to_string(), "V0102-trigger-missing");
        assert_eq!(codes::COMB_LOOP.to_string(), "L0001-comb-loop");
        assert_eq!(
            codes::ARG_OUT_OF_BOUNDS.to_string(),
            "B0201-arg-out-of-bounds"
        );
    }

    #[test]
    fn mem_ref_errors_lift_to_diagnostics() {
        use essent_netlist::interp::MemRefError;
        let d: Diagnostic = MemRefError::NoSuchMem { mem: "imem".into() }.into();
        assert_eq!(d.code, codes::MEM_REF_UNKNOWN);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.signal.as_deref(), Some("imem"));
        let d: Diagnostic = MemRefError::AddrOutOfRange {
            mem: "m".into(),
            addr: 9,
            depth: 2,
        }
        .into();
        assert_eq!(d.code, codes::MEM_REF_RANGE);
        assert!(d.message.contains('9') && d.message.contains("depth 2"));
    }

    #[test]
    fn report_severity_accounting() {
        let mut r = Report::new();
        assert!(r.is_clean() && r.is_empty());
        r.push(Diagnostic::warning(codes::DEAD_SIGNAL, "unused").with_signal("x"));
        assert!(r.is_clean(), "warnings alone stay clean");
        r.push(
            Diagnostic::error(codes::TRIGGER_MISSING, "missing wake")
                .with_partition(3)
                .with_signal("y"),
        );
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert!(r.contains(codes::TRIGGER_MISSING));
        assert!(!r.contains(codes::COMB_LOOP));
        assert_eq!(r.codes().len(), 2);
        let legacy = r.clone().into_legacy_result();
        assert!(legacy.unwrap_err().contains("V0102-trigger-missing"));
        let rendered = r.to_string();
        assert!(rendered.contains("partition 3") && rendered.contains("`y`"));
    }
}
