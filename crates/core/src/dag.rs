//! A compact adjacency-list view of a directed acyclic graph, the input
//! representation of the partitioner.
//!
//! The partitioner is deliberately independent of the netlist types so it
//! can be property-tested on arbitrary random DAGs; [`DagView::from_netlist`]
//! adapts a design graph.

use essent_netlist::{Netlist, SignalId};

/// Predecessor/successor adjacency lists with deduplicated edges.
#[derive(Debug, Clone, Default)]
pub struct DagView {
    pub preds: Vec<Vec<usize>>,
    pub succs: Vec<Vec<usize>>,
}

impl DagView {
    /// Builds a view from an edge list `(from, to)`.
    ///
    /// Duplicate edges are collapsed. The graph is *not* checked for
    /// acyclicity here; use [`DagView::topo_order`].
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for &(a, b) in edges {
            succs[a].push(b);
            preds[b].push(a);
        }
        for list in preds.iter_mut().chain(succs.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        DagView { preds, succs }
    }

    /// Builds the combinational dependency view of a netlist: one node per
    /// signal, an edge `a -> b` when `b`'s definition reads `a`.
    pub fn from_netlist(netlist: &Netlist) -> Self {
        let n = netlist.signal_count();
        let mut edges = Vec::new();
        for i in 0..n {
            for dep in netlist.deps(SignalId(i as u32)) {
                edges.push((dep.index(), i));
            }
        }
        DagView::from_edges(n, &edges)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.preds.len()
    }

    /// Number of (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Kahn topological order; `None` when the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.node_count();
        let mut indegree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &s in &self.succs[v] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_edges() {
        let dag = DagView::from_edges(3, &[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(dag.edge_count(), 2);
        assert_eq!(dag.succs[0], vec![1]);
        assert_eq!(dag.preds[1], vec![0]);
    }

    #[test]
    fn topo_order_of_diamond() {
        let dag = DagView::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let order = dag.topo_order().unwrap();
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|&v| v == i).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[3] > pos[1] && pos[3] > pos[2]);
    }

    #[test]
    fn detects_cycle() {
        let dag = DagView::from_edges(2, &[(0, 1), (1, 0)]);
        assert!(dag.topo_order().is_none());
    }

    #[test]
    fn from_netlist_mirrors_deps() {
        let src = "circuit T :\n  module T :\n    input a : UInt<4>\n    output o : UInt<4>\n    o <= not(a)\n";
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        let n = Netlist::from_circuit(&lowered).unwrap();
        let dag = DagView::from_netlist(&n);
        assert_eq!(dag.node_count(), n.signal_count());
        assert!(dag.topo_order().is_some());
    }
}
