//! Whole-design static dependence analysis and dataflow (BSP) schedule
//! synthesis — the replacement for the parallel engine's per-level
//! barriers (ROADMAP item 2).
//!
//! [`DepGraph::derive`] extracts the exact inter-partition dependence
//! structure of a [`CcssPlan`] at signal granularity:
//!
//! * **same-cycle edges** — combinational producer → consumer triggers
//!   (always forward in schedule order) plus state-elision anti-edges
//!   (every reader of an elided register or memory must finish the cycle
//!   before the writing partition commits in place);
//! * **serial-phase conflicts** — which partitions touch state the
//!   end-of-cycle serial phase reads or writes (printf/stop sampling,
//!   memory-write fields and banks, non-elided register `next`/`out`
//!   slots) or have their activity flag set by it. Such a partition may
//!   never start cycle `k+1` before cycle `k`'s serial phase completes;
//! * **stop ownership** — which partitions compute stop-condition
//!   signals, so the runtime can publish an early halt bound before any
//!   speculative next-cycle work observes it.
//!
//! [`synthesize_dataflow`] turns the graph into a static
//! [`DataflowSchedule`]: a deterministic earliest-finish-time assignment
//! of partitions to workers driven by the profiled cost model, per-edge
//! wait lists against per-partition `done` cycle counters instead of
//! global level barriers, and a per-partition *exemption* bit marking
//! partitions allowed to start cycle `k+1` while cycle `k`'s tail is
//! still draining (cycle-boundary overlap). The synthesis is trusted by
//! nothing: `essent-verify`'s seventh layer (`S06xx`) re-derives every
//! ordering obligation from the bytecode footprints and proves the
//! schedule covers them, and the `race-sanitizer` feature cross-checks
//! the same claims dynamically.

use crate::plan::CcssPlan;
use essent_netlist::{Netlist, SignalDef};
use std::collections::{BTreeMap, BTreeSet};

/// The inter-partition dependence graph of one plan, in scheduled
/// partition indices.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Same-cycle predecessors of each partition: partitions that must
    /// finish the current cycle before this one evaluates. Sorted,
    /// deduplicated, and always strictly smaller than the node (the
    /// schedule order is a topological order of these edges).
    pub preds: Vec<Vec<u32>>,
    /// Transpose of [`DepGraph::preds`].
    pub succs: Vec<Vec<u32>>,
    /// Partition conflicts with the end-of-cycle serial phase and must
    /// observe `serial_done >= k-1` before evaluating cycle `k`.
    pub serial_conflict: Vec<bool>,
    /// Scheduled partitions computing a stop-condition signal. Empty
    /// when a stop condition is not a computed signal — in that case
    /// every partition is marked serial-conflicting, because no probe
    /// can bound speculation ahead of the halt check.
    pub stop_owners: Vec<u32>,
}

impl DepGraph {
    /// Derives the dependence graph from the plan and the netlist.
    pub fn derive(netlist: &Netlist, plan: &CcssPlan) -> DepGraph {
        let np = plan.partitions.len();
        let mut pred_sets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); np];
        for (sched, part) in plan.partitions.iter().enumerate() {
            for o in &part.outputs {
                for &c in &o.consumers {
                    if (c as usize) > sched {
                        pred_sets[c as usize].insert(sched as u32);
                    }
                }
            }
            // Elision anti-edges: readers run before the in-place commit.
            for &ri in &part.elided_regs {
                for &reader in &plan.reg_plans[ri].wake_on_change {
                    if (reader as usize) != sched {
                        pred_sets[sched].insert(reader);
                    }
                }
            }
            for &wi in &part.elided_writes {
                for &reader in &plan.mem_write_plans[wi].wake_on_change {
                    if (reader as usize) != sched {
                        pred_sets[sched].insert(reader);
                    }
                }
            }
        }

        // --- Serial-phase footprint at signal granularity -------------
        let nsig = netlist.signal_count();
        let mut serial_reads = vec![false; nsig];
        let mut serial_writes = vec![false; nsig];
        let mut serial_wakes = vec![false; np];
        for p in netlist.printfs() {
            serial_reads[p.en.index()] = true;
            for &a in &p.args {
                serial_reads[a.index()] = true;
            }
        }
        let mut stop_owner_set: BTreeSet<u32> = BTreeSet::new();
        let mut exempt_allowed = true;
        for st in netlist.stops() {
            serial_reads[st.en.index()] = true;
            if matches!(
                netlist.signal(st.en).def,
                SignalDef::Op(_) | SignalDef::MemRead { .. }
            ) {
                stop_owner_set.insert(plan.sched_of_signal[st.en.index()]);
            } else {
                // The stop condition is an input, constant, or register
                // output: no partition evaluation recomputes it, so no
                // probe can publish the halt before speculation starts.
                exempt_allowed = false;
            }
        }
        let mut written_banks = vec![false; netlist.mems().len()];
        for (wi, wp) in plan.mem_write_plans.iter().enumerate() {
            if wp.elided {
                // In-place writes are partition accesses, not serial ones
                // (the parallel plan never elides memory writes).
                let _ = wi;
                continue;
            }
            written_banks[wp.mem.index()] = true;
            let port = &netlist.mems()[wp.mem.index()].writers[wp.writer];
            for f in [port.addr, port.en, port.mask, port.data] {
                serial_reads[f.index()] = true;
            }
            for &c in &wp.wake_on_change {
                serial_wakes[c as usize] = true;
            }
        }
        for (ri, rp) in plan.reg_plans.iter().enumerate() {
            if rp.elided {
                continue;
            }
            let reg = &netlist.regs()[ri];
            serial_reads[reg.next.index()] = true;
            serial_writes[reg.out.index()] = true;
            for &c in &rp.wake_on_change {
                serial_wakes[c as usize] = true;
            }
        }

        // --- Per-partition serial conflict ----------------------------
        let mut serial_conflict = vec![false; np];
        for (sched, part) in plan.partitions.iter().enumerate() {
            let mut conflict = !exempt_allowed || serial_wakes[sched];
            for &m in &part.members {
                // Writing a slot the serial phase reads, or one it
                // writes, is a conflict either way.
                conflict = conflict || serial_reads[m.index()] || serial_writes[m.index()];
                for dep in netlist.deps(m) {
                    conflict = conflict || serial_writes[dep.index()];
                }
                if let SignalDef::MemRead { mem, .. } = netlist.signal(m).def {
                    conflict = conflict || written_banks[mem.index()];
                }
            }
            for &ri in &part.elided_regs {
                let reg = &netlist.regs()[ri];
                // The in-place commit reads `next` (a member, covered
                // above) and reads + writes `out`.
                conflict =
                    conflict || serial_reads[reg.out.index()] || serial_writes[reg.out.index()];
            }
            serial_conflict[sched] = conflict;
        }

        let mut preds: Vec<Vec<u32>> = pred_sets
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); np];
        for (p, ps) in preds.iter().enumerate() {
            for &q in ps {
                succs[q as usize].push(p as u32);
            }
        }
        for s in &mut succs {
            s.sort_unstable();
        }
        for p in &mut preds {
            p.sort_unstable();
        }
        DepGraph {
            preds,
            succs,
            serial_conflict,
            stop_owners: stop_owner_set.into_iter().collect(),
        }
    }

    /// Number of same-cycle dependence edges.
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }
}

/// The static dataflow (BSP) schedule the `par_dataflow` engine runs.
///
/// Per cycle `k` (1-based within a run), worker `t` walks
/// `workers[t]` in order; before evaluating partition `p` it waits for
/// `done[q] >= k` for every `q` in `waits_same[p]`, then — if `p` is
/// *exempt* — for `serial_done >= k-2` and `done[q] >= k-1` for every
/// `q` in `waits_prev[p]`, or otherwise for `serial_done >= k-1`. After
/// the eval-or-skip it publishes `done[p] = k`. The main worker closes
/// the cycle by waiting on every worker's tail and running the serial
/// phase, then publishes `serial_done = k`.
#[derive(Debug, Clone)]
pub struct DataflowSchedule {
    /// Per-worker partition lists, each ascending in schedule order (the
    /// `done`-counter prefix argument and deadlock freedom rely on it).
    pub workers: Vec<Vec<u32>>,
    /// Partition → worker index.
    pub worker_of: Vec<u32>,
    /// Partition → position within its worker's list.
    pub pos_of: Vec<u32>,
    /// Same-cycle wait list (targets must reach the current cycle).
    /// Reduced: same-worker predecessors are covered by list order, and
    /// per foreign worker only the latest-positioned predecessor is kept
    /// (`done` counters advance along each worker's list).
    pub waits_same: Vec<Vec<u32>>,
    /// Previous-cycle wait list (targets must reach `k-1`), populated
    /// only for exempt partitions: their same-cycle successors (whose
    /// cycle-`k-1` reads and flag claims the overwrite must not outrun)
    /// plus the stop owners (so a published halt is visible first).
    pub waits_prev: Vec<Vec<u32>>,
    /// Partition may start cycle `k` before cycle `k-1`'s serial phase
    /// completes (bounded to one cycle of skew by `serial_done >= k-2`).
    pub exempt: Vec<bool>,
    /// Mirror of [`DepGraph::stop_owners`] for the runtime's probes.
    pub stop_owners: Vec<u32>,
}

impl DataflowSchedule {
    /// Number of workers the schedule was synthesized for.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of partitions allowed to overlap the previous cycle.
    pub fn exempt_count(&self) -> usize {
        self.exempt.iter().filter(|&&e| e).count()
    }
}

/// Estimated cross-worker handoff cost (counter publish + spin pickup),
/// in the cost model's ~nanosecond units, biasing the placement toward
/// keeping an edge's endpoints on one worker.
const HANDOFF: u64 = 200;

/// Designs whose whole per-cycle work is below this are not worth any
/// cross-worker signaling: the synthesis collapses them to one worker
/// (the same ~microsecond threshold as the LPT serial floor).
const SERIAL_FLOOR: u64 = 3000;

/// Synthesizes the static dataflow schedule: earliest-finish-time list
/// scheduling over the dependence graph in schedule order, using the
/// per-partition `costs` (the parallel engine's [cost model]; pass
/// step-count costs when no profile exists). Deterministic: ties prefer
/// the heaviest predecessor's worker, then the lowest worker index.
///
/// [cost model]: CcssPlan
pub fn synthesize_dataflow(
    plan: &CcssPlan,
    graph: &DepGraph,
    costs: &[u64],
    threads: usize,
) -> DataflowSchedule {
    let np = plan.partitions.len();
    let total: u64 = (0..np)
        .map(|p| costs.get(p).copied().unwrap_or(1).max(1))
        .sum();
    let nworkers = if threads <= 1 || total < SERIAL_FLOOR {
        1
    } else {
        threads.min(np.max(1))
    };

    // --- Earliest-finish-time placement, schedule order ---------------
    let mut worker_of = vec![0u32; np];
    let mut finish = vec![0u64; np];
    let mut avail = vec![0u64; nworkers];
    for p in 0..np {
        let cost = costs.get(p).copied().unwrap_or(1).max(1);
        let pref = graph.preds[p]
            .iter()
            .max_by_key(|&&q| {
                (
                    costs.get(q as usize).copied().unwrap_or(1),
                    std::cmp::Reverse(q),
                )
            })
            .map(|&q| worker_of[q as usize] as usize);
        let mut best: Option<(u64, bool, usize)> = None;
        for (w, &w_avail) in avail.iter().enumerate() {
            let mut start = w_avail;
            for &q in &graph.preds[p] {
                let f = finish[q as usize]
                    + if worker_of[q as usize] as usize == w {
                        0
                    } else {
                        HANDOFF
                    };
                start = start.max(f);
            }
            let key = (start, Some(w) != pref, w);
            if best.is_none_or(|b| (key.0, key.1, key.2) < b) {
                best = Some(key);
            }
        }
        let (start, _, w) = best.expect("nworkers >= 1");
        worker_of[p] = w as u32;
        finish[p] = start + cost;
        avail[w] = finish[p];
    }

    let mut workers: Vec<Vec<u32>> = vec![Vec::new(); nworkers];
    for p in 0..np {
        // Ascending schedule order per worker, by construction.
        workers[worker_of[p] as usize].push(p as u32);
    }
    let mut pos_of = vec![0u32; np];
    for list in &workers {
        for (i, &p) in list.iter().enumerate() {
            pos_of[p as usize] = i as u32;
        }
    }

    // --- Wait lists, reduced ------------------------------------------
    // Same-worker targets are covered by list order (same cycle) or by
    // whole-cycle-before-next-cycle sequencing (previous cycle); per
    // foreign worker only the latest position is needed, because a
    // worker publishes `done` in list order.
    let reduce = |targets: &mut dyn Iterator<Item = u32>, me: usize| -> Vec<u32> {
        let mut best: BTreeMap<u32, u32> = BTreeMap::new();
        for q in targets {
            let w = worker_of[q as usize];
            if w == worker_of[me] {
                continue;
            }
            let cur = best.entry(w).or_insert(q);
            if pos_of[q as usize] > pos_of[*cur as usize] {
                *cur = q;
            }
        }
        let mut out: Vec<u32> = best.into_values().collect();
        out.sort_unstable();
        out
    };

    let exempt: Vec<bool> = (0..np)
        .map(|p| nworkers > 1 && !graph.serial_conflict[p])
        .collect();
    let mut waits_same = Vec::with_capacity(np);
    let mut waits_prev = Vec::with_capacity(np);
    for (p, &ex) in exempt.iter().enumerate() {
        waits_same.push(reduce(&mut graph.preds[p].iter().copied(), p));
        if ex {
            waits_prev.push(reduce(
                &mut graph.succs[p]
                    .iter()
                    .copied()
                    .chain(graph.stop_owners.iter().copied()),
                p,
            ));
        } else {
            waits_prev.push(Vec::new());
        }
    }

    DataflowSchedule {
        workers,
        worker_of,
        pos_of,
        waits_same,
        waits_prev,
        exempt,
        stop_owners: graph.stop_owners.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essent_netlist::Netlist;

    fn netlist_of(src: &str) -> Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    const COUNTER: &str = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";

    #[test]
    fn edges_are_forward_and_deduped() {
        let n = netlist_of(COUNTER);
        let plan = CcssPlan::build(&n, 1);
        let g = DepGraph::derive(&n, &plan);
        for (p, preds) in g.preds.iter().enumerate() {
            for &q in preds {
                assert!((q as usize) < p, "edge {q} -> {p} must be forward");
            }
            let set: BTreeSet<u32> = preds.iter().copied().collect();
            assert_eq!(set.len(), preds.len(), "no duplicate edges");
        }
        assert_eq!(g.edge_count(), g.succs.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn stop_conditions_pin_their_owners_serial() {
        let src = "circuit S :\n  module S :\n    input clock : Clock\n    input reset : UInt<1>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    stop(clock, eq(r, UInt<4>(5)), 9)\n";
        let n = netlist_of(src);
        let plan = CcssPlan::build(&n, 1);
        let g = DepGraph::derive(&n, &plan);
        for &o in &g.stop_owners {
            assert!(
                g.serial_conflict[o as usize],
                "stop owners write serial-read slots and must be serial-conflicting"
            );
        }
    }

    #[test]
    fn synthesis_covers_every_partition_exactly_once() {
        let n = netlist_of(COUNTER);
        let plan = CcssPlan::build(&n, 1);
        let g = DepGraph::derive(&n, &plan);
        let costs = vec![10_000u64; plan.partitions.len()];
        for threads in [1, 2, 4] {
            let ds = synthesize_dataflow(&plan, &g, &costs, threads);
            let mut seen = vec![false; plan.partitions.len()];
            for (w, list) in ds.workers.iter().enumerate() {
                let mut last = None;
                for &p in list {
                    assert!(!seen[p as usize], "partition p{p} scheduled twice");
                    seen[p as usize] = true;
                    assert_eq!(ds.worker_of[p as usize] as usize, w);
                    assert!(last.is_none_or(|l| l < p), "worker list must ascend");
                    last = Some(p);
                }
            }
            assert!(seen.iter().all(|&s| s), "exact cover");
        }
    }

    #[test]
    fn single_worker_schedules_have_no_waits_or_overlap() {
        let n = netlist_of(COUNTER);
        let plan = CcssPlan::build(&n, 1);
        let g = DepGraph::derive(&n, &plan);
        let costs = vec![1u64; plan.partitions.len()];
        // Tiny total cost collapses to one worker even at 4 threads.
        let ds = synthesize_dataflow(&plan, &g, &costs, 4);
        assert_eq!(ds.worker_count(), 1);
        assert!(ds.waits_same.iter().all(Vec::is_empty));
        assert!(ds.waits_prev.iter().all(Vec::is_empty));
        assert_eq!(ds.exempt_count(), 0);
    }
}
