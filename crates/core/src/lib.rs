//! The heart of the ESSENT reproduction: the **novel acyclic graph
//! partitioning algorithm** (paper Section IV) and the **CCSS plan** —
//! the conditional, coarsened, singular, static execution structure the
//! generated simulators run (Section III).
//!
//! # The algorithm
//!
//! Exploiting low activity factors requires *coarsening* the design so
//! change detection can be amortized over 10–100s of elements, while the
//! partitioning must stay **acyclic** so a static schedule can evaluate
//! each partition at most once per cycle (*singular* execution). Even an
//! acyclic design graph can induce cycles between partitions (paper
//! Figure 2), so merges must be checked.
//!
//! The partitioner ([`partition`]):
//! 1. seeds an acyclic partitioning by decomposing the graph into
//!    **maximum fanout-free cones** ([`mffc`]), crawling up from sinks;
//! 2. merges **single-parent partitions** into their parents (always
//!    legal — no external path can exist);
//! 3. merges **small partitions with small siblings**, prioritizing the
//!    number of partition-level cut edges a merge eliminates;
//! 4. merges remaining **small partitions with any sibling**, maximizing
//!    the fraction of shared input signals.
//!
//! When measured activity is available ([`partition::ActivityPrior`],
//! projected back from a profiled run), a fourth **profile-guided**
//! phase ([`partition::activity_merge`]) additionally merges
//! directly-connected partitions that are both almost always active —
//! their trigger traffic never buys a skip — under the same legality
//! test, and returns a merge log `essent-verify` replays (F0401).
//!
//! Every candidate merge is validated by the external-path test extended
//! from Herrmann et al. ([`legality`]): *partitions A and B can be merged
//! iff there is no path between them through nodes outside both*.
//!
//! The single coarsening parameter `C_p` (a partition is "small" below
//! `C_p` nodes) is **design-insensitive** — the paper's Figure 6 shows one
//! host-tuned value (8) works across designs, which `essent-bench`'s
//! `figure6` binary reproduces.
//!
//! # From partitioning to execution
//!
//! [`plan::CcssPlan`] turns a partitioning plus a netlist into everything
//! a simulator needs: a topological partition schedule, per-partition
//! member evaluation order, per-output consumer trigger lists (the push-
//! direction OR-reduction activation of paper Figure 1), and the state-
//! element update elision analysis of Section III-B1 (registers and
//! memories updated in place when every reader is scheduled no later than
//! the writer, with immediate next-cycle wakeups).
//!
//! # Examples
//!
//! ```
//! use essent_core::{dag::DagView, partition::partition};
//!
//! // A diamond: 0 -> {1, 2} -> 3.
//! let dag = DagView::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
//! let parts = partition(&dag, 8);
//! parts.validate(&dag).expect("partitioning invariants hold");
//! // Small graphs collapse into one partition at C_p = 8.
//! assert_eq!(parts.live_partitions().count(), 1);
//! ```

pub mod dag;
pub mod depgraph;
pub mod diag;
pub mod legality;
pub mod mffc;
pub mod partition;
pub mod plan;

pub use dag::DagView;
pub use depgraph::{synthesize_dataflow, DataflowSchedule, DepGraph};
pub use diag::{DiagCode, Diagnostic, Report, Severity};
pub use partition::{
    activity_merge, partition, partition_with_prior, ActivityMergeParams, ActivityMergeRecord,
    ActivityPrior, PartitionStats, Partitioning,
};
pub use plan::{plan_levels, CcssPlan};
