//! The merge-based acyclic partitioner (paper Section IV, Figure 4).
//!
//! Starting from the MFFC seed decomposition, three greedy merge phases
//! eliminate small partitions (those below the coarsening threshold
//! `C_p`), which "contain too few components to fully amortize the cut
//! edges":
//!
//! * **Phase A** — absorb single-parent partitions into their parent
//!   (always legal: a partition fed by exactly one other partition can
//!   have no external path to or from it);
//! * **Phase B** — merge small partitions with small *siblings*
//!   (partitions sharing a parent), prioritizing merges by the number of
//!   partition-level cut edges they eliminate;
//! * **Phase C** — merge remaining small partitions with any sibling,
//!   maximizing the fraction of shared input signals.
//!
//! Every candidate merge in phases B and C passes the external-path
//! legality test ([`crate::legality`]), which guarantees the partition
//! graph stays acyclic — the property that makes a singular static
//! schedule possible.
//!
//! A fourth, **profile-guided** phase ([`activity_merge`]) runs after
//! the structural phases when an [`ActivityPrior`] carries measured
//! per-node activity: directly-connected partitions that are *both*
//! almost always active merge (their trigger traffic is pure overhead —
//! the consumer re-evaluates every cycle anyway), while rarely-co-active
//! pairs are left apart so skipping keeps paying. The phase proves the
//! same side conditions as B and C (external-path legality, hence
//! acyclicity) plus its own hot-threshold and size-cap conditions, and
//! returns a replayable merge log that `essent-verify` audits (F0401).

use crate::dag::DagView;
use crate::diag::{codes, Diagnostic, Report};
use crate::legality;
use crate::mffc;
use std::collections::BTreeSet;
use std::fmt;

/// An assignment of every node to exactly one partition, with the
/// partition-level graph maintained incrementally through merges.
#[derive(Debug, Clone)]
pub struct Partitioning {
    part_of: Vec<usize>,
    members: Vec<Vec<usize>>,
    /// Partition-level adjacency (derived from node edges that cross
    /// partitions). `BTreeSet` keeps iteration deterministic.
    pub(crate) preds: Vec<BTreeSet<usize>>,
    pub(crate) succs: Vec<BTreeSet<usize>>,
    alive: Vec<bool>,
}

impl Partitioning {
    /// Builds a partitioning from a node→partition assignment; the
    /// partition graph is derived lazily by [`Partitioning::attach`].
    pub fn from_assignment(part_of: Vec<usize>, partitions: usize) -> Self {
        let mut members = vec![Vec::new(); partitions];
        for (node, &p) in part_of.iter().enumerate() {
            members[p].push(node);
        }
        Partitioning {
            part_of,
            members,
            preds: vec![BTreeSet::new(); partitions],
            succs: vec![BTreeSet::new(); partitions],
            alive: vec![true; partitions],
        }
    }

    /// Derives the partition-level adjacency from the node graph. Must be
    /// called before merging.
    pub fn attach(&mut self, dag: &DagView) {
        for set in self.preds.iter_mut().chain(self.succs.iter_mut()) {
            set.clear();
        }
        for node in 0..dag.node_count() {
            let p = self.part_of[node];
            for &succ in &dag.succs[node] {
                let q = self.part_of[succ];
                if p != q {
                    self.succs[p].insert(q);
                    self.preds[q].insert(p);
                }
            }
        }
    }

    /// The partition of a node.
    pub fn part_of(&self, node: usize) -> usize {
        self.part_of[node]
    }

    /// The node→partition assignment slice.
    pub fn assignment(&self) -> &[usize] {
        &self.part_of
    }

    /// The member nodes of a partition (unsorted).
    pub fn members(&self, partition: usize) -> &[usize] {
        &self.members[partition]
    }

    /// Iterator over partition ids that still exist.
    pub fn live_partitions(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.members.len()).filter(|&p| self.alive[p])
    }

    /// `true` if the partition still exists.
    pub fn is_alive(&self, partition: usize) -> bool {
        self.alive[partition]
    }

    /// The partition-level successors of a live partition, ascending.
    pub fn succs_of(&self, partition: usize) -> Vec<usize> {
        self.succs[partition].iter().copied().collect()
    }

    /// The partition-level predecessors of a live partition, ascending.
    pub fn preds_of(&self, partition: usize) -> Vec<usize> {
        self.preds[partition].iter().copied().collect()
    }

    /// Merges partition `b` into partition `a`, updating the assignment
    /// and the partition graph.
    ///
    /// The caller is responsible for having checked
    /// [`legality::merge_legal`]; this method only performs the move.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either partition is dead.
    pub fn merge(&mut self, a: usize, b: usize) {
        assert!(a != b, "cannot merge a partition with itself");
        assert!(self.alive[a] && self.alive[b], "merge of dead partition");
        let moved = std::mem::take(&mut self.members[b]);
        for &node in &moved {
            self.part_of[node] = a;
        }
        self.members[a].extend(moved);
        self.alive[b] = false;

        // Rewire partition adjacency: b's neighbors become a's, with the
        // internal a<->b edges consumed.
        let b_preds = std::mem::take(&mut self.preds[b]);
        let b_succs = std::mem::take(&mut self.succs[b]);
        for p in b_preds {
            self.succs[p].remove(&b);
            if p != a {
                self.succs[p].insert(a);
                self.preds[a].insert(p);
            }
        }
        for s in b_succs {
            self.preds[s].remove(&b);
            if s != a {
                self.preds[s].insert(a);
                self.succs[a].insert(s);
            }
        }
        self.preds[a].remove(&b);
        self.succs[a].remove(&b);
        self.preds[a].remove(&a);
        self.succs[a].remove(&a);
    }

    /// Number of partition-level cut edges.
    pub fn cut_edges(&self) -> usize {
        self.live_partitions().map(|p| self.succs[p].len()).sum()
    }

    /// Checks the two partitioning invariants on which CCSS execution
    /// rests: every node in exactly one live partition (*exact cover* —
    /// partitioning, not clustering), and the partition graph *acyclic*
    /// (singular schedules exist).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    ///
    /// Thin shim over [`Partitioning::check`]; prefer the structured
    /// [`Report`] it returns.
    pub fn validate(&self, dag: &DagView) -> Result<(), String> {
        self.check(dag).into_legacy_result()
    }

    /// Structured-diagnostic form of [`Partitioning::validate`]: reports
    /// every violation (not just the first) with stable codes.
    pub fn check(&self, dag: &DagView) -> Report {
        let mut report = Report::new();
        // Exact cover.
        let mut seen = vec![false; dag.node_count()];
        for p in self.live_partitions() {
            for &node in &self.members[p] {
                if seen[node] {
                    report.push(
                        Diagnostic::error(
                            codes::DOUBLE_COVER,
                            format!("node {node} appears in two partitions"),
                        )
                        .with_partition(p),
                    );
                }
                seen[node] = true;
                if self.part_of[node] != p {
                    report.push(
                        Diagnostic::error(
                            codes::MEMBER_MISPLACED,
                            format!(
                                "node {node} assignment ({}) disagrees with members of {p}",
                                self.part_of[node]
                            ),
                        )
                        .with_partition(p),
                    );
                }
            }
        }
        for (missing, _) in seen.iter().enumerate().filter(|(_, &s)| !s) {
            report.push(Diagnostic::error(
                codes::COVER_MISSING,
                format!("node {missing} not in any partition"),
            ));
        }
        // Acyclicity of the *recomputed* partition graph (do not trust the
        // incrementally maintained one).
        let mut fresh = self.clone();
        fresh.attach(dag);
        let live: Vec<usize> = fresh.live_partitions().collect();
        let index_of = |p: usize| live.binary_search(&p).expect("live partition");
        let mut indegree = vec![0usize; live.len()];
        for &p in &live {
            for &s in &fresh.succs[p] {
                indegree[index_of(s)] += 1;
            }
        }
        let mut queue: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&p| indegree[index_of(p)] == 0)
            .collect();
        let mut done = 0;
        let mut head = 0;
        while head < queue.len() {
            let p = queue[head];
            head += 1;
            done += 1;
            for &s in &fresh.succs[p] {
                let i = index_of(s);
                indegree[i] -= 1;
                if indegree[i] == 0 {
                    queue.push(s);
                }
            }
        }
        if done != live.len() {
            report.push(Diagnostic::error(
                codes::PARTITION_CYCLE,
                format!(
                    "partition graph has a cycle ({} of {} partitions unreachable by Kahn's sort)",
                    live.len() - done,
                    live.len()
                ),
            ));
        }
        report
    }

    /// Summary statistics.
    pub fn stats(&self) -> PartitionStats {
        let sizes: Vec<usize> = self
            .live_partitions()
            .map(|p| self.members[p].len())
            .collect();
        let count = sizes.len();
        let largest = sizes.iter().copied().max().unwrap_or(0);
        let nodes: usize = sizes.iter().sum();
        PartitionStats {
            partitions: count,
            nodes,
            largest,
            mean_size: if count == 0 {
                0.0
            } else {
                nodes as f64 / count as f64
            },
            cut_edges: self.cut_edges(),
        }
    }
}

/// Summary of a partitioning, for reports and the Figure 7 harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionStats {
    pub partitions: usize,
    pub nodes: usize,
    pub largest: usize,
    pub mean_size: f64,
    pub cut_edges: usize,
}

impl fmt::Display for PartitionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} partitions over {} nodes (mean {:.1}, largest {}), {} cut edges",
            self.partitions, self.nodes, self.mean_size, self.largest, self.cut_edges
        )
    }
}

/// Runs the full partitioner: MFFC seed, then merge phases A, B, C.
///
/// `c_p` is the paper's coarsening threshold: partitions smaller than
/// `c_p` nodes are "small" and the merge phases try to eliminate them.
/// The paper selects `C_p = 8` as the host-tuned, design-insensitive
/// default (Figure 6).
pub fn partition(dag: &DagView, c_p: usize) -> Partitioning {
    let mut parts = mffc::mffc_decompose(dag);
    parts.attach(dag);
    merge_single_parent(&mut parts);
    merge_small_siblings(&mut parts, dag, c_p);
    merge_small_into_any_sibling(&mut parts, dag, c_p);
    parts
}

/// Phase A (Figure 4A): a partition whose inputs all come from a single
/// parent partition merges into that parent. Such merges can never induce
/// a cycle: an external path into the child would require a second
/// parent, and a path from the child back to the parent would already be
/// a cycle.
pub fn merge_single_parent(parts: &mut Partitioning) {
    loop {
        let mut merged_any = false;
        let candidates: Vec<usize> = parts.live_partitions().collect();
        for p in candidates {
            if !parts.is_alive(p) {
                continue;
            }
            if parts.preds[p].len() == 1 {
                let parent = *parts.preds[p].iter().next().expect("single parent");
                if parts.is_alive(parent) {
                    parts.merge(parent, p);
                    merged_any = true;
                }
            }
        }
        if !merged_any {
            return;
        }
    }
}

/// Phase B (Figure 4B): merge small partitions with small siblings.
///
/// Candidates are pairs of small partitions sharing at least one parent;
/// each round scores every candidate by the number of partition-level cut
/// edges the merge would eliminate (shared parents + direct edges, which
/// "simultaneously maximizes the number of partitions in a merge as well
/// as the number of common ancestors"), merges greedily in score order,
/// and repeats until no legal merge remains.
pub fn merge_small_siblings(parts: &mut Partitioning, dag: &DagView, c_p: usize) {
    let _ = dag;
    loop {
        let mut candidates = sibling_pairs(parts, c_p, true);
        if candidates.is_empty() {
            return;
        }
        // Highest score first; ties broken by ids for determinism.
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut merged_any = false;
        for (_score, a, b) in candidates {
            if !parts.is_alive(a) || !parts.is_alive(b) {
                continue;
            }
            // Both must still be small: merges grow partitions.
            if parts.members(a).len() >= c_p || parts.members(b).len() >= c_p {
                continue;
            }
            if legality::merge_legal(parts, a, b) {
                parts.merge(a, b);
                merged_any = true;
            }
        }
        if !merged_any {
            return;
        }
    }
}

/// Phase C (Figure 4C): remaining small partitions merge with *any*
/// sibling (small or large), choosing the sibling with the largest
/// fraction of shared input partitions (the paper's "fraction of input
/// signals in common" at the granularity the partition graph retains).
pub fn merge_small_into_any_sibling(parts: &mut Partitioning, dag: &DagView, c_p: usize) {
    let _ = dag;
    loop {
        let mut merged_any = false;
        let smalls: Vec<usize> = parts
            .live_partitions()
            .filter(|&p| parts.members(p).len() < c_p)
            .collect();
        for p in smalls {
            if !parts.is_alive(p) || parts.members(p).len() >= c_p {
                continue;
            }
            // Candidate siblings: co-children of any of p's parents.
            let mut best: Option<(f64, usize)> = None;
            let parents: Vec<usize> = parts.preds[p].iter().copied().collect();
            let p_inputs: BTreeSet<usize> = parents.iter().copied().collect();
            let mut seen = BTreeSet::new();
            for &parent in &parents {
                for &sib in parts.succs[parent].iter() {
                    if sib == p || !parts.is_alive(sib) || !seen.insert(sib) {
                        continue;
                    }
                    let sib_inputs: BTreeSet<usize> = parts.preds[sib].iter().copied().collect();
                    let common = p_inputs.intersection(&sib_inputs).count();
                    let union = p_inputs.union(&sib_inputs).count();
                    let score = if union == 0 {
                        0.0
                    } else {
                        common as f64 / union as f64
                    };
                    match best {
                        Some((best_score, best_sib)) => {
                            if score > best_score || (score == best_score && sib < best_sib) {
                                best = Some((score, sib));
                            }
                        }
                        None => best = Some((score, sib)),
                    }
                }
            }
            if let Some((_score, sib)) = best {
                if legality::merge_legal(parts, sib, p) {
                    parts.merge(sib, p);
                    merged_any = true;
                }
            }
        }
        if !merged_any {
            return;
        }
    }
}

/// Measured (or assumed) per-node activity, the input to the
/// profile-guided merge phase and the parallel level scheduler.
///
/// Rates and costs are indexed by extended-DAG node so the prior
/// survives repartitioning: a profile taken against one plan's schedule
/// units is projected down to the member nodes, and any later
/// partitioning re-aggregates it per partition. `NaN` marks an unknown
/// rate and `0.0` an unknown cost — a prior built by
/// [`ActivityPrior::neutral`] therefore drives no merges at all and
/// leaves cost-model consumers on their static fallback.
#[derive(Debug, Clone)]
pub struct ActivityPrior {
    /// Per node: fraction of cycles the node's owning schedule unit was
    /// evaluated (`evals / (evals + skips)`), in `[0, 1]`; `NaN` =
    /// unknown.
    rate: Vec<f64>,
    /// Per node: estimated eval ticks attributed to the node over the
    /// whole profiled run (the owning unit's estimated time split across
    /// its members); `0.0` = unknown.
    cost: Vec<f64>,
}

impl ActivityPrior {
    /// A prior with no information: all rates unknown, all costs zero.
    pub fn neutral(nodes: usize) -> ActivityPrior {
        ActivityPrior {
            rate: vec![f64::NAN; nodes],
            cost: vec![0.0; nodes],
        }
    }

    /// A prior asserting the same activity rate for every node (the
    /// adversarial all-zero / all-hot corners use this).
    pub fn uniform(nodes: usize, rate: f64) -> ActivityPrior {
        ActivityPrior {
            rate: vec![rate; nodes],
            cost: vec![0.0; nodes],
        }
    }

    /// Number of nodes the prior describes.
    pub fn len(&self) -> usize {
        self.rate.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rate.is_empty()
    }

    /// `true` when no node carries a known rate or cost — feedback with
    /// such a prior is a guaranteed no-op on the partitioning.
    pub fn is_neutral(&self) -> bool {
        self.rate.iter().all(|r| r.is_nan()) && self.cost.iter().all(|&c| c == 0.0)
    }

    /// Records measured activity for one node.
    pub fn set_node(&mut self, node: usize, rate: f64, cost: f64) {
        self.rate[node] = rate;
        self.cost[node] = cost;
    }

    /// The recorded rate of a node (`NaN` if unknown).
    pub fn node_rate(&self, node: usize) -> f64 {
        self.rate[node]
    }

    /// The recorded cost of a node (`0.0` if unknown).
    pub fn node_cost(&self, node: usize) -> f64 {
        self.cost[node]
    }

    /// Aggregate activity rate of a partition: the mean over members
    /// with a known rate, `NaN` when no member has one. An unknown
    /// member does not dilute the mean — a partition is only as hot as
    /// what was actually measured of it.
    pub fn part_rate(&self, parts: &Partitioning, partition: usize) -> f64 {
        let mut sum = 0.0;
        let mut known = 0usize;
        for &node in parts.members(partition) {
            let r = self.rate.get(node).copied().unwrap_or(f64::NAN);
            if !r.is_nan() {
                sum += r;
                known += 1;
            }
        }
        if known == 0 {
            f64::NAN
        } else {
            sum / known as f64
        }
    }

    /// Aggregate estimated cost of a partition (sum of member costs).
    pub fn part_cost(&self, parts: &Partitioning, partition: usize) -> f64 {
        parts
            .members(partition)
            .iter()
            .map(|&n| self.cost.get(n).copied().unwrap_or(0.0))
            .sum()
    }
}

/// Tuning knobs for [`activity_merge`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityMergeParams {
    /// Both endpoints of a merge must show at least this activity rate.
    /// Merging anything cooler trades away skippability for nothing.
    pub hot_threshold: f64,
    /// Merged partitions may not exceed this many nodes — always-active
    /// regions must not snowball into one straggler that serializes the
    /// parallel schedule.
    pub max_size: usize,
}

impl ActivityMergeParams {
    /// Defaults scaled from the coarsening threshold: hot means "active
    /// ≥ 90% of cycles", and merged partitions stay within `8 × C_p`
    /// nodes.
    pub fn for_cp(c_p: usize) -> ActivityMergeParams {
        ActivityMergeParams {
            hot_threshold: 0.9,
            max_size: 8 * c_p.max(1),
        }
    }
}

/// One applied activity merge, in application order. The log is the
/// verifier's replay script: starting from the structural partitioning,
/// re-applying each record must reproduce the final assignment with
/// every side condition holding at its point in the sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityMergeRecord {
    /// The surviving partition.
    pub kept: usize,
    /// The partition merged into `kept` (dead afterwards).
    pub absorbed: usize,
    /// Aggregate rates of the two partitions at merge time.
    pub rate_kept: f64,
    pub rate_absorbed: f64,
}

/// Phase D: merge directly-connected partition pairs whose measured
/// activity shows *correlated, near-permanent* activation.
///
/// When producer and consumer are both hot (rate ≥
/// [`ActivityMergeParams::hot_threshold`]), the cut edge between them is
/// pure overhead — the output snapshot, compare, and flag store fire
/// every cycle and never buy a skip — so the pair merges, subject to the
/// same external-path legality test the structural phases use plus a
/// size cap. Pairs with an unknown or cold endpoint are left alone:
/// `NaN` rates (the neutral prior) match no threshold, making the phase
/// a guaranteed no-op without profile data.
///
/// Candidates are scored by `(min endpoint rate, eliminated cut edges)`
/// and applied greedily until a fixpoint, mirroring phase B's loop
/// structure. Returns the applied merges in order.
pub fn activity_merge(
    parts: &mut Partitioning,
    prior: &ActivityPrior,
    params: &ActivityMergeParams,
) -> Vec<ActivityMergeRecord> {
    let mut log = Vec::new();
    loop {
        // Enumerate hot directly-connected pairs. Rates are recomputed
        // each round: a merge changes the aggregate of the survivor.
        // `NaN` rates (unknown) fail the `hot` test by construction.
        let hot = |r: f64| !r.is_nan() && r >= params.hot_threshold;
        let mut candidates: Vec<(f64, usize, usize, usize)> = Vec::new();
        for p in parts.live_partitions() {
            let rate_p = prior.part_rate(parts, p);
            if !hot(rate_p) {
                continue;
            }
            for &q in parts.succs[p].iter() {
                if !parts.is_alive(q) {
                    continue;
                }
                let rate_q = prior.part_rate(parts, q);
                if !hot(rate_q) {
                    continue;
                }
                if parts.members(p).len() + parts.members(q).len() > params.max_size {
                    continue;
                }
                let shared = parts.preds[p].intersection(&parts.preds[q]).count();
                let direct = 1 + parts.succs[q].contains(&p) as usize;
                candidates.push((rate_p.min(rate_q), shared + direct, p, q));
            }
        }
        if candidates.is_empty() {
            return log;
        }
        // Hottest pair first, then most cut edges eliminated; ids break
        // ties so the phase is deterministic.
        candidates.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then(b.1.cmp(&a.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });
        let mut merged_any = false;
        for (_rate, _score, a, b) in candidates {
            if !parts.is_alive(a) || !parts.is_alive(b) {
                continue;
            }
            // Re-check the side conditions: earlier merges this round may
            // have grown or cooled either endpoint.
            let rate_a = prior.part_rate(parts, a);
            let rate_b = prior.part_rate(parts, b);
            if !hot(rate_a) || !hot(rate_b) {
                continue;
            }
            if parts.members(a).len() + parts.members(b).len() > params.max_size {
                continue;
            }
            if legality::merge_legal(parts, a, b) {
                parts.merge(a, b);
                log.push(ActivityMergeRecord {
                    kept: a,
                    absorbed: b,
                    rate_kept: rate_a,
                    rate_absorbed: rate_b,
                });
                merged_any = true;
            }
        }
        if !merged_any {
            return log;
        }
    }
}

/// Runs the full partitioner including the profile-guided phase D, and
/// returns the replayable merge log alongside the partitioning.
///
/// With a neutral prior the result is identical to [`partition`] and the
/// log is empty.
pub fn partition_with_prior(
    dag: &DagView,
    c_p: usize,
    prior: &ActivityPrior,
    params: &ActivityMergeParams,
) -> (Partitioning, Vec<ActivityMergeRecord>) {
    let mut parts = partition(dag, c_p);
    let log = activity_merge(&mut parts, prior, params);
    (parts, log)
}

/// Enumerates sibling pairs `(score, a, b)` where both are small (and,
/// when `both_small`, both below `c_p`). Score = shared parents + direct
/// partition edges between the two.
fn sibling_pairs(parts: &Partitioning, c_p: usize, both_small: bool) -> Vec<(usize, usize, usize)> {
    let mut pairs = Vec::new();
    let mut seen = BTreeSet::new();
    for parent in parts.live_partitions() {
        let children: Vec<usize> = parts.succs[parent]
            .iter()
            .copied()
            .filter(|&c| parts.is_alive(c) && (!both_small || parts.members(c).len() < c_p))
            .collect();
        for i in 0..children.len() {
            for j in (i + 1)..children.len() {
                let (a, b) = (children[i].min(children[j]), children[i].max(children[j]));
                if !seen.insert((a, b)) {
                    continue;
                }
                let shared = parts.preds[a].intersection(&parts.preds[b]).count();
                let direct =
                    parts.succs[a].contains(&b) as usize + parts.succs[b].contains(&a) as usize;
                pairs.push((shared + direct, a, b));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 graph: A -> B, A -> C, B -> D, C -> D with the
    /// cyclic grouping {A, D} / {B, C} forbidden.
    #[test]
    fn figure2_cyclic_grouping_is_rejected() {
        let dag = DagView::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        // Force the bad assignment {A,D}, {B,C}:
        let mut bad = Partitioning::from_assignment(vec![0, 1, 1, 0], 2);
        assert!(bad.validate(&dag).is_err());
        bad.attach(&dag);
        // And the alternate {A,B}, {C,D} is fine:
        let good = Partitioning::from_assignment(vec![0, 0, 1, 1], 2);
        assert!(good.validate(&dag).is_ok());
    }

    #[test]
    fn phase_a_absorbs_chains() {
        // Two chains joining: 0->1->4, 2->3->4; MFFC makes {0,1},{2,3},{4}?
        // Actually 1 and 3 both feed 4 so 4's cone pulls them in; build a
        // shape where single-parent absorption matters:
        // 0 -> 1, 0 -> 2 (siblings), 1 -> 3, 3 is a sink; 2 is a sink.
        let dag = DagView::from_edges(4, &[(0, 1), (0, 2), (1, 3)]);
        let mut parts = mffc::mffc_decompose(&dag);
        parts.attach(&dag);
        // cones: {1,3} rooted at 3, {2}, {0}.
        assert_eq!(parts.live_partitions().count(), 3);
        merge_single_parent(&mut parts);
        parts.validate(&dag).unwrap();
        // {1,3} and {2} each have the single parent {0}: all merge.
        assert_eq!(parts.live_partitions().count(), 1);
    }

    #[test]
    fn full_partitioner_collapses_small_graph() {
        let dag = DagView::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let parts = partition(&dag, 8);
        parts.validate(&dag).unwrap();
        assert_eq!(parts.live_partitions().count(), 1);
    }

    #[test]
    fn cp_one_disables_small_merging() {
        // With c_p = 1 nothing is "small", so only phase A runs.
        let dag = DagView::from_edges(5, &[(0, 2), (1, 2), (0, 3), (1, 3), (2, 4), (3, 4)]);
        let parts = partition(&dag, 1);
        parts.validate(&dag).unwrap();
        let merged = partition(&dag, 16);
        assert!(merged.live_partitions().count() <= parts.live_partitions().count());
    }

    #[test]
    fn merge_updates_adjacency() {
        let dag = DagView::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut parts = Partitioning::from_assignment(vec![0, 1, 2, 3], 4);
        parts.attach(&dag);
        parts.merge(1, 2);
        assert!(parts.succs[0].contains(&1));
        assert!(parts.succs[1].contains(&3));
        assert!(!parts.is_alive(2));
        assert_eq!(parts.part_of(2), 1);
        parts.validate(&dag).unwrap();
    }

    /// A chain of three singleton partitions, all hot: phase D should
    /// collapse the hot pairs while legality keeps the result acyclic.
    #[test]
    fn activity_merge_collapses_hot_chain() {
        let dag = DagView::from_edges(3, &[(0, 1), (1, 2)]);
        let mut parts = Partitioning::from_assignment(vec![0, 1, 2], 3);
        parts.attach(&dag);
        let prior = ActivityPrior::uniform(3, 1.0);
        let params = ActivityMergeParams {
            hot_threshold: 0.9,
            max_size: 8,
        };
        let log = activity_merge(&mut parts, &prior, &params);
        assert_eq!(parts.live_partitions().count(), 1);
        assert_eq!(log.len(), 2);
        parts.validate(&dag).unwrap();
        for rec in &log {
            assert!(rec.rate_kept >= params.hot_threshold);
            assert!(rec.rate_absorbed >= params.hot_threshold);
        }
    }

    /// A cold endpoint blocks the merge: only the hot-hot edge goes.
    #[test]
    fn activity_merge_keeps_cold_partitions_apart() {
        let dag = DagView::from_edges(3, &[(0, 1), (1, 2)]);
        let mut parts = Partitioning::from_assignment(vec![0, 1, 2], 3);
        parts.attach(&dag);
        let mut prior = ActivityPrior::neutral(3);
        prior.set_node(0, 1.0, 0.0);
        prior.set_node(1, 0.95, 0.0);
        prior.set_node(2, 0.05, 0.0); // rarely active: must stay skippable
        let log = activity_merge(&mut parts, &prior, &ActivityMergeParams::for_cp(8));
        assert_eq!(log.len(), 1);
        assert_eq!((log[0].kept, log[0].absorbed), (0, 1));
        assert!(parts.is_alive(2), "cold partition must survive");
        parts.validate(&dag).unwrap();
    }

    /// Neutral and all-zero priors drive no merges at all.
    #[test]
    fn activity_merge_noop_without_heat() {
        let dag = DagView::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        for prior in [ActivityPrior::neutral(4), ActivityPrior::uniform(4, 0.0)] {
            let (parts, log) =
                partition_with_prior(&dag, 1, &prior, &ActivityMergeParams::for_cp(1));
            assert!(log.is_empty());
            assert_eq!(parts.assignment(), partition(&dag, 1).assignment());
        }
        assert!(ActivityPrior::neutral(4).is_neutral());
        assert!(!ActivityPrior::uniform(4, 0.0).is_neutral());
    }

    /// The size cap stops hot regions from snowballing.
    #[test]
    fn activity_merge_respects_size_cap() {
        // A hot chain of 4 singletons with max_size 2: only disjoint
        // pairs may merge, never a partition of 3+.
        let dag = DagView::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut parts = Partitioning::from_assignment(vec![0, 1, 2, 3], 4);
        parts.attach(&dag);
        let prior = ActivityPrior::uniform(4, 1.0);
        let params = ActivityMergeParams {
            hot_threshold: 0.5,
            max_size: 2,
        };
        activity_merge(&mut parts, &prior, &params);
        for p in parts.live_partitions() {
            assert!(parts.members(p).len() <= 2);
        }
        parts.validate(&dag).unwrap();
    }

    /// Figure 2 shape, everything hot: phase D must not take the
    /// cycle-inducing merge even though the activity score wants it.
    #[test]
    fn activity_merge_refuses_illegal_pairs() {
        let dag = DagView::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut parts = Partitioning::from_assignment(vec![0, 1, 2, 3], 4);
        parts.attach(&dag);
        let prior = ActivityPrior::uniform(4, 1.0);
        let params = ActivityMergeParams {
            hot_threshold: 0.5,
            max_size: 4,
        };
        activity_merge(&mut parts, &prior, &params);
        parts.validate(&dag).unwrap();
    }

    /// Partition aggregates: unknown members don't dilute the mean.
    #[test]
    fn prior_aggregation_ignores_unknowns() {
        let dag = DagView::from_edges(3, &[(0, 1), (0, 2)]);
        let mut parts = Partitioning::from_assignment(vec![0, 0, 0], 1);
        parts.attach(&dag);
        let mut prior = ActivityPrior::neutral(3);
        prior.set_node(0, 0.8, 10.0);
        prior.set_node(2, 0.4, 6.0);
        assert!((prior.part_rate(&parts, 0) - 0.6).abs() < 1e-12);
        assert!((prior.part_cost(&parts, 0) - 16.0).abs() < 1e-12);
        assert!(ActivityPrior::neutral(2).part_rate(&parts, 0).is_nan());
    }

    #[test]
    fn stats_are_coherent() {
        let dag = DagView::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let parts = partition(&dag, 2);
        let stats = parts.stats();
        assert_eq!(stats.nodes, 4);
        assert!(stats.partitions >= 1);
        assert!(stats.largest <= 4);
    }
}
