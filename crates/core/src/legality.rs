//! The merge-legality test (paper Section IV, extending Herrmann et al.):
//!
//! > Partitions A and B can be merged if and only if there is no external
//! > path in either direction between them.
//!
//! An *external path* traverses partitions other than A and B. If such a
//! path exists, merging A and B turns it into a cycle in the partition
//! graph, destroying the singular-schedule guarantee. Direct edges
//! between A and B are safe — they are consumed inside the merged
//! partition.

use crate::partition::Partitioning;

/// Returns `true` when merging `a` and `b` keeps the partition graph
/// acyclic.
///
/// Runs a forward search from each side's successors (excluding the other
/// side) looking for the other side; because the partition graph is
/// acyclic, at most one direction can have a path, but both are checked
/// since the pair may have no direct edge.
pub fn merge_legal(parts: &Partitioning, a: usize, b: usize) -> bool {
    debug_assert!(a != b);
    !indirect_path(parts, a, b) && !indirect_path(parts, b, a)
}

/// `true` if a path `from -> X -> ... -> to` exists with every
/// intermediate partition distinct from both endpoints.
fn indirect_path(parts: &Partitioning, from: usize, to: usize) -> bool {
    let mut visited = vec![false; parts.succs.len()];
    let mut stack: Vec<usize> = parts.succs[from]
        .iter()
        .copied()
        .filter(|&s| s != to && s != from)
        .collect();
    for &s in &stack {
        visited[s] = true;
    }
    while let Some(p) = stack.pop() {
        for &s in parts.succs[p].iter() {
            if s == to {
                return true;
            }
            if s != from && !visited[s] {
                visited[s] = true;
                stack.push(s);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagView;

    fn singletons(dag: &DagView) -> Partitioning {
        let n = dag.node_count();
        let mut parts = Partitioning::from_assignment((0..n).collect(), n);
        parts.attach(dag);
        parts
    }

    /// Figure 2: merging {A, D} (ids 0, 3) is illegal because of the
    /// external paths through B and C; merging {A, B} is legal.
    #[test]
    fn figure2_example() {
        let dag = DagView::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let parts = singletons(&dag);
        assert!(!merge_legal(&parts, 0, 3));
        assert!(merge_legal(&parts, 0, 1));
        assert!(merge_legal(&parts, 2, 3));
        // B and C are parallel: no path in either direction, mergeable.
        assert!(merge_legal(&parts, 1, 2));
    }

    #[test]
    fn direct_edge_is_not_external() {
        let dag = DagView::from_edges(2, &[(0, 1)]);
        let parts = singletons(&dag);
        assert!(merge_legal(&parts, 0, 1));
    }

    #[test]
    fn two_hop_path_blocks_merge() {
        // 0 -> 1 -> 2 plus direct 0 -> 2: the path through 1 is external.
        let dag = DagView::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let parts = singletons(&dag);
        assert!(!merge_legal(&parts, 0, 2));
        assert!(merge_legal(&parts, 0, 1));
        assert!(merge_legal(&parts, 1, 2));
    }

    #[test]
    fn long_external_path_detected() {
        // 0 -> 1 -> 2 -> 3 -> 4 and 0 -> 4.
        let dag = DagView::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let parts = singletons(&dag);
        assert!(!merge_legal(&parts, 0, 4));
        // Endpoints of a disjoint region are fine.
        assert!(merge_legal(&parts, 1, 2));
    }

    #[test]
    fn merging_legal_pair_keeps_validity_merging_illegal_breaks_it() {
        let dag = DagView::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        // Legal merge:
        let mut ok = singletons(&dag);
        assert!(merge_legal(&ok, 0, 1));
        ok.merge(0, 1);
        assert!(ok.validate(&dag).is_ok());
        // Illegal merge really would create a cycle:
        let mut bad = singletons(&dag);
        bad.merge(0, 3);
        assert!(bad.validate(&dag).is_err());
    }

    #[test]
    fn unrelated_components_always_merge() {
        let dag = DagView::from_edges(4, &[(0, 1), (2, 3)]);
        let parts = singletons(&dag);
        assert!(merge_legal(&parts, 0, 2));
        assert!(merge_legal(&parts, 1, 3));
        assert!(merge_legal(&parts, 0, 3));
    }
}
