//! Property tests for the acyclic partitioner: on arbitrary random DAGs,
//! every stage must preserve the two invariants CCSS execution rests on —
//! exact cover (each node in exactly one partition, no replication) and
//! an acyclic partition graph (a singular static schedule exists).

use essent_core::dag::DagView;
use essent_core::mffc::mffc_decompose;
use essent_core::partition::{
    merge_single_parent, merge_small_into_any_sibling, merge_small_siblings, partition,
};
use proptest::prelude::*;

/// Random DAG: edges only go from lower to higher node index, so the
/// graph is acyclic by construction but otherwise arbitrary.
fn arb_dag(max_nodes: usize, density: f64) -> impl Strategy<Value = DagView> {
    (2..max_nodes).prop_flat_map(move |n| {
        let all_pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .collect();
        let take = ((all_pairs.len() as f64) * density).ceil() as usize;
        proptest::sample::subsequence(all_pairs, 0..=take.max(1))
            .prop_map(move |edges| DagView::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn mffc_decomposition_is_valid(dag in arb_dag(40, 0.15)) {
        let parts = mffc_decompose(&dag);
        prop_assert!(parts.validate(&dag).is_ok());
    }

    /// Figure 3's containment property: if u is in the cone rooted at v,
    /// all of u's successors are in the same cone or are the root.
    #[test]
    fn mffc_fanout_free_property(dag in arb_dag(40, 0.2)) {
        let parts = mffc_decompose(&dag);
        for p in parts.live_partitions() {
            let members = parts.members(p);
            // Exactly one root: the unique member all of whose successors
            // leave the partition.
            let roots: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&v| dag.succs[v].iter().all(|&s| parts.part_of(s) != p))
                .collect();
            prop_assert_eq!(roots.len(), 1);
            let root = roots[0];
            // Every non-root member's successors stay inside the cone.
            for &v in members {
                if v == root {
                    continue;
                }
                for &s in &dag.succs[v] {
                    prop_assert_eq!(parts.part_of(s), p,
                        "member {}'s fanout {} escapes its cone", v, s);
                }
            }
        }
    }

    #[test]
    fn each_merge_phase_preserves_invariants(dag in arb_dag(35, 0.2), cp in 1usize..12) {
        let mut parts = mffc_decompose(&dag);
        parts.attach(&dag);
        merge_single_parent(&mut parts);
        prop_assert!(parts.validate(&dag).is_ok(), "after phase A");
        merge_small_siblings(&mut parts, &dag, cp);
        prop_assert!(parts.validate(&dag).is_ok(), "after phase B");
        merge_small_into_any_sibling(&mut parts, &dag, cp);
        prop_assert!(parts.validate(&dag).is_ok(), "after phase C");
    }

    #[test]
    fn full_partitioner_valid_across_cp(dag in arb_dag(50, 0.12), cp in 1usize..32) {
        let parts = partition(&dag, cp);
        prop_assert!(parts.validate(&dag).is_ok());
    }

    /// Larger C_p never produces (strictly) more partitions on the same
    /// graph than C_p = 1, and the assignment always covers all nodes.
    #[test]
    fn coarsening_monotonicity_in_partition_count(dag in arb_dag(40, 0.15)) {
        let fine = partition(&dag, 1).live_partitions().count();
        let coarse = partition(&dag, 64).live_partitions().count();
        prop_assert!(coarse <= fine, "coarse {} vs fine {}", coarse, fine);
    }

    /// The incremental partition-graph maintenance must agree with a
    /// from-scratch recomputation after arbitrary merging activity.
    #[test]
    fn incremental_adjacency_matches_recompute(dag in arb_dag(30, 0.25), cp in 2usize..10) {
        let parts = partition(&dag, cp);
        let mut fresh = parts.clone();
        fresh.attach(&dag);
        for p in parts.live_partitions() {
            let inc: Vec<usize> = parts.succs_of(p);
            let rec: Vec<usize> = fresh.succs_of(p);
            prop_assert_eq!(inc, rec, "partition {} adjacency drifted", p);
        }
    }
}
