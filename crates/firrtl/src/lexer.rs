//! Indentation-aware lexer for FIRRTL source text.
//!
//! FIRRTL delimits blocks by indentation (like Python), so the lexer emits
//! synthetic [`Token::Indent`] / [`Token::Dedent`] / [`Token::Newline`]
//! tokens in addition to the ordinary word and punctuation tokens. Comments
//! start with `;` and run to end of line. Source-locator annotations
//! (`@[file line:col]`) become [`Token::Info`] tokens.

use std::fmt;

/// A single lexical token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    pub token: Token,
    pub line: u32,
}

/// The token kinds of the FIRRTL surface syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (FIRRTL keywords are context-sensitive, so the
    /// lexer does not distinguish them).
    Ident(String),
    /// Unsigned decimal integer literal token (width parameters, indices).
    Int(u64),
    /// Quoted string literal, unescaped.
    Str(String),
    /// `@[...]` source locator, contents verbatim.
    Info(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    LAngle,
    RAngle,
    Colon,
    Comma,
    Period,
    Equal,
    /// `<=` connect operator.
    Connect,
    /// `<-` partial connect operator.
    PartialConnect,
    /// `=>` arrow (reset specifications).
    FatArrow,
    Newline,
    Indent,
    Dedent,
    /// End of input (after closing any open indents).
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Int(v) => write!(f, "integer {v}"),
            Token::Str(s) => write!(f, "string {s:?}"),
            Token::Info(_) => write!(f, "info annotation"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::LBrace => write!(f, "`{{`"),
            Token::RBrace => write!(f, "`}}`"),
            Token::LAngle => write!(f, "`<`"),
            Token::RAngle => write!(f, "`>`"),
            Token::Colon => write!(f, "`:`"),
            Token::Comma => write!(f, "`,`"),
            Token::Period => write!(f, "`.`"),
            Token::Equal => write!(f, "`=`"),
            Token::Connect => write!(f, "`<=`"),
            Token::PartialConnect => write!(f, "`<-`"),
            Token::FatArrow => write!(f, "`=>`"),
            Token::Newline => write!(f, "end of line"),
            Token::Indent => write!(f, "indent"),
            Token::Dedent => write!(f, "dedent"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// Error produced when the source contains a character or indentation
/// structure the lexer cannot process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes FIRRTL source, producing a flat token stream terminated by
/// [`Token::Eof`].
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings, inconsistent dedents, or
/// characters outside the FIRRTL syntax.
pub fn lex(source: &str) -> Result<Vec<SpannedToken>, LexError> {
    let mut tokens = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    let mut line_no: u32 = 0;

    for raw_line in source.lines() {
        line_no += 1;
        // Strip comments (respecting none inside strings is unnecessary:
        // FIRRTL strings never span `;` in practice, but be careful anyway).
        let line = strip_comment(raw_line);
        let trimmed = line.trim_end();
        let indent = leading_spaces(trimmed);
        if trimmed.trim().is_empty() {
            continue; // blank or comment-only line: no tokens, no indent change
        }

        // Indentation bookkeeping.
        let current = *indents.last().expect("indent stack is never empty");
        if indent > current {
            indents.push(indent);
            tokens.push(SpannedToken {
                token: Token::Indent,
                line: line_no,
            });
        } else if indent < current {
            while *indents.last().unwrap() > indent {
                indents.pop();
                tokens.push(SpannedToken {
                    token: Token::Dedent,
                    line: line_no,
                });
            }
            if *indents.last().unwrap() != indent {
                return Err(LexError {
                    message: format!("inconsistent indentation ({indent} spaces)"),
                    line: line_no,
                });
            }
        }

        lex_line(&trimmed[indent..], line_no, &mut tokens)?;
        tokens.push(SpannedToken {
            token: Token::Newline,
            line: line_no,
        });
    }

    while indents.len() > 1 {
        indents.pop();
        tokens.push(SpannedToken {
            token: Token::Dedent,
            line: line_no,
        });
    }
    tokens.push(SpannedToken {
        token: Token::Eof,
        line: line_no,
    });
    Ok(tokens)
}

/// Removes a trailing `;` comment, ignoring semicolons inside strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' if !prev_backslash => in_str = !in_str,
            ';' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = ch == '\\' && !prev_backslash;
    }
    line
}

fn leading_spaces(line: &str) -> usize {
    line.chars().take_while(|&c| c == ' ').count()
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    // `-` appears inside mem-block keys (`data-type`, `read-latency`);
    // FIRRTL has no infix minus so this is unambiguous.
    c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '-'
}

/// Lexes the body of a single line (indentation already consumed).
fn lex_line(line: &str, line_no: u32, tokens: &mut Vec<SpannedToken>) -> Result<(), LexError> {
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    let push = |tokens: &mut Vec<SpannedToken>, token: Token| {
        tokens.push(SpannedToken {
            token,
            line: line_no,
        })
    };
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' => i += 1,
            '(' => {
                push(tokens, Token::LParen);
                i += 1;
            }
            ')' => {
                push(tokens, Token::RParen);
                i += 1;
            }
            '[' => {
                push(tokens, Token::LBracket);
                i += 1;
            }
            ']' => {
                push(tokens, Token::RBracket);
                i += 1;
            }
            '{' => {
                push(tokens, Token::LBrace);
                i += 1;
            }
            '}' => {
                push(tokens, Token::RBrace);
                i += 1;
            }
            '>' => {
                push(tokens, Token::RAngle);
                i += 1;
            }
            ':' => {
                push(tokens, Token::Colon);
                i += 1;
            }
            ',' => {
                push(tokens, Token::Comma);
                i += 1;
            }
            '.' => {
                push(tokens, Token::Period);
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    push(tokens, Token::Connect);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == '-' {
                    push(tokens, Token::PartialConnect);
                    i += 2;
                } else {
                    push(tokens, Token::LAngle);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    push(tokens, Token::FatArrow);
                    i += 2;
                } else {
                    push(tokens, Token::Equal);
                    i += 1;
                }
            }
            '@' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '[' {
                    let start = i + 2;
                    let mut j = start;
                    while j < bytes.len() && bytes[j] != ']' {
                        j += 1;
                    }
                    if j == bytes.len() {
                        return Err(LexError {
                            message: "unterminated info annotation".into(),
                            line: line_no,
                        });
                    }
                    let text: String = bytes[start..j].iter().collect();
                    push(tokens, Token::Info(text));
                    i = j + 1;
                } else {
                    return Err(LexError {
                        message: "stray `@`".into(),
                        line: line_no,
                    });
                }
            }
            '"' => {
                let mut j = i + 1;
                let mut out = String::new();
                let mut closed = false;
                while j < bytes.len() {
                    match bytes[j] {
                        '\\' if j + 1 < bytes.len() => {
                            out.push(match bytes[j + 1] {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                '\'' => '\'',
                                other => other,
                            });
                            j += 2;
                        }
                        '"' => {
                            closed = true;
                            j += 1;
                            break;
                        }
                        ch => {
                            out.push(ch);
                            j += 1;
                        }
                    }
                }
                if !closed {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        line: line_no,
                    });
                }
                push(tokens, Token::Str(out));
                i = j;
            }
            '-' => {
                // Negative integer (appears in SInt literal bodies written
                // without quotes, e.g. `SInt<4>(-3)`). Lex as ident "-N" is
                // awkward; emit as a string-ish ident the parser handles.
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(LexError {
                        message: "stray `-`".into(),
                        line: line_no,
                    });
                }
                let text: String = bytes[i..j].iter().collect();
                push(tokens, Token::Ident(text));
                i = j;
            }
            d if d.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                let value = text.parse::<u64>().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    line: line_no,
                })?;
                push(tokens, Token::Int(value));
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i;
                while j < bytes.len() && is_ident_char(bytes[j]) {
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                push(tokens, Token::Ident(text));
                i = j;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line: line_no,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_simple_line() {
        let toks = kinds("circuit Top :");
        assert_eq!(
            toks,
            vec![
                Token::Ident("circuit".into()),
                Token::Ident("Top".into()),
                Token::Colon,
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn emits_indent_dedent() {
        let src = "a :\n  b\n  c\nd\n";
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Colon,
                Token::Newline,
                Token::Indent,
                Token::Ident("b".into()),
                Token::Newline,
                Token::Ident("c".into()),
                Token::Newline,
                Token::Dedent,
                Token::Ident("d".into()),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn closes_indents_at_eof() {
        let toks = kinds("a :\n  b :\n    c\n");
        let dedents = toks.iter().filter(|t| **t == Token::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn strips_comments_and_blank_lines() {
        let toks = kinds("a ; comment\n\n; full comment line\nb\n");
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Newline,
                Token::Ident("b".into()),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let toks = kinds("x <= y\nz <- w\nr => s\np < q > t = u");
        assert!(toks.contains(&Token::Connect));
        assert!(toks.contains(&Token::PartialConnect));
        assert!(toks.contains(&Token::FatArrow));
        assert!(toks.contains(&Token::LAngle));
        assert!(toks.contains(&Token::RAngle));
        assert!(toks.contains(&Token::Equal));
    }

    #[test]
    fn lexes_strings_and_info() {
        let toks = kinds("printf(clk, en, \"x=%d\\n\", x) @[file.scala 10:4]");
        assert!(toks.contains(&Token::Str("x=%d\n".into())));
        assert!(toks.contains(&Token::Info("file.scala 10:4".into())));
    }

    #[test]
    fn semicolon_inside_string_is_not_comment() {
        let toks = kinds("printf(c, e, \"a;b\")");
        assert!(toks.contains(&Token::Str("a;b".into())));
    }

    #[test]
    fn negative_int_in_literal_body() {
        let toks = kinds("SInt<4>(-3)");
        assert!(toks.contains(&Token::Ident("-3".into())));
    }

    #[test]
    fn rejects_inconsistent_dedent() {
        let err = lex("a :\n    b\n  c\n").unwrap_err();
        assert!(err.message.contains("indentation"));
        assert_eq!(err.line, 3);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("x = \"abc").is_err());
    }

    #[test]
    fn rejects_stray_chars() {
        assert!(lex("a # b").is_err());
        assert!(lex("a @ b").is_err());
        assert!(lex("a - b").is_err());
    }

    #[test]
    fn hyphenated_mem_keys_lex_as_idents() {
        let toks = kinds("read-latency => 0");
        assert_eq!(toks[0], Token::Ident("read-latency".into()));
        assert_eq!(toks[1], Token::FatArrow);
        assert_eq!(toks[2], Token::Int(0));
    }
}
