//! Pretty-printer emitting parseable FIRRTL text from the AST.
//!
//! `parse(print(circuit))` reproduces the same AST (modulo info strings),
//! which the round-trip tests in this module rely on; the design
//! generators in `essent-designs` also use it to materialize circuits.

use crate::ast::*;
use std::fmt::Write;

/// Renders a whole circuit as FIRRTL source text.
pub fn print_circuit(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "circuit {} :{}", circuit.name, circuit.info);
    for module in &circuit.modules {
        print_module(module, &mut out);
    }
    out
}

fn print_module(module: &Module, out: &mut String) {
    let _ = writeln!(out, "  module {} :{}", module.name, module.info);
    for port in &module.ports {
        let _ = writeln!(
            out,
            "    {} {} : {}{}",
            port.direction, port.name, port.ty, port.info
        );
    }
    for stmt in &module.body {
        print_stmt(stmt, 0, out);
    }
}

fn indent(depth: usize) -> String {
    "  ".repeat(depth + 2)
}

fn print_stmt(stmt: &Stmt, depth: usize, out: &mut String) {
    let pad = indent(depth);
    match stmt {
        Stmt::Wire { name, ty, info } => {
            let _ = writeln!(out, "{pad}wire {name} : {ty}{info}");
        }
        Stmt::Reg {
            name,
            ty,
            clock,
            reset,
            info,
        } => {
            let clk = print_expr(clock);
            match reset {
                Some((cond, init)) => {
                    let _ = writeln!(
                        out,
                        "{pad}reg {name} : {ty}, {clk} with : (reset => ({}, {})){info}",
                        print_expr(cond),
                        print_expr(init)
                    );
                }
                None => {
                    let _ = writeln!(out, "{pad}reg {name} : {ty}, {clk}{info}");
                }
            }
        }
        Stmt::Mem(m) => {
            let _ = writeln!(out, "{pad}mem {} :{}", m.name, m.info);
            let inner = indent(depth + 1);
            let _ = writeln!(out, "{inner}data-type => {}", m.data_type);
            let _ = writeln!(out, "{inner}depth => {}", m.depth);
            let _ = writeln!(out, "{inner}read-latency => {}", m.read_latency);
            let _ = writeln!(out, "{inner}write-latency => {}", m.write_latency);
            for r in &m.readers {
                let _ = writeln!(out, "{inner}reader => {r}");
            }
            for w in &m.writers {
                let _ = writeln!(out, "{inner}writer => {w}");
            }
            for rw in &m.readwriters {
                let _ = writeln!(out, "{inner}readwriter => {rw}");
            }
            let _ = writeln!(out, "{inner}read-under-write => {}", m.read_under_write);
        }
        Stmt::Inst { name, module, info } => {
            let _ = writeln!(out, "{pad}inst {name} of {module}{info}");
        }
        Stmt::Node { name, value, info } => {
            let _ = writeln!(out, "{pad}node {name} = {}{info}", print_expr(value));
        }
        Stmt::Connect { loc, value, info } => {
            let _ = writeln!(
                out,
                "{pad}{} <= {}{info}",
                print_expr(loc),
                print_expr(value)
            );
        }
        Stmt::Invalidate { loc, info } => {
            let _ = writeln!(out, "{pad}{} is invalid{info}", print_expr(loc));
        }
        Stmt::When {
            cond,
            then_body,
            else_body,
            info,
        } => {
            let _ = writeln!(out, "{pad}when {} :{info}", print_expr(cond));
            for s in then_body {
                print_stmt(s, depth + 1, out);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}else :");
                for s in else_body {
                    print_stmt(s, depth + 1, out);
                }
            }
        }
        Stmt::Stop {
            name,
            clock,
            en,
            code,
            info,
        } => {
            let suffix = if name.is_empty() {
                String::new()
            } else {
                format!(" : {name}")
            };
            let _ = writeln!(
                out,
                "{pad}stop({}, {}, {code}){suffix}{info}",
                print_expr(clock),
                print_expr(en)
            );
        }
        Stmt::Printf {
            name,
            clock,
            en,
            fmt,
            args,
            info,
        } => {
            let suffix = if name.is_empty() {
                String::new()
            } else {
                format!(" : {name}")
            };
            let mut arg_text = String::new();
            for a in args {
                let _ = write!(arg_text, ", {}", print_expr(a));
            }
            let _ = writeln!(
                out,
                "{pad}printf({}, {}, \"{}\"{arg_text}){suffix}{info}",
                print_expr(clock),
                print_expr(en),
                escape(fmt)
            );
        }
        Stmt::Skip => {
            let _ = writeln!(out, "{pad}skip");
        }
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '\n' => vec!['\\', 'n'],
            '\t' => vec!['\\', 't'],
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            other => vec![other],
        })
        .collect()
}

/// Renders one expression.
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Ref(name) => name.clone(),
        Expr::SubField(base, field) => format!("{}.{field}", print_expr(base)),
        Expr::SubIndex(base, index) => format!("{}[{index}]", print_expr(base)),
        Expr::SubAccess(base, index) => {
            format!("{}[{}]", print_expr(base), print_expr(index))
        }
        Expr::UIntLit { value, width } => format!("UInt<{width}>(\"h{value:x}\")"),
        Expr::SIntLit { value, width } => {
            // Print signed literals via their numeric value when small, so
            // the text stays human-readable.
            match value.to_i64() {
                Some(v) => format!("SInt<{width}>({v})"),
                None => format!("SInt<{width}>(\"h{value:x}\")"),
            }
        }
        Expr::Mux(sel, high, low) => format!(
            "mux({}, {}, {})",
            print_expr(sel),
            print_expr(high),
            print_expr(low)
        ),
        Expr::ValidIf(cond, value) => {
            format!("validif({}, {})", print_expr(cond), print_expr(value))
        }
        Expr::Prim { op, args, params } => {
            let mut parts: Vec<String> = args.iter().map(print_expr).collect();
            parts.extend(params.iter().map(|p| p.to_string()));
            format!("{}({})", op.name(), parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Normalizes by stripping info annotations, which the printer carries
    /// but tests don't construct.
    fn roundtrip(src: &str) {
        let c1 = parse(src).expect("first parse");
        let printed = print_circuit(&c1);
        let c2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(c1, c2, "printed text:\n{printed}");
    }

    #[test]
    fn roundtrip_counter() {
        roundtrip("circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(\"h0\")))\n    r <= tail(add(r, UInt<8>(\"h1\")), 1)\n    q <= r\n");
    }

    #[test]
    fn roundtrip_when_and_aggregates() {
        roundtrip("circuit W :\n  module W :\n    input io : { sel : UInt<1>, flip out : UInt<4>, v : UInt<4>[2] }\n    io.out <= UInt<4>(\"h0\")\n    when io.sel :\n      io.out <= io.v[0]\n    else :\n      io.out <= io.v[1]\n");
    }

    #[test]
    fn roundtrip_mem_and_instances() {
        roundtrip("circuit O :\n  module I :\n    input clock : Clock\n    input a : UInt<8>\n    output b : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 4\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n      read-under-write => undefined\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(\"h1\")\n    m.r.addr <= bits(a, 1, 0)\n    m.w.clk <= clock\n    m.w.en <= UInt<1>(\"h0\")\n    m.w.addr <= bits(a, 1, 0)\n    m.w.data <= a\n    m.w.mask <= UInt<1>(\"h1\")\n    b <= m.r.data\n  module O :\n    input clock : Clock\n    input x : UInt<8>\n    output y : UInt<8>\n    inst u of I\n    u.clock <= clock\n    u.a <= x\n    y <= u.b\n");
    }

    #[test]
    fn roundtrip_stop_printf_validif() {
        roundtrip("circuit S :\n  module S :\n    input clock : Clock\n    input en : UInt<1>\n    input x : SInt<9>\n    output o : SInt<9>\n    node g = validif(en, x)\n    o <= g\n    stop(clock, en, 1) : halt\n    printf(clock, en, \"x=%d\\n\", x) : log\n");
    }

    #[test]
    fn roundtrip_signed_literals() {
        roundtrip("circuit L :\n  module L :\n    output o : SInt<8>\n    node a = SInt<8>(-100)\n    o <= a\n");
    }
}
