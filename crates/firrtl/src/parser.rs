//! Recursive-descent parser for the FIRRTL surface syntax.
//!
//! Consumes the token stream produced by [`crate::lexer`] and builds the
//! [`crate::ast`] representation. The grammar covered is the FIRRTL 1.x
//! subset described in the crate documentation: everything Chisel-era
//! emitters produce for synchronous digital designs, minus analog/attach,
//! extmodules, and CHIRRTL (`cmem`/`smem`) sugar.

use crate::ast::*;
use crate::lexer::{lex, LexError, SpannedToken, Token};
use essent_bits::Bits;
use std::fmt;

/// Error produced when the source is not well-formed FIRRTL (or uses a
/// construct outside the supported subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parses FIRRTL source text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, unknown constructs, or a
/// missing top module.
///
/// # Examples
///
/// ```
/// let src = "circuit Top :\n  module Top :\n    input a : UInt<1>\n    output b : UInt<1>\n    b <= a\n";
/// let circuit = essent_firrtl::parse(src)?;
/// assert_eq!(circuit.name, "Top");
/// # Ok::<(), essent_firrtl::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Circuit, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.parse_circuit()
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].token
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {want}, found {}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            // Integers may serve as identifiers in lowered names (rare);
            // reject for clarity.
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Token::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {other}")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    fn expect_int(&mut self) -> Result<u64, ParseError> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(v)
            }
            other => self.err(format!("expected integer, found {other}")),
        }
    }

    /// Consumes an optional trailing info annotation and the newline.
    fn finish_line(&mut self) -> Result<Info, ParseError> {
        let info = self.take_info();
        self.expect(&Token::Newline)?;
        Ok(info)
    }

    fn take_info(&mut self) -> Info {
        if let Token::Info(text) = self.peek().clone() {
            self.bump();
            Info(text)
        } else {
            Info::default()
        }
    }

    fn parse_circuit(&mut self) -> Result<Circuit, ParseError> {
        // Tolerate a version header line ("FIRRTL version x.y.z").
        if self.at_keyword("FIRRTL") {
            while *self.peek() != Token::Newline {
                self.bump();
            }
            self.bump();
        }
        self.expect_keyword("circuit")?;
        let name = self.expect_ident()?;
        self.expect(&Token::Colon)?;
        let info = self.finish_line()?;
        self.expect(&Token::Indent)?;
        let mut modules = Vec::new();
        while !matches!(self.peek(), Token::Dedent | Token::Eof) {
            modules.push(self.parse_module()?);
        }
        if *self.peek() == Token::Dedent {
            self.bump();
        }
        let circuit = Circuit {
            name,
            modules,
            info,
        };
        if circuit.module(&circuit.name).is_none() {
            return Err(ParseError {
                message: format!("circuit `{}` has no module of that name", circuit.name),
                line: 1,
            });
        }
        Ok(circuit)
    }

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        if self.at_keyword("extmodule") {
            return self.err("extmodule is outside the supported subset");
        }
        self.expect_keyword("module")?;
        let name = self.expect_ident()?;
        self.expect(&Token::Colon)?;
        let info = self.finish_line()?;
        self.expect(&Token::Indent)?;
        let mut ports = Vec::new();
        while self.at_keyword("input") || self.at_keyword("output") {
            ports.push(self.parse_port()?);
        }
        let body = self.parse_block_body()?;
        Ok(Module {
            name,
            ports,
            body,
            info,
        })
    }

    fn parse_port(&mut self) -> Result<Port, ParseError> {
        let direction = if self.at_keyword("input") {
            self.bump();
            Direction::Input
        } else {
            self.expect_keyword("output")?;
            Direction::Output
        };
        let name = self.expect_ident()?;
        self.expect(&Token::Colon)?;
        let ty = self.parse_type()?;
        let info = self.finish_line()?;
        Ok(Port {
            name,
            direction,
            ty,
            info,
        })
    }

    /// Parses statements until the enclosing block's Dedent (consumed).
    fn parse_block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        loop {
            match self.peek() {
                Token::Dedent => {
                    self.bump();
                    return Ok(body);
                }
                Token::Eof => return Ok(body),
                _ => body.push(self.parse_stmt()?),
            }
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Token::Ident(kw) => match kw.as_str() {
                "wire" => self.parse_wire(),
                "reg" => self.parse_reg(),
                "mem" => self.parse_mem(),
                "inst" => self.parse_inst(),
                "node" => self.parse_node(),
                "when" => self.parse_when(),
                "stop" => self.parse_stop(),
                "printf" => self.parse_printf(),
                "skip" => {
                    self.bump();
                    self.finish_line()?;
                    Ok(Stmt::Skip)
                }
                "cmem" | "smem" | "infer" | "read" | "write" => {
                    self.err(format!("CHIRRTL construct `{kw}` is not supported; run the design through the firrtl compiler's LowerCHIRRTL first"))
                }
                "attach" => self.err("analog `attach` is not supported"),
                _ => self.parse_connect_like(),
            },
            _ => self.parse_connect_like(),
        }
    }

    fn parse_wire(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("wire")?;
        let name = self.expect_ident()?;
        self.expect(&Token::Colon)?;
        let ty = self.parse_type()?;
        let info = self.finish_line()?;
        Ok(Stmt::Wire { name, ty, info })
    }

    fn parse_reg(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("reg")?;
        let name = self.expect_ident()?;
        self.expect(&Token::Colon)?;
        let ty = self.parse_type()?;
        self.expect(&Token::Comma)?;
        let clock = self.parse_expr()?;
        let mut reset = None;
        if self.at_keyword("with") {
            self.bump();
            self.expect(&Token::Colon)?;
            // Two forms: inline `(reset => (cond, init))` or an indented
            // block containing `reset => (cond, init)`.
            if *self.peek() == Token::LParen {
                self.bump();
                reset = Some(self.parse_reset_spec()?);
                self.expect(&Token::RParen)?;
                let info = self.finish_line()?;
                return Ok(Stmt::Reg {
                    name,
                    ty,
                    clock,
                    reset,
                    info,
                });
            } else {
                let info = self.finish_line()?;
                self.expect(&Token::Indent)?;
                reset = Some(self.parse_reset_spec()?);
                self.expect(&Token::Newline)?;
                self.expect(&Token::Dedent)?;
                return Ok(Stmt::Reg {
                    name,
                    ty,
                    clock,
                    reset,
                    info,
                });
            }
        }
        let info = self.finish_line()?;
        Ok(Stmt::Reg {
            name,
            ty,
            clock,
            reset,
            info,
        })
    }

    fn parse_reset_spec(&mut self) -> Result<(Expr, Expr), ParseError> {
        self.expect_keyword("reset")?;
        self.expect(&Token::FatArrow)?;
        self.expect(&Token::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&Token::Comma)?;
        let init = self.parse_expr()?;
        self.expect(&Token::RParen)?;
        Ok((cond, init))
    }

    fn parse_mem(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("mem")?;
        let name = self.expect_ident()?;
        self.expect(&Token::Colon)?;
        let info = self.finish_line()?;
        self.expect(&Token::Indent)?;
        let mut decl = MemDecl {
            name,
            data_type: Type::UInt(Some(1)),
            depth: 0,
            read_latency: 0,
            write_latency: 1,
            readers: Vec::new(),
            writers: Vec::new(),
            readwriters: Vec::new(),
            read_under_write: "undefined".into(),
            info,
        };
        let mut saw_type = false;
        let mut saw_depth = false;
        while *self.peek() != Token::Dedent {
            let key = self.expect_ident()?;
            self.expect(&Token::FatArrow)?;
            match key.as_str() {
                "data-type" => {
                    decl.data_type = self.parse_type()?;
                    saw_type = true;
                }
                "depth" => {
                    decl.depth = self.expect_int()? as usize;
                    saw_depth = true;
                }
                "read-latency" => decl.read_latency = self.expect_int()? as u32,
                "write-latency" => decl.write_latency = self.expect_int()? as u32,
                "reader" => {
                    decl.readers.push(self.expect_ident()?);
                    while *self.peek() != Token::Newline {
                        decl.readers.push(self.expect_ident()?);
                    }
                }
                "writer" => {
                    decl.writers.push(self.expect_ident()?);
                    while *self.peek() != Token::Newline {
                        decl.writers.push(self.expect_ident()?);
                    }
                }
                "readwriter" => {
                    decl.readwriters.push(self.expect_ident()?);
                    while *self.peek() != Token::Newline {
                        decl.readwriters.push(self.expect_ident()?);
                    }
                }
                "read-under-write" => decl.read_under_write = self.expect_ident()?,
                other => return self.err(format!("unknown mem field `{other}`")),
            }
            self.expect(&Token::Newline)?;
        }
        self.bump(); // Dedent
        if !saw_type || !saw_depth {
            return self.err("mem requires data-type and depth");
        }
        if decl.read_latency != 0 || decl.write_latency != 1 {
            return self.err(format!(
                "mem `{}`: only read-latency 0 / write-latency 1 memories are supported",
                decl.name
            ));
        }
        Ok(Stmt::Mem(decl))
    }

    fn parse_inst(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("inst")?;
        let name = self.expect_ident()?;
        self.expect_keyword("of")?;
        let module = self.expect_ident()?;
        let info = self.finish_line()?;
        Ok(Stmt::Inst { name, module, info })
    }

    fn parse_node(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("node")?;
        let name = self.expect_ident()?;
        self.expect(&Token::Equal)?;
        let value = self.parse_expr()?;
        let info = self.finish_line()?;
        Ok(Stmt::Node { name, value, info })
    }

    fn parse_when(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("when")?;
        let cond = self.parse_expr()?;
        self.expect(&Token::Colon)?;
        let info = self.take_info();
        let then_body = self.parse_indented_block()?;
        let mut else_body = Vec::new();
        if self.at_keyword("else") {
            self.bump();
            if self.at_keyword("when") {
                // `else when ...` sugar: else body is a single nested when.
                else_body.push(self.parse_when()?);
            } else {
                self.expect(&Token::Colon)?;
                let _else_info = self.take_info();
                else_body = self.parse_indented_block()?;
            }
        }
        Ok(Stmt::When {
            cond,
            then_body,
            else_body,
            info,
        })
    }

    /// Parses `NEWLINE INDENT stmts DEDENT` (or a same-line single
    /// statement, which FIRRTL permits after `:`).
    fn parse_indented_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if *self.peek() == Token::Newline {
            self.bump();
            self.expect(&Token::Indent)?;
            self.parse_block_body()
        } else {
            // Single statement on the same line.
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stop(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("stop")?;
        self.expect(&Token::LParen)?;
        let clock = self.parse_expr()?;
        self.expect(&Token::Comma)?;
        let en = self.parse_expr()?;
        self.expect(&Token::Comma)?;
        let code = self.expect_int()?;
        self.expect(&Token::RParen)?;
        let name = self.parse_optional_stmt_name()?;
        let info = self.finish_line()?;
        Ok(Stmt::Stop {
            name,
            clock,
            en,
            code,
            info,
        })
    }

    fn parse_printf(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("printf")?;
        self.expect(&Token::LParen)?;
        let clock = self.parse_expr()?;
        self.expect(&Token::Comma)?;
        let en = self.parse_expr()?;
        self.expect(&Token::Comma)?;
        let fmt = match self.peek().clone() {
            Token::Str(s) => {
                self.bump();
                s
            }
            other => return self.err(format!("expected format string, found {other}")),
        };
        let mut args = Vec::new();
        while *self.peek() == Token::Comma {
            self.bump();
            args.push(self.parse_expr()?);
        }
        self.expect(&Token::RParen)?;
        let name = self.parse_optional_stmt_name()?;
        let info = self.finish_line()?;
        Ok(Stmt::Printf {
            name,
            clock,
            en,
            fmt,
            args,
            info,
        })
    }

    /// Newer FIRRTL allows `stop(...) : name`.
    fn parse_optional_stmt_name(&mut self) -> Result<String, ParseError> {
        if *self.peek() == Token::Colon {
            self.bump();
            self.expect_ident()
        } else {
            Ok(String::new())
        }
    }

    fn parse_connect_like(&mut self) -> Result<Stmt, ParseError> {
        let loc = self.parse_expr()?;
        if !loc.is_reference() {
            return self.err("statement must begin with a keyword or a reference");
        }
        match self.peek().clone() {
            Token::Connect | Token::PartialConnect => {
                // Partial connect is treated as connect: after type
                // lowering both resolve field-by-field, and the designs in
                // this repo only use matching widths.
                self.bump();
                let value = self.parse_expr()?;
                let info = self.finish_line()?;
                Ok(Stmt::Connect { loc, value, info })
            }
            Token::Ident(kw) if kw == "is" => {
                self.bump();
                self.expect_keyword("invalid")?;
                let info = self.finish_line()?;
                Ok(Stmt::Invalidate { loc, info })
            }
            other => self.err(format!("expected `<=` or `is invalid`, found {other}")),
        }
    }

    // ---------------- types ----------------

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let mut base = self.parse_base_type()?;
        // Postfix vector dimensions, innermost first: `UInt<8>[4][2]` is a
        // 2-vector of 4-vectors of UInt<8>.
        while *self.peek() == Token::LBracket {
            self.bump();
            let n = self.expect_int()? as usize;
            self.expect(&Token::RBracket)?;
            base = Type::Vector(Box::new(base), n);
        }
        Ok(base)
    }

    fn parse_base_type(&mut self) -> Result<Type, ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => match name.as_str() {
                "UInt" | "SInt" => {
                    self.bump();
                    let width = if *self.peek() == Token::LAngle {
                        self.bump();
                        let w = self.expect_int()? as u32;
                        self.expect(&Token::RAngle)?;
                        Some(w)
                    } else {
                        None
                    };
                    Ok(if name == "UInt" {
                        Type::UInt(width)
                    } else {
                        Type::SInt(width)
                    })
                }
                "Clock" => {
                    self.bump();
                    Ok(Type::Clock)
                }
                "Reset" | "AsyncReset" => {
                    self.bump();
                    Ok(Type::Reset)
                }
                "Analog" => self.err("Analog types are not supported"),
                other => self.err(format!("unknown type `{other}`")),
            },
            Token::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                if *self.peek() != Token::RBrace {
                    loop {
                        let flip = if self.at_keyword("flip") {
                            self.bump();
                            true
                        } else {
                            false
                        };
                        let name = self.expect_ident()?;
                        self.expect(&Token::Colon)?;
                        let ty = self.parse_type()?;
                        fields.push(Field { name, flip, ty });
                        if *self.peek() == Token::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBrace)?;
                Ok(Type::Bundle(fields))
            }
            other => self.err(format!("expected type, found {other}")),
        }
    }

    // ---------------- expressions ----------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let base = match self.peek().clone() {
            Token::Ident(name) => match name.as_str() {
                "UInt" | "SInt" if matches!(self.peek2(), Token::LAngle | Token::LParen) => {
                    return self.parse_literal(&name);
                }
                "mux" if *self.peek2() == Token::LParen => {
                    self.bump();
                    self.bump();
                    let sel = self.parse_expr()?;
                    self.expect(&Token::Comma)?;
                    let high = self.parse_expr()?;
                    self.expect(&Token::Comma)?;
                    let low = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    Expr::Mux(Box::new(sel), Box::new(high), Box::new(low))
                }
                "validif" if *self.peek2() == Token::LParen => {
                    self.bump();
                    self.bump();
                    let cond = self.parse_expr()?;
                    self.expect(&Token::Comma)?;
                    let value = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    Expr::ValidIf(Box::new(cond), Box::new(value))
                }
                _ => {
                    if let Some(op) = PrimOp::from_name(&name) {
                        if *self.peek2() == Token::LParen {
                            return self.parse_primop(op);
                        }
                    } else if *self.peek2() == Token::LParen {
                        return self
                            .err(format!("unknown operation `{name}` (not a FIRRTL primop)"));
                    }
                    self.bump();
                    Expr::Ref(name)
                }
            },
            other => return self.err(format!("expected expression, found {other}")),
        };
        self.parse_postfix(base)
    }

    fn parse_postfix(&mut self, mut expr: Expr) -> Result<Expr, ParseError> {
        loop {
            match self.peek().clone() {
                Token::Period => {
                    self.bump();
                    // Field names can be identifiers or (rarely) integers.
                    let field = match self.peek().clone() {
                        Token::Ident(s) => {
                            self.bump();
                            s
                        }
                        Token::Int(v) => {
                            self.bump();
                            v.to_string()
                        }
                        other => return self.err(format!("expected field name, found {other}")),
                    };
                    expr = Expr::SubField(Box::new(expr), field);
                }
                Token::LBracket => {
                    self.bump();
                    // Static index iff the bracket holds a lone integer.
                    if let Token::Int(v) = self.peek().clone() {
                        if *self.peek2() == Token::RBracket {
                            self.bump();
                            self.bump();
                            expr = Expr::SubIndex(Box::new(expr), v as usize);
                            continue;
                        }
                    }
                    let index = self.parse_expr()?;
                    self.expect(&Token::RBracket)?;
                    expr = Expr::SubAccess(Box::new(expr), Box::new(index));
                }
                _ => return Ok(expr),
            }
        }
    }

    fn parse_literal(&mut self, kind: &str) -> Result<Expr, ParseError> {
        self.bump(); // UInt / SInt
        let declared_width = if *self.peek() == Token::LAngle {
            self.bump();
            let w = self.expect_int()? as u32;
            self.expect(&Token::RAngle)?;
            Some(w)
        } else {
            None
        };
        self.expect(&Token::LParen)?;
        // Body: quoted radix literal, bare integer, or bare negative
        // integer (lexed as an Ident beginning with `-`).
        let (body, line) = match self.peek().clone() {
            Token::Str(s) => {
                self.bump();
                (s, self.line())
            }
            Token::Int(v) => {
                self.bump();
                (v.to_string(), self.line())
            }
            Token::Ident(s) if s.starts_with('-') => {
                self.bump();
                (s, self.line())
            }
            other => return self.err(format!("expected literal value, found {other}")),
        };
        self.expect(&Token::RParen)?;

        let signed = kind == "SInt";
        let width = match declared_width {
            Some(w) => w,
            None => minimal_width(&body, signed).map_err(|m| ParseError { message: m, line })?,
        };
        let value = Bits::parse(&body, width).map_err(|e| ParseError {
            message: format!("bad literal: {e}"),
            line,
        })?;
        Ok(if signed {
            Expr::SIntLit { value, width }
        } else {
            Expr::UIntLit { value, width }
        })
    }

    fn parse_primop(&mut self, op: PrimOp) -> Result<Expr, ParseError> {
        self.bump(); // op name
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        let mut params = Vec::new();
        if *self.peek() != Token::RParen {
            loop {
                // Integer parameters always trail the expression args.
                match self.peek().clone() {
                    Token::Int(v) => {
                        self.bump();
                        params.push(v);
                    }
                    _ => {
                        if !params.is_empty() {
                            return self.err("primop parameters must follow all arguments");
                        }
                        args.push(self.parse_expr()?);
                    }
                }
                if *self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        if args.len() != op.arg_count() || params.len() != op.param_count() {
            return self.err(format!(
                "`{}` expects {} args and {} params, got {} and {}",
                op.name(),
                op.arg_count(),
                op.param_count(),
                args.len(),
                params.len()
            ));
        }
        let expr = Expr::Prim { op, args, params };
        self.parse_postfix(expr)
    }
}

/// Minimal width able to represent a literal body.
fn minimal_width(body: &str, signed: bool) -> Result<u32, String> {
    // Parse at a generous width, then measure.
    let probe = Bits::parse(body, 128).map_err(|e| e.to_string())?;
    let neg = body.contains('-');
    if !signed {
        if neg {
            return Err("negative UInt literal".into());
        }
        let mut w = 1;
        for i in 0..128 {
            if probe.bit(i) {
                w = i + 1;
            }
        }
        Ok(w)
    } else {
        // Smallest w such that the value fits in signed w bits.
        let v = probe
            .to_i64()
            .ok_or_else(|| "unwidthed SInt literal too large".to_string())?;
        let mut w = 1;
        while w < 64 {
            let lo = -(1i64 << (w - 1));
            let hi = (1i64 << (w - 1)) - 1;
            if v >= lo && v <= hi {
                return Ok(w as u32);
            }
            w += 1;
        }
        Ok(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Circuit {
        match parse(src) {
            Ok(c) => c,
            Err(e) => panic!("parse failed: {e}\nsource:\n{src}"),
        }
    }

    const TINY: &str = "circuit Top :\n  module Top :\n    input clock : Clock\n    input a : UInt<8>\n    output b : UInt<8>\n    b <= a\n";

    #[test]
    fn parses_tiny_module() {
        let c = parse_ok(TINY);
        assert_eq!(c.name, "Top");
        let m = c.top();
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.body.len(), 1);
        assert!(matches!(m.body[0], Stmt::Connect { .. }));
    }

    #[test]
    fn parses_version_header() {
        let src = format!("FIRRTL version 1.1.0\n{TINY}");
        parse_ok(&src);
    }

    #[test]
    fn parses_register_with_reset() {
        let src = "circuit R :\n  module R :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(\"h0\")))\n    r <= add(r, UInt<8>(1))\n    q <= r\n";
        let c = parse_ok(src);
        match &c.top().body[0] {
            Stmt::Reg { name, reset, .. } => {
                assert_eq!(name, "r");
                assert!(reset.is_some());
            }
            other => panic!("expected reg, got {other:?}"),
        }
    }

    #[test]
    fn parses_register_with_block_reset() {
        let src = "circuit R :\n  module R :\n    input clock : Clock\n    input reset : UInt<1>\n    reg r : UInt<8>, clock with :\n      reset => (reset, UInt<8>(0))\n    r <= r\n";
        let c = parse_ok(src);
        assert!(matches!(&c.top().body[0], Stmt::Reg { reset: Some(_), .. }));
    }

    #[test]
    fn parses_when_else_chain() {
        let src = "circuit W :\n  module W :\n    input s : UInt<2>\n    output o : UInt<4>\n    o <= UInt<4>(0)\n    when eq(s, UInt<2>(0)) :\n      o <= UInt<4>(1)\n    else when eq(s, UInt<2>(1)) :\n      o <= UInt<4>(2)\n    else :\n      o <= UInt<4>(3)\n";
        let c = parse_ok(src);
        match &c.top().body[1] {
            Stmt::When { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(&else_body[0], Stmt::When { .. }));
            }
            other => panic!("expected when, got {other:?}"),
        }
    }

    #[test]
    fn parses_mem_block() {
        let src = "circuit M :\n  module M :\n    input clock : Clock\n    mem m :\n      data-type => UInt<8>\n      depth => 16\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n      read-under-write => undefined\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= UInt<4>(0)\n    m.w.clk <= clock\n    m.w.en <= UInt<1>(0)\n    m.w.addr <= UInt<4>(0)\n    m.w.data <= UInt<8>(0)\n    m.w.mask <= UInt<1>(1)\n";
        let c = parse_ok(src);
        match &c.top().body[0] {
            Stmt::Mem(decl) => {
                assert_eq!(decl.depth, 16);
                assert_eq!(decl.readers, vec!["r"]);
                assert_eq!(decl.writers, vec!["w"]);
            }
            other => panic!("expected mem, got {other:?}"),
        }
    }

    #[test]
    fn rejects_nonzero_read_latency() {
        let src = "circuit M :\n  module M :\n    mem m :\n      data-type => UInt<8>\n      depth => 16\n      read-latency => 1\n      write-latency => 1\n      reader => r\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn parses_aggregate_types() {
        let src = "circuit A :\n  module A :\n    input io : { in : UInt<8>, flip out : UInt<8>, v : UInt<4>[3] }\n    io.out <= io.in\n";
        let c = parse_ok(src);
        match &c.top().ports[0].ty {
            Type::Bundle(fields) => {
                assert_eq!(fields.len(), 3);
                assert!(fields[1].flip);
                assert!(matches!(fields[2].ty, Type::Vector(_, 3)));
            }
            other => panic!("expected bundle, got {other:?}"),
        }
    }

    #[test]
    fn parses_literals() {
        let src = "circuit L :\n  module L :\n    output o : UInt<8>\n    node a = UInt<8>(\"hff\")\n    node b = SInt<4>(-3)\n    node c = UInt(5)\n    o <= a\n";
        let c = parse_ok(src);
        match &c.top().body[1] {
            Stmt::Node { value, .. } => match value {
                Expr::SIntLit { value, width } => {
                    assert_eq!(*width, 4);
                    assert_eq!(value.to_i64(), Some(-3));
                }
                other => panic!("expected SInt literal, got {other:?}"),
            },
            other => panic!("expected node, got {other:?}"),
        }
        match &c.top().body[2] {
            Stmt::Node { value, .. } => match value {
                Expr::UIntLit { width, .. } => assert_eq!(*width, 3),
                other => panic!("expected UInt literal, got {other:?}"),
            },
            other => panic!("expected node, got {other:?}"),
        }
    }

    #[test]
    fn parses_primops_and_postfix() {
        let src = "circuit P :\n  module P :\n    input x : UInt<8>\n    output o : UInt<1>\n    node t = bits(x, 7, 4)\n    node u = cat(t, tail(x, 4))\n    o <= orr(u)\n";
        let c = parse_ok(src);
        match &c.top().body[0] {
            Stmt::Node { value, .. } => match value {
                Expr::Prim { op, args, params } => {
                    assert_eq!(*op, PrimOp::Bits);
                    assert_eq!(args.len(), 1);
                    assert_eq!(params, &vec![7, 4]);
                }
                other => panic!("expected primop, got {other:?}"),
            },
            other => panic!("expected node, got {other:?}"),
        }
    }

    #[test]
    fn parses_subaccess_and_subindex() {
        let src = "circuit S :\n  module S :\n    input v : UInt<8>[4]\n    input i : UInt<2>\n    output a : UInt<8>\n    output b : UInt<8>\n    a <= v[2]\n    b <= v[i]\n";
        let c = parse_ok(src);
        match &c.top().body[0] {
            Stmt::Connect { value, .. } => assert!(matches!(value, Expr::SubIndex(..))),
            other => panic!("{other:?}"),
        }
        match &c.top().body[1] {
            Stmt::Connect { value, .. } => assert!(matches!(value, Expr::SubAccess(..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_stop_and_printf() {
        let src = "circuit H :\n  module H :\n    input clock : Clock\n    input done : UInt<1>\n    stop(clock, done, 0) : halt\n    printf(clock, done, \"done %d\\n\", done) @[t.scala 1:1]\n";
        let c = parse_ok(src);
        assert!(matches!(&c.top().body[0], Stmt::Stop { code: 0, .. }));
        match &c.top().body[1] {
            Stmt::Printf {
                fmt, args, info, ..
            } => {
                assert_eq!(fmt, "done %d\n");
                assert_eq!(args.len(), 1);
                assert_eq!(info.0, "t.scala 1:1");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_invalidate_and_skip() {
        let src = "circuit I :\n  module I :\n    output o : UInt<4>\n    o is invalid\n    skip\n";
        let c = parse_ok(src);
        assert!(matches!(&c.top().body[0], Stmt::Invalidate { .. }));
        assert!(matches!(&c.top().body[1], Stmt::Skip));
    }

    #[test]
    fn parses_instances() {
        let src = "circuit Outer :\n  module Inner :\n    input a : UInt<1>\n    output b : UInt<1>\n    b <= a\n  module Outer :\n    input x : UInt<1>\n    output y : UInt<1>\n    inst u of Inner\n    u.a <= x\n    y <= u.b\n";
        let c = parse_ok(src);
        assert_eq!(c.modules.len(), 2);
        assert!(matches!(&c.top().body[0], Stmt::Inst { .. }));
    }

    #[test]
    fn rejects_missing_top() {
        let src = "circuit Missing :\n  module Other :\n    input a : UInt<1>\n    skip\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_chirrtl() {
        let src = "circuit C :\n  module C :\n    cmem m : UInt<8>[16]\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("CHIRRTL"));
    }

    #[test]
    fn ref_named_like_primop_without_paren() {
        // A signal named `add` used bare must parse as a reference.
        let src = "circuit N :\n  module N :\n    input add : UInt<4>\n    output o : UInt<4>\n    o <= add\n";
        let c = parse_ok(src);
        match &c.top().body[0] {
            Stmt::Connect { value, .. } => assert_eq!(value, &Expr::Ref("add".into())),
            other => panic!("{other:?}"),
        }
    }
}
