//! Abstract syntax tree for the FIRRTL intermediate language.
//!
//! The supported dialect is the widely used FIRRTL 1.x surface syntax
//! emitted by Chisel-era toolchains: circuits of modules with ground,
//! bundle, and vector types, registers with synchronous reset, memories
//! with named read/write/readwrite ports, conditional (`when`) blocks with
//! last-connect semantics, and the full LoFIRRTL primitive-operation set.
//!
//! The AST is deliberately close to the concrete syntax; the passes in
//! [`crate::passes`] successively lower it (type lowering, when expansion,
//! instance inlining) into the flat single-module form consumed by
//! `essent-netlist`.

use essent_bits::Bits;
use std::fmt;

/// Source-position annotation carried through from `@[file line:col]`
/// info tokens. Empty when the source had none.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Info(pub String);

impl fmt::Display for Info {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            Ok(())
        } else {
            write!(f, " @[{}]", self.0)
        }
    }
}

/// A complete FIRRTL circuit: a list of modules with a designated top
/// (the module whose name matches the circuit's).
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    /// Name of the top module.
    pub name: String,
    /// All module definitions, in source order.
    pub modules: Vec<Module>,
    /// Source info for the `circuit` line.
    pub info: Info,
}

impl Circuit {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// The top module.
    ///
    /// # Panics
    ///
    /// Panics if the circuit does not contain a module with the circuit's
    /// name (parsing always validates this).
    pub fn top(&self) -> &Module {
        self.module(&self.name).expect("circuit has a top module")
    }
}

/// A module definition: ports plus a statement body.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    pub name: String,
    pub ports: Vec<Port>,
    pub body: Vec<Stmt>,
    pub info: Info,
}

/// A module port.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    pub name: String,
    pub direction: Direction,
    pub ty: Type,
    pub info: Info,
}

/// Port direction as seen from inside the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    Input,
    Output,
}

impl Direction {
    /// The opposite direction (used when lowering flipped bundle fields).
    pub fn flip(self) -> Direction {
        match self {
            Direction::Input => Direction::Output,
            Direction::Output => Direction::Input,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Input => write!(f, "input"),
            Direction::Output => write!(f, "output"),
        }
    }
}

/// A FIRRTL type.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// Unsigned integer; `None` width means "to be inferred". The supported
    /// subset requires widths on declarations, but literal and expression
    /// types always carry concrete widths after parsing.
    UInt(Option<u32>),
    /// Signed (two's complement) integer.
    SInt(Option<u32>),
    /// Clock type (1-bit at simulation time).
    Clock,
    /// Reset type (treated as a 1-bit UInt).
    Reset,
    /// Bundle of named, possibly flipped fields.
    Bundle(Vec<Field>),
    /// Fixed-length vector.
    Vector(Box<Type>, usize),
}

impl Type {
    /// `true` for UInt/SInt/Clock/Reset.
    pub fn is_ground(&self) -> bool {
        !matches!(self, Type::Bundle(_) | Type::Vector(..))
    }

    /// `true` for SInt.
    pub fn is_signed(&self) -> bool {
        matches!(self, Type::SInt(_))
    }

    /// The declared width, if this is a ground type with a known width.
    /// Clock and Reset report width 1.
    pub fn width(&self) -> Option<u32> {
        match self {
            Type::UInt(w) | Type::SInt(w) => *w,
            Type::Clock | Type::Reset => Some(1),
            _ => None,
        }
    }

    /// Total number of ground-typed leaves after lowering.
    pub fn leaf_count(&self) -> usize {
        match self {
            Type::Bundle(fields) => fields.iter().map(|f| f.ty.leaf_count()).sum(),
            Type::Vector(elem, n) => elem.leaf_count() * n,
            _ => 1,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::UInt(Some(w)) => write!(f, "UInt<{w}>"),
            Type::UInt(None) => write!(f, "UInt"),
            Type::SInt(Some(w)) => write!(f, "SInt<{w}>"),
            Type::SInt(None) => write!(f, "SInt"),
            Type::Clock => write!(f, "Clock"),
            Type::Reset => write!(f, "Reset"),
            Type::Bundle(fields) => {
                write!(f, "{{ ")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if field.flip {
                        write!(f, "flip ")?;
                    }
                    write!(f, "{} : {}", field.name, field.ty)?;
                }
                write!(f, " }}")
            }
            Type::Vector(elem, n) => write!(f, "{elem}[{n}]"),
        }
    }
}

/// A named field within a bundle type.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub name: String,
    pub flip: bool,
    pub ty: Type,
}

/// A FIRRTL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a named component (port, wire, reg, node, instance,
    /// memory).
    Ref(String),
    /// Bundle field access `expr.field`.
    SubField(Box<Expr>, String),
    /// Static vector element access `expr[3]`.
    SubIndex(Box<Expr>, usize),
    /// Dynamic vector element access `expr[idx]`.
    SubAccess(Box<Expr>, Box<Expr>),
    /// Unsigned literal with explicit width.
    UIntLit { value: Bits, width: u32 },
    /// Signed literal with explicit width (value stored as the truncated
    /// two's-complement pattern).
    SIntLit { value: Bits, width: u32 },
    /// Two-way multiplexer `mux(sel, high, low)`.
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Conditionally valid `validif(cond, value)`; simulated as `value`
    /// (the invalid case is a don't-care that we resolve to the value,
    /// matching the firrtl reference lowering).
    ValidIf(Box<Expr>, Box<Expr>),
    /// Primitive operation with expression arguments and integer
    /// parameters (e.g. `bits(x, 7, 0)` has two parameters).
    Prim {
        op: PrimOp,
        args: Vec<Expr>,
        params: Vec<u64>,
    },
}

impl Expr {
    /// Convenience: 1-bit UInt literal.
    pub fn bool_lit(v: bool) -> Expr {
        Expr::UIntLit {
            value: Bits::from_u64(v as u64, 1),
            width: 1,
        }
    }

    /// Convenience: UInt literal of the given value/width.
    pub fn uint(value: u64, width: u32) -> Expr {
        Expr::UIntLit {
            value: Bits::from_u64(value, width),
            width,
        }
    }

    /// `true` if this is a reference chain (Ref/SubField/SubIndex/
    /// SubAccess), i.e. something that can appear on the left of a connect.
    pub fn is_reference(&self) -> bool {
        matches!(
            self,
            Expr::Ref(_) | Expr::SubField(..) | Expr::SubIndex(..) | Expr::SubAccess(..)
        )
    }
}

/// The FIRRTL primitive operations (LoFIRRTL set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Leq,
    Gt,
    Geq,
    Eq,
    Neq,
    Pad,
    AsUInt,
    AsSInt,
    AsClock,
    Shl,
    Shr,
    Dshl,
    Dshr,
    Cvt,
    Neg,
    Not,
    And,
    Or,
    Xor,
    Andr,
    Orr,
    Xorr,
    Cat,
    Bits,
    Head,
    Tail,
}

impl PrimOp {
    /// The operation's FIRRTL keyword.
    pub fn name(self) -> &'static str {
        use PrimOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            Lt => "lt",
            Leq => "leq",
            Gt => "gt",
            Geq => "geq",
            Eq => "eq",
            Neq => "neq",
            Pad => "pad",
            AsUInt => "asUInt",
            AsSInt => "asSInt",
            AsClock => "asClock",
            Shl => "shl",
            Shr => "shr",
            Dshl => "dshl",
            Dshr => "dshr",
            Cvt => "cvt",
            Neg => "neg",
            Not => "not",
            And => "and",
            Or => "or",
            Xor => "xor",
            Andr => "andr",
            Orr => "orr",
            Xorr => "xorr",
            Cat => "cat",
            Bits => "bits",
            Head => "head",
            Tail => "tail",
        }
    }

    /// Looks up an operation by its FIRRTL keyword.
    pub fn from_name(name: &str) -> Option<PrimOp> {
        use PrimOp::*;
        Some(match name {
            "add" => Add,
            "sub" => Sub,
            "mul" => Mul,
            "div" => Div,
            "rem" => Rem,
            "lt" => Lt,
            "leq" => Leq,
            "gt" => Gt,
            "geq" => Geq,
            "eq" => Eq,
            "neq" => Neq,
            "pad" => Pad,
            "asUInt" => AsUInt,
            "asSInt" => AsSInt,
            "asClock" => AsClock,
            "shl" => Shl,
            "shr" => Shr,
            "dshl" => Dshl,
            "dshr" => Dshr,
            "cvt" => Cvt,
            "neg" => Neg,
            "not" => Not,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "andr" => Andr,
            "orr" => Orr,
            "xorr" => Xorr,
            "cat" => Cat,
            "bits" => Bits,
            "head" => Head,
            "tail" => Tail,
            _ => return None,
        })
    }

    /// Number of expression arguments the op takes.
    pub fn arg_count(self) -> usize {
        use PrimOp::*;
        match self {
            Add | Sub | Mul | Div | Rem | Lt | Leq | Gt | Geq | Eq | Neq | Dshl | Dshr | And
            | Or | Xor | Cat => 2,
            Pad | AsUInt | AsSInt | AsClock | Shl | Shr | Cvt | Neg | Not | Andr | Orr | Xorr
            | Bits | Head | Tail => 1,
        }
    }

    /// Number of integer parameters the op takes.
    pub fn param_count(self) -> usize {
        use PrimOp::*;
        match self {
            Pad | Shl | Shr | Head | Tail => 1,
            Bits => 2,
            _ => 0,
        }
    }
}

/// A FIRRTL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `wire name : type`
    Wire { name: String, ty: Type, info: Info },
    /// `reg name : type, clock [with: (reset => (cond, init))]`
    Reg {
        name: String,
        ty: Type,
        clock: Expr,
        /// Synchronous reset: `(condition, init value)`.
        reset: Option<(Expr, Expr)>,
        info: Info,
    },
    /// A `mem` declaration block.
    Mem(MemDecl),
    /// `inst name of module`
    Inst {
        name: String,
        module: String,
        info: Info,
    },
    /// `node name = expr`
    Node {
        name: String,
        value: Expr,
        info: Info,
    },
    /// `loc <= expr`
    Connect { loc: Expr, value: Expr, info: Info },
    /// `loc is invalid`
    Invalidate { loc: Expr, info: Info },
    /// `when cond : ... [else : ...]`
    When {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        info: Info,
    },
    /// `stop(clock, en, code)` — simulation halt request.
    Stop {
        name: String,
        clock: Expr,
        en: Expr,
        code: u64,
        info: Info,
    },
    /// `printf(clock, en, "fmt", args...)`
    Printf {
        name: String,
        clock: Expr,
        en: Expr,
        fmt: String,
        args: Vec<Expr>,
        info: Info,
    },
    /// `skip`
    Skip,
}

/// A memory declaration: banked storage with named ports.
///
/// The supported subset is the common synchronous-write memory:
/// `read-latency` 0 (combinational read) and `write-latency` 1, which is
/// what Chisel `Mem` produces and what the evaluation designs use.
#[derive(Debug, Clone, PartialEq)]
pub struct MemDecl {
    pub name: String,
    pub data_type: Type,
    pub depth: usize,
    pub read_latency: u32,
    pub write_latency: u32,
    pub readers: Vec<String>,
    pub writers: Vec<String>,
    pub readwriters: Vec<String>,
    /// `old`, `new`, or `undefined`; affects read-during-write. With
    /// read-latency 0 reads always see pre-write contents (`old`).
    pub read_under_write: String,
    pub info: Info,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primop_name_roundtrip() {
        let all = [
            "add", "sub", "mul", "div", "rem", "lt", "leq", "gt", "geq", "eq", "neq", "pad",
            "asUInt", "asSInt", "asClock", "shl", "shr", "dshl", "dshr", "cvt", "neg", "not",
            "and", "or", "xor", "andr", "orr", "xorr", "cat", "bits", "head", "tail",
        ];
        for name in all {
            let op = PrimOp::from_name(name).unwrap();
            assert_eq!(op.name(), name);
        }
        assert_eq!(PrimOp::from_name("bogus"), None);
    }

    #[test]
    fn type_properties() {
        let bundle = Type::Bundle(vec![
            Field {
                name: "a".into(),
                flip: false,
                ty: Type::UInt(Some(8)),
            },
            Field {
                name: "b".into(),
                flip: true,
                ty: Type::Vector(Box::new(Type::SInt(Some(4))), 3),
            },
        ]);
        assert!(!bundle.is_ground());
        assert_eq!(bundle.leaf_count(), 4);
        assert_eq!(bundle.to_string(), "{ a : UInt<8>, flip b : SInt<4>[3] }");
        assert_eq!(Type::Clock.width(), Some(1));
        assert!(Type::SInt(Some(3)).is_signed());
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Input.flip(), Direction::Output);
        assert_eq!(Direction::Output.flip(), Direction::Input);
    }

    #[test]
    fn expr_helpers() {
        assert!(Expr::Ref("x".into()).is_reference());
        assert!(!Expr::bool_lit(true).is_reference());
        match Expr::uint(5, 3) {
            Expr::UIntLit { value, width } => {
                assert_eq!(value.to_u64(), Some(5));
                assert_eq!(width, 3);
            }
            _ => unreachable!(),
        }
    }
}
