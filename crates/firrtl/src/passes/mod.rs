//! Lowering passes: aggregate types → ground types, module hierarchy →
//! flat top module, `when` blocks → explicit multiplexers.
//!
//! The passes run in a fixed order (see [`lower`]); each consumes and
//! produces an [`ast::Circuit`](crate::ast::Circuit), so intermediate
//! results can be inspected or pretty-printed for debugging.

pub mod expand_whens;
pub mod inline;
pub mod lower_types;
pub mod symbols;

use crate::ast::Circuit;
use std::fmt;

/// Error produced by a lowering pass: the construct is malformed or
/// outside the supported subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Which pass raised the error.
    pub pass: &'static str,
    pub message: String,
}

impl LowerError {
    pub(crate) fn new(pass: &'static str, message: impl Into<String>) -> Self {
        LowerError {
            pass,
            message: message.into(),
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pass, self.message)
    }
}

impl std::error::Error for LowerError {}

/// Runs the full lowering pipeline:
/// 1. [`lower_types::run`] — flatten bundles/vectors to ground signals;
/// 2. [`inline::run`] — flatten the module hierarchy into the top module;
/// 3. [`expand_whens::run`] — resolve `when` blocks and last-connect
///    semantics into exactly one driver per sink.
///
/// The result is a single-module circuit containing only ports, wires
/// (fully driven), registers, memories, nodes, connects, stops, and
/// printfs.
///
/// # Errors
///
/// Returns [`LowerError`] when the design uses unsupported constructs
/// (aggregate-typed memories, `SubAccess` on non-vector paths, recursive
/// instantiation) or is malformed (connects to non-sinks, unknown names).
///
/// # Examples
///
/// ```
/// let src = "circuit T :\n  module T :\n    input c : UInt<1>\n    input a : UInt<4>\n    output o : UInt<4>\n    o <= UInt<4>(0)\n    when c :\n      o <= a\n";
/// let flat = essent_firrtl::passes::lower(essent_firrtl::parse(src)?)?;
/// // The `when` is gone: `o` is driven by a mux.
/// assert!(essent_firrtl::print_circuit(&flat).contains("mux(c"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lower(circuit: Circuit) -> Result<Circuit, LowerError> {
    let circuit = lower_types::run(circuit)?;
    let circuit = inline::run(circuit)?;
    expand_whens::run(circuit)
}
