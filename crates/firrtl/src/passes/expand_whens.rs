//! **ExpandWhens**: resolves `when` blocks and last-connect semantics into
//! exactly one driver per sink.
//!
//! Runs on the flat, ground-typed top module. The pass walks the
//! statement list in order, tracking for every sink (wire, register,
//! output port, memory port field) the expression currently driving it.
//! A `when` produces a multiplexer join: for each sink assigned in either
//! branch, the new driver is `mux(cond, then-value, else-value)`, where a
//! branch that did not assign falls back to the value before the `when` —
//! or, for registers, to the register itself (hold).
//!
//! `stop`/`printf` statements inside `when`s get their enable ANDed with
//! the accumulated guard. Declarations inside `when` bodies are hoisted
//! (FIRRTL names are module-unique, so hoisting is safe).
//!
//! Don't-care resolution: an `is invalid` driver, or a branch with no
//! value at all, resolves to the *other* branch's value when one exists
//! (matching the firrtl compiler's `validif` folding) and to zero when no
//! branch ever drives the sink — the deterministic 2-state convention used
//! by ESSENT's generated simulators.

use crate::ast::*;
use crate::passes::LowerError;
use std::collections::{HashMap, HashSet};

const PASS: &str = "ExpandWhens";

/// The value currently driving a sink.
#[derive(Debug, Clone, PartialEq)]
enum Driver {
    Value(Expr),
    Invalid,
}

/// One lexical scope of drivers (a `when` branch or the module body).
#[derive(Debug, Default)]
struct Scope {
    map: HashMap<String, Driver>,
    order: Vec<String>,
}

impl Scope {
    fn set(&mut self, key: String, driver: Driver) {
        if !self.map.contains_key(&key) {
            self.order.push(key.clone());
        }
        self.map.insert(key, driver);
    }
}

struct Ctx {
    decls: Vec<Stmt>,
    stops: Vec<Stmt>,
    printfs: Vec<Stmt>,
    regs: HashSet<String>,
    /// Canonical key → connect-target expression.
    sinks: HashMap<String, Expr>,
    used_names: HashSet<String>,
    gen_counter: usize,
}

impl Ctx {
    fn fresh(&mut self, hint: &str) -> String {
        loop {
            let name = format!("_GEN_{hint}_{}", self.gen_counter);
            self.gen_counter += 1;
            if self.used_names.insert(name.clone()) {
                return name;
            }
        }
    }
}

/// Runs the pass on a single-module circuit.
///
/// # Errors
///
/// Returns an error if the circuit still has multiple modules (run
/// [`inline`](crate::passes::inline) first) or contains connects to
/// non-sink expressions.
pub fn run(circuit: Circuit) -> Result<Circuit, LowerError> {
    if circuit.modules.len() != 1 {
        return Err(LowerError::new(
            PASS,
            "expected a single flattened module (run InlineInstances first)",
        ));
    }
    let module = circuit.modules.into_iter().next().expect("one module");
    let mut ctx = Ctx {
        decls: Vec::new(),
        stops: Vec::new(),
        printfs: Vec::new(),
        regs: HashSet::new(),
        sinks: HashMap::new(),
        used_names: collect_names(&module),
        gen_counter: 0,
    };
    let mut root = Scope::default();
    process(&module.body, None, &mut root, &mut ctx)?;

    let mut body = std::mem::take(&mut ctx.decls);
    for key in &root.order {
        let loc = ctx.sinks[key].clone();
        let value = match &root.map[key] {
            Driver::Value(e) => e.clone(),
            Driver::Invalid => Expr::uint(0, 1),
        };
        body.push(Stmt::Connect {
            loc,
            value,
            info: Info::default(),
        });
    }
    body.extend(ctx.stops);
    body.extend(ctx.printfs);
    Ok(Circuit {
        name: circuit.name,
        modules: vec![Module {
            name: module.name,
            ports: module.ports,
            body,
            info: module.info,
        }],
        info: circuit.info,
    })
}

fn collect_names(module: &Module) -> HashSet<String> {
    let mut names: HashSet<String> = module.ports.iter().map(|p| p.name.clone()).collect();
    fn walk(stmts: &[Stmt], names: &mut HashSet<String>) {
        for stmt in stmts {
            match stmt {
                Stmt::Wire { name, .. }
                | Stmt::Reg { name, .. }
                | Stmt::Node { name, .. }
                | Stmt::Inst { name, .. } => {
                    names.insert(name.clone());
                }
                Stmt::Mem(decl) => {
                    names.insert(decl.name.clone());
                }
                Stmt::When {
                    then_body,
                    else_body,
                    ..
                } => {
                    walk(then_body, names);
                    walk(else_body, names);
                }
                _ => {}
            }
        }
    }
    walk(&module.body, &mut names);
    names
}

/// Canonical key for a connect target.
fn canon(expr: &Expr) -> String {
    crate::printer::print_expr(expr)
}

fn and_expr(a: Expr, b: Expr) -> Expr {
    Expr::Prim {
        op: PrimOp::And,
        args: vec![a, b],
        params: vec![],
    }
}

fn not_expr(a: Expr) -> Expr {
    Expr::Prim {
        op: PrimOp::Not,
        args: vec![a],
        params: vec![],
    }
}

fn process(
    stmts: &[Stmt],
    guard: Option<&Expr>,
    scope: &mut Scope,
    ctx: &mut Ctx,
) -> Result<(), LowerError> {
    for stmt in stmts {
        match stmt {
            Stmt::Wire { .. } | Stmt::Mem(_) | Stmt::Node { .. } => ctx.decls.push(stmt.clone()),
            Stmt::Reg { name, .. } => {
                ctx.regs.insert(name.clone());
                ctx.decls.push(stmt.clone());
            }
            Stmt::Inst { .. } => {
                return Err(LowerError::new(
                    PASS,
                    "instances must be inlined before when expansion",
                ))
            }
            Stmt::Connect { loc, value, .. } => {
                let key = canon(loc);
                ctx.sinks.entry(key.clone()).or_insert_with(|| loc.clone());
                scope.set(key, Driver::Value(value.clone()));
            }
            Stmt::Invalidate { loc, .. } => {
                let key = canon(loc);
                ctx.sinks.entry(key.clone()).or_insert_with(|| loc.clone());
                scope.set(key, Driver::Invalid);
            }
            Stmt::When {
                cond,
                then_body,
                else_body,
                ..
            } => {
                // Hoist the condition into a node so mux joins share it by
                // reference instead of duplicating the expression.
                let cond_ref = match cond {
                    Expr::Ref(_) | Expr::UIntLit { .. } => cond.clone(),
                    _ => {
                        let name = ctx.fresh("when");
                        ctx.decls.push(Stmt::Node {
                            name: name.clone(),
                            value: cond.clone(),
                            info: Info::default(),
                        });
                        Expr::Ref(name)
                    }
                };
                let then_guard = match guard {
                    Some(g) => and_expr(g.clone(), cond_ref.clone()),
                    None => cond_ref.clone(),
                };
                let else_guard = match guard {
                    Some(g) => and_expr(g.clone(), not_expr(cond_ref.clone())),
                    None => not_expr(cond_ref.clone()),
                };

                let mut then_scope = Scope::default();
                process(then_body, Some(&then_guard), &mut then_scope, ctx)?;
                let mut else_scope = Scope::default();
                process(else_body, Some(&else_guard), &mut else_scope, ctx)?;

                // Join: deterministic order (then-branch keys, then new
                // else-branch keys).
                let mut keys = then_scope.order.clone();
                for k in &else_scope.order {
                    if !then_scope.map.contains_key(k) {
                        keys.push(k.clone());
                    }
                }
                for key in keys {
                    let fallback = scope.map.get(&key).cloned().or_else(|| {
                        if ctx.regs.contains(&key) {
                            Some(Driver::Value(Expr::Ref(key.clone())))
                        } else {
                            None
                        }
                    });
                    let tv = then_scope
                        .map
                        .get(&key)
                        .cloned()
                        .or_else(|| fallback.clone());
                    let ev = else_scope
                        .map
                        .get(&key)
                        .cloned()
                        .or_else(|| fallback.clone());
                    let joined = join(&cond_ref, tv, ev);
                    scope.set(key, joined);
                }
            }
            Stmt::Stop {
                name,
                clock,
                en,
                code,
                info,
            } => {
                let en = match guard {
                    Some(g) => and_expr(g.clone(), en.clone()),
                    None => en.clone(),
                };
                ctx.stops.push(Stmt::Stop {
                    name: name.clone(),
                    clock: clock.clone(),
                    en,
                    code: *code,
                    info: info.clone(),
                });
            }
            Stmt::Printf {
                name,
                clock,
                en,
                fmt,
                args,
                info,
            } => {
                let en = match guard {
                    Some(g) => and_expr(g.clone(), en.clone()),
                    None => en.clone(),
                };
                ctx.printfs.push(Stmt::Printf {
                    name: name.clone(),
                    clock: clock.clone(),
                    en,
                    fmt: fmt.clone(),
                    args: args.clone(),
                    info: info.clone(),
                });
            }
            Stmt::Skip => {}
        }
    }
    Ok(())
}

/// Combines the two branch drivers of one sink under condition `cond`.
fn join(cond: &Expr, then_v: Option<Driver>, else_v: Option<Driver>) -> Driver {
    use Driver::*;
    match (then_v, else_v) {
        (Some(Value(t)), Some(Value(e))) => {
            if t == e {
                Value(t)
            } else {
                Value(Expr::Mux(Box::new(cond.clone()), Box::new(t), Box::new(e)))
            }
        }
        // validif folding: a branch without a live value is a don't-care,
        // so the live branch's value wins unconditionally.
        (Some(Value(t)), Some(Invalid)) | (Some(Value(t)), None) => Value(t),
        (Some(Invalid), Some(Value(e))) | (None, Some(Value(e))) => Value(e),
        (Some(Invalid), _) | (_, Some(Invalid)) => Invalid,
        (None, None) => Invalid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::passes::{inline, lower_types};
    use crate::printer::print_circuit;

    fn expand(src: &str) -> Circuit {
        let c = lower_types::run(parse(src).unwrap()).unwrap();
        let c = inline::run(c).unwrap();
        run(c).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
    }

    fn connect_of<'a>(c: &'a Circuit, sink: &str) -> &'a Expr {
        c.top()
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Connect { loc, value, .. } if crate::printer::print_expr(loc) == sink => {
                    Some(value)
                }
                _ => None,
            })
            .unwrap_or_else(|| panic!("no connect to {sink} in:\n{}", print_circuit(c)))
    }

    #[test]
    fn simple_when_becomes_mux() {
        let c = expand("circuit W :\n  module W :\n    input c : UInt<1>\n    input a : UInt<4>\n    output o : UInt<4>\n    o <= UInt<4>(0)\n    when c :\n      o <= a\n");
        match connect_of(&c, "o") {
            Expr::Mux(sel, high, low) => {
                assert_eq!(**sel, Expr::Ref("c".into()));
                assert_eq!(**high, Expr::Ref("a".into()));
                assert!(matches!(**low, Expr::UIntLit { .. }));
            }
            other => panic!("expected mux, got {other:?}"),
        }
    }

    #[test]
    fn last_connect_wins() {
        let c = expand("circuit L :\n  module L :\n    input a : UInt<4>\n    input b : UInt<4>\n    output o : UInt<4>\n    o <= a\n    o <= b\n");
        assert_eq!(connect_of(&c, "o"), &Expr::Ref("b".into()));
    }

    #[test]
    fn register_holds_when_unassigned_branch() {
        let c = expand("circuit R :\n  module R :\n    input clock : Clock\n    input c : UInt<1>\n    input a : UInt<4>\n    output o : UInt<4>\n    reg r : UInt<4>, clock\n    when c :\n      r <= a\n    o <= r\n");
        match connect_of(&c, "r") {
            Expr::Mux(_, high, low) => {
                assert_eq!(**high, Expr::Ref("a".into()));
                assert_eq!(**low, Expr::Ref("r".into()), "register must hold");
            }
            other => panic!("expected mux, got {other:?}"),
        }
    }

    #[test]
    fn nested_whens_join_correctly() {
        let c = expand("circuit N :\n  module N :\n    input c1 : UInt<1>\n    input c2 : UInt<1>\n    input a : UInt<4>\n    input b : UInt<4>\n    input d : UInt<4>\n    output o : UInt<4>\n    o <= d\n    when c1 :\n      when c2 :\n        o <= a\n      else :\n        o <= b\n");
        // o = mux(c1, mux(c2, a, b), d)
        match connect_of(&c, "o") {
            Expr::Mux(sel, high, low) => {
                assert_eq!(**sel, Expr::Ref("c1".into()));
                assert_eq!(**low, Expr::Ref("d".into()));
                match high.as_ref() {
                    Expr::Mux(s2, h2, l2) => {
                        assert_eq!(**s2, Expr::Ref("c2".into()));
                        assert_eq!(**h2, Expr::Ref("a".into()));
                        assert_eq!(**l2, Expr::Ref("b".into()));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_resolves_to_live_branch() {
        let c = expand("circuit V :\n  module V :\n    input c : UInt<1>\n    input a : UInt<4>\n    output o : UInt<4>\n    o is invalid\n    when c :\n      o <= a\n");
        // firrtl folds validif(c, a) to a.
        assert_eq!(connect_of(&c, "o"), &Expr::Ref("a".into()));
    }

    #[test]
    fn never_driven_sink_resolves_to_zero() {
        let c = expand("circuit Z :\n  module Z :\n    output o : UInt<4>\n    o is invalid\n");
        assert!(matches!(connect_of(&c, "o"), Expr::UIntLit { .. }));
    }

    #[test]
    fn stop_enable_gets_guard() {
        let c = expand("circuit S :\n  module S :\n    input clock : Clock\n    input c : UInt<1>\n    input e : UInt<1>\n    when c :\n      stop(clock, e, 1)\n");
        let stop_en = c
            .top()
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Stop { en, .. } => Some(en.clone()),
                _ => None,
            })
            .unwrap();
        match stop_en {
            Expr::Prim { op, args, .. } => {
                assert_eq!(op, PrimOp::And);
                assert_eq!(args[0], Expr::Ref("c".into()));
                assert_eq!(args[1], Expr::Ref("e".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn complex_condition_is_hoisted_into_node() {
        let c = expand("circuit H :\n  module H :\n    input a : UInt<4>\n    input b : UInt<4>\n    output o : UInt<4>\n    o <= a\n    when eq(a, b) :\n      o <= b\n");
        let text = print_circuit(&c);
        assert!(text.contains("node _GEN_when_0 = eq(a, b)"), "{text}");
        assert!(text.contains("o <= mux(_GEN_when_0, b, a)"), "{text}");
    }

    #[test]
    fn mem_port_fields_are_sinks() {
        let c = expand("circuit M :\n  module M :\n    input clock : Clock\n    input c : UInt<1>\n    input a : UInt<2>\n    output o : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 4\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= UInt<2>(0)\n    when c :\n      m.r.addr <= a\n    m.w.clk <= clock\n    m.w.en <= UInt<1>(0)\n    m.w.addr <= a\n    m.w.data <= UInt<8>(0)\n    m.w.mask <= UInt<1>(1)\n    o <= m.r.data\n");
        match connect_of(&c, "m.r.addr") {
            Expr::Mux(sel, ..) => assert_eq!(**sel, Expr::Ref("c".into())),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn declarations_inside_when_are_hoisted() {
        let c = expand("circuit D :\n  module D :\n    input c : UInt<1>\n    input a : UInt<4>\n    output o : UInt<4>\n    o <= UInt<4>(0)\n    when c :\n      node t = not(a)\n      o <= t\n");
        let text = print_circuit(&c);
        assert!(text.contains("node t = not(a)"), "{text}");
        // The node decl must appear before the connect using it.
        let node_pos = text.find("node t").unwrap();
        let conn_pos = text.find("o <= mux").unwrap();
        assert!(node_pos < conn_pos, "{text}");
    }

    #[test]
    fn identical_branch_values_skip_the_mux() {
        let c = expand("circuit E :\n  module E :\n    input c : UInt<1>\n    input a : UInt<4>\n    output o : UInt<4>\n    when c :\n      o <= a\n    else :\n      o <= a\n");
        assert_eq!(connect_of(&c, "o"), &Expr::Ref("a".into()));
    }
}
