//! Per-module symbol tables and structural type computation, shared by the
//! lowering passes.

use crate::ast::*;
use crate::passes::LowerError;
use std::collections::HashMap;

/// What kind of component a name refers to (pre-lowering).
#[derive(Debug, Clone, PartialEq)]
pub enum SymbolKind {
    Port(Direction),
    Wire,
    Reg,
    Node,
    /// An instance; the payload is the instantiated module's name.
    Instance(String),
    /// A memory; the payload is the declaration (for port typing).
    Mem(MemDecl),
}

/// A declared name with its (possibly aggregate) type.
#[derive(Debug, Clone)]
pub struct Symbol {
    pub kind: SymbolKind,
    pub ty: Type,
}

/// Symbol table for one module, including names declared inside `when`
/// blocks (FIRRTL names are unique per module in practice — Chisel
/// guarantees it — and the table rejects duplicates).
#[derive(Debug, Default)]
pub struct Symbols {
    map: HashMap<String, Symbol>,
}

/// Address width for a memory of `depth` entries (at least 1 bit).
pub fn addr_width(depth: usize) -> u32 {
    let mut w = 0u32;
    while (1usize << w) < depth {
        w += 1;
    }
    w.max(1)
}

/// The bundle type of one memory port, as seen from the module.
///
/// Readers expose `{flip data, addr, en, clk}`; writers add `data`,
/// `mask`; readwriters expose both directions.
pub fn mem_port_type(decl: &MemDecl, port: &str) -> Option<Type> {
    let aw = addr_width(decl.depth);
    let dt = decl.data_type.clone();
    let base = |extra: Vec<Field>| {
        let mut fields = vec![
            Field {
                name: "addr".into(),
                flip: false,
                ty: Type::UInt(Some(aw)),
            },
            Field {
                name: "en".into(),
                flip: false,
                ty: Type::UInt(Some(1)),
            },
            Field {
                name: "clk".into(),
                flip: false,
                ty: Type::Clock,
            },
        ];
        fields.extend(extra);
        Type::Bundle(fields)
    };
    if decl.readers.iter().any(|r| r == port) {
        return Some(base(vec![Field {
            name: "data".into(),
            flip: true,
            ty: dt,
        }]));
    }
    if decl.writers.iter().any(|w| w == port) {
        return Some(base(vec![
            Field {
                name: "data".into(),
                flip: false,
                ty: dt,
            },
            Field {
                name: "mask".into(),
                flip: false,
                ty: Type::UInt(Some(1)),
            },
        ]));
    }
    if decl.readwriters.iter().any(|rw| rw == port) {
        return Some(base(vec![
            Field {
                name: "rdata".into(),
                flip: true,
                ty: dt.clone(),
            },
            Field {
                name: "wmode".into(),
                flip: false,
                ty: Type::UInt(Some(1)),
            },
            Field {
                name: "wdata".into(),
                flip: false,
                ty: dt,
            },
            Field {
                name: "wmask".into(),
                flip: false,
                ty: Type::UInt(Some(1)),
            },
        ]));
    }
    None
}

impl Symbols {
    /// Builds the symbol table for `module`. `port_types` maps other
    /// modules' names to their port lists (for typing instances).
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate names, unknown instantiated modules,
    /// or node expressions that cannot be typed.
    pub fn build(
        module: &Module,
        port_types: &HashMap<String, Vec<Port>>,
    ) -> Result<Symbols, LowerError> {
        let mut table = Symbols::default();
        for port in &module.ports {
            table.insert(
                &port.name,
                Symbol {
                    kind: SymbolKind::Port(port.direction),
                    ty: port.ty.clone(),
                },
            )?;
        }
        table.collect_stmts(&module.body, port_types)?;
        Ok(table)
    }

    fn collect_stmts(
        &mut self,
        stmts: &[Stmt],
        port_types: &HashMap<String, Vec<Port>>,
    ) -> Result<(), LowerError> {
        for stmt in stmts {
            match stmt {
                Stmt::Wire { name, ty, .. } => self.insert(
                    name,
                    Symbol {
                        kind: SymbolKind::Wire,
                        ty: ty.clone(),
                    },
                )?,
                Stmt::Reg { name, ty, .. } => self.insert(
                    name,
                    Symbol {
                        kind: SymbolKind::Reg,
                        ty: ty.clone(),
                    },
                )?,
                Stmt::Mem(decl) => self.insert(
                    &decl.name,
                    Symbol {
                        kind: SymbolKind::Mem(decl.clone()),
                        ty: Type::UInt(None), // accessed via ports only
                    },
                )?,
                Stmt::Inst { name, module, .. } => {
                    let ports = port_types.get(module).ok_or_else(|| {
                        LowerError::new("Symbols", format!("unknown module `{module}`"))
                    })?;
                    let fields = ports
                        .iter()
                        .map(|p| Field {
                            name: p.name.clone(),
                            // From the parent's perspective a child input
                            // is a sink (normal orientation) and a child
                            // output is a source (flipped).
                            flip: p.direction == Direction::Output,
                            ty: p.ty.clone(),
                        })
                        .collect();
                    self.insert(
                        name,
                        Symbol {
                            kind: SymbolKind::Instance(module.clone()),
                            ty: Type::Bundle(fields),
                        },
                    )?;
                }
                Stmt::Node { name, value, .. } => {
                    let ty = self.type_of(value)?;
                    self.insert(
                        name,
                        Symbol {
                            kind: SymbolKind::Node,
                            ty,
                        },
                    )?;
                }
                Stmt::When {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.collect_stmts(then_body, port_types)?;
                    self.collect_stmts(else_body, port_types)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn insert(&mut self, name: &str, symbol: Symbol) -> Result<(), LowerError> {
        if self.map.insert(name.to_string(), symbol).is_some() {
            return Err(LowerError::new(
                "Symbols",
                format!("duplicate declaration of `{name}`"),
            ));
        }
        Ok(())
    }

    /// Looks up a declared name.
    pub fn get(&self, name: &str) -> Option<&Symbol> {
        self.map.get(name)
    }

    /// Structural type of an expression: exact for aggregates and declared
    /// grounds; primitive-op results report `UInt(None)`/`SInt(None)` (the
    /// netlist layer computes exact widths, which the lowering passes do
    /// not need).
    ///
    /// # Errors
    ///
    /// Returns an error for references to undeclared names or field/index
    /// access on non-matching types.
    pub fn type_of(&self, expr: &Expr) -> Result<Type, LowerError> {
        let err = |m: String| LowerError::new("Symbols", m);
        match expr {
            Expr::Ref(name) => self
                .map
                .get(name)
                .map(|s| s.ty.clone())
                .ok_or_else(|| err(format!("reference to undeclared `{name}`"))),
            Expr::SubField(base, field) => {
                // Memory ports need special typing.
                if let Expr::Ref(name) = base.as_ref() {
                    if let Some(Symbol {
                        kind: SymbolKind::Mem(decl),
                        ..
                    }) = self.map.get(name)
                    {
                        return mem_port_type(decl, field)
                            .ok_or_else(|| err(format!("memory `{name}` has no port `{field}`")));
                    }
                }
                match self.type_of(base)? {
                    Type::Bundle(fields) => fields
                        .iter()
                        .find(|f| &f.name == field)
                        .map(|f| f.ty.clone())
                        .ok_or_else(|| err(format!("no field `{field}`"))),
                    other => Err(err(format!("subfield `.{field}` on non-bundle {other}"))),
                }
            }
            Expr::SubIndex(base, index) => match self.type_of(base)? {
                Type::Vector(elem, n) => {
                    if *index < n {
                        Ok(*elem)
                    } else {
                        Err(err(format!("index {index} out of bounds for [{n}]")))
                    }
                }
                other => Err(err(format!("subindex on non-vector {other}"))),
            },
            Expr::SubAccess(base, _) => match self.type_of(base)? {
                Type::Vector(elem, _) => Ok(*elem),
                other => Err(err(format!("subaccess on non-vector {other}"))),
            },
            Expr::UIntLit { width, .. } => Ok(Type::UInt(Some(*width))),
            Expr::SIntLit { width, .. } => Ok(Type::SInt(Some(*width))),
            Expr::Mux(_, high, _) => self.type_of(high),
            Expr::ValidIf(_, value) => self.type_of(value),
            Expr::Prim { op, args, .. } => {
                // Exact widths are computed later; here only the ground
                // kind matters (signed vs unsigned).
                use PrimOp::*;
                let signed = match op {
                    AsSInt | Cvt | Neg => true,
                    Add | Sub | Mul | Div | Rem | Shl | Shr | Dshl | Dshr | Pad => {
                        matches!(self.type_of(&args[0])?, Type::SInt(_))
                    }
                    _ => false,
                };
                Ok(if signed {
                    Type::SInt(None)
                } else {
                    Type::UInt(None)
                })
            }
        }
    }

    /// The orientation-aware sink test: `true` when `expr` denotes a
    /// location a connect may drive (output port leaf, input port's
    /// flipped leaf, wire, reg, child input, mem request field).
    pub fn is_sink(&self, expr: &Expr) -> bool {
        let Some(name) = self.root_of(expr) else {
            return false;
        };
        let Some(symbol) = self.map.get(name) else {
            return false;
        };
        match &symbol.kind {
            // Wires and registers are connectable through any orientation.
            SymbolKind::Wire | SymbolKind::Reg => true,
            SymbolKind::Instance(_) | SymbolKind::Mem(_) => true,
            SymbolKind::Node => false,
            SymbolKind::Port(dir) => {
                let flipped = self.flip_parity(expr).unwrap_or(false);
                matches!(
                    (dir, flipped),
                    (Direction::Output, false) | (Direction::Input, true)
                )
            }
        }
    }

    /// XOR of the `flip` attributes along a reference path.
    fn flip_parity(&self, expr: &Expr) -> Option<bool> {
        match expr {
            Expr::Ref(_) => Some(false),
            Expr::SubIndex(base, _) | Expr::SubAccess(base, _) => self.flip_parity(base),
            Expr::SubField(base, field) => {
                let parent = self.flip_parity(base)?;
                match self.type_of(base).ok()? {
                    Type::Bundle(fields) => fields
                        .iter()
                        .find(|f| &f.name == field)
                        .map(|f| parent ^ f.flip),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// The root identifier of a reference chain.
    pub fn root_of<'a>(&self, expr: &'a Expr) -> Option<&'a str> {
        match expr {
            Expr::Ref(name) => Some(name),
            Expr::SubField(base, _) | Expr::SubIndex(base, _) | Expr::SubAccess(base, _) => {
                self.root_of(base)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn table_for(src: &str) -> Symbols {
        let circuit = parse(src).unwrap();
        let port_types: HashMap<String, Vec<Port>> = circuit
            .modules
            .iter()
            .map(|m| (m.name.clone(), m.ports.clone()))
            .collect();
        Symbols::build(circuit.top(), &port_types).unwrap()
    }

    #[test]
    fn addr_width_rounds_up() {
        assert_eq!(addr_width(1), 1);
        assert_eq!(addr_width(2), 1);
        assert_eq!(addr_width(3), 2);
        assert_eq!(addr_width(16), 4);
        assert_eq!(addr_width(17), 5);
    }

    #[test]
    fn types_references_and_fields() {
        let t = table_for("circuit T :\n  module T :\n    input io : { a : UInt<8>, flip b : UInt<4>[2] }\n    node n = io.a\n    io.b[0] <= UInt<4>(0)\n    io.b[1] <= UInt<4>(0)\n");
        assert_eq!(
            t.type_of(&Expr::SubField(
                Box::new(Expr::Ref("io".into())),
                "a".into()
            ))
            .unwrap(),
            Type::UInt(Some(8))
        );
        let b0 = Expr::SubIndex(
            Box::new(Expr::SubField(Box::new(Expr::Ref("io".into())), "b".into())),
            0,
        );
        assert_eq!(t.type_of(&b0).unwrap(), Type::UInt(Some(4)));
        assert!(t.is_sink(&b0));
        assert_eq!(
            t.type_of(&Expr::Ref("n".into())).unwrap(),
            Type::UInt(Some(8))
        );
    }

    #[test]
    fn types_mem_ports() {
        let t = table_for("circuit M :\n  module M :\n    input clock : Clock\n    mem m :\n      data-type => UInt<8>\n      depth => 10\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= UInt<4>(0)\n    m.w.clk <= clock\n    m.w.en <= UInt<1>(0)\n    m.w.addr <= UInt<4>(0)\n    m.w.data <= UInt<8>(0)\n    m.w.mask <= UInt<1>(1)\n");
        let rdata = Expr::SubField(
            Box::new(Expr::SubField(Box::new(Expr::Ref("m".into())), "r".into())),
            "data".into(),
        );
        assert_eq!(t.type_of(&rdata).unwrap(), Type::UInt(Some(8)));
        let addr = Expr::SubField(
            Box::new(Expr::SubField(Box::new(Expr::Ref("m".into())), "r".into())),
            "addr".into(),
        );
        // depth 10 needs 4 address bits
        assert_eq!(t.type_of(&addr).unwrap(), Type::UInt(Some(4)));
    }

    #[test]
    fn rejects_duplicates_and_unknowns() {
        let src = "circuit D :\n  module D :\n    input a : UInt<1>\n    wire a : UInt<1>\n    a <= UInt<1>(0)\n";
        let circuit = parse(src).unwrap();
        let ports: HashMap<String, Vec<Port>> = HashMap::new();
        assert!(Symbols::build(circuit.top(), &ports).is_err());
    }
}
