//! **InlineInstances**: flattens the module hierarchy into the top module.
//!
//! Runs after LowerTypes, so every port is ground-typed and instance
//! references have the two-level form `inst.port`. Each `inst u of M`
//! becomes: one wire `u$p` per port `p` of `M`, followed by `M`'s body
//! with every local name prefixed `u$`. Parent references `u.p` become
//! `u$p`. The `$` separator cannot appear in user FIRRTL identifiers
//! produced by Chisel, so inlined names never collide with user names.
//!
//! The paper notes that module hierarchies are almost always *cyclic* as
//! module-level graphs (Section II), which is exactly why ESSENT flattens
//! the hierarchy and re-partitions the flat signal graph with its own
//! acyclic partitioner instead of coarsening by modules.

use crate::ast::*;
use crate::passes::LowerError;
use std::collections::{HashMap, HashSet};

const PASS: &str = "InlineInstances";

/// Runs the pass, producing a circuit containing only the flattened top
/// module.
///
/// # Errors
///
/// Returns an error on unknown module references or recursive
/// instantiation.
pub fn run(circuit: Circuit) -> Result<Circuit, LowerError> {
    let map: HashMap<String, Module> = circuit
        .modules
        .iter()
        .map(|m| (m.name.clone(), m.clone()))
        .collect();
    let mut done: HashMap<String, Module> = HashMap::new();
    let mut visiting = HashSet::new();
    inline_module(&circuit.name, &map, &mut done, &mut visiting)?;
    let top = done.remove(&circuit.name).expect("top was inlined");
    Ok(Circuit {
        name: circuit.name,
        modules: vec![top],
        info: circuit.info,
    })
}

fn inline_module(
    name: &str,
    map: &HashMap<String, Module>,
    done: &mut HashMap<String, Module>,
    visiting: &mut HashSet<String>,
) -> Result<(), LowerError> {
    if done.contains_key(name) {
        return Ok(());
    }
    if !visiting.insert(name.to_string()) {
        return Err(LowerError::new(
            PASS,
            format!("recursive instantiation of `{name}`"),
        ));
    }
    let module = map
        .get(name)
        .ok_or_else(|| LowerError::new(PASS, format!("unknown module `{name}`")))?
        .clone();

    // Inline children first.
    let mut child_names = Vec::new();
    collect_instances(&module.body, &mut child_names);
    for child in &child_names {
        inline_module(child, map, done, visiting)?;
    }

    let instances: HashMap<String, String> = {
        let mut m = HashMap::new();
        collect_instance_bindings(&module.body, &mut m);
        m
    };

    let mut body = Vec::new();
    splice_stmts(&module.body, &instances, done, &mut body)?;
    visiting.remove(name);
    done.insert(
        name.to_string(),
        Module {
            name: module.name,
            ports: module.ports,
            body,
            info: module.info,
        },
    );
    Ok(())
}

fn collect_instances(stmts: &[Stmt], out: &mut Vec<String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Inst { module, .. } => out.push(module.clone()),
            Stmt::When {
                then_body,
                else_body,
                ..
            } => {
                collect_instances(then_body, out);
                collect_instances(else_body, out);
            }
            _ => {}
        }
    }
}

fn collect_instance_bindings(stmts: &[Stmt], out: &mut HashMap<String, String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Inst { name, module, .. } => {
                out.insert(name.clone(), module.clone());
            }
            Stmt::When {
                then_body,
                else_body,
                ..
            } => {
                collect_instance_bindings(then_body, out);
                collect_instance_bindings(else_body, out);
            }
            _ => {}
        }
    }
}

fn splice_stmts(
    stmts: &[Stmt],
    instances: &HashMap<String, String>,
    done: &HashMap<String, Module>,
    out: &mut Vec<Stmt>,
) -> Result<(), LowerError> {
    for stmt in stmts {
        match stmt {
            Stmt::Inst { name, module, info } => {
                let child = done
                    .get(module)
                    .ok_or_else(|| LowerError::new(PASS, format!("unknown module `{module}`")))?;
                let prefix = format!("{name}$");
                // Port wires carry values across the former boundary.
                for port in &child.ports {
                    out.push(Stmt::Wire {
                        name: format!("{prefix}{}", port.name),
                        ty: port.ty.clone(),
                        info: info.clone(),
                    });
                }
                for child_stmt in &child.body {
                    out.push(rename_stmt(child_stmt, &prefix));
                }
            }
            Stmt::When {
                cond,
                then_body,
                else_body,
                info,
            } => {
                let mut then_out = Vec::new();
                splice_stmts(then_body, instances, done, &mut then_out)?;
                let mut else_out = Vec::new();
                splice_stmts(else_body, instances, done, &mut else_out)?;
                out.push(Stmt::When {
                    cond: resolve_expr(cond, instances),
                    then_body: then_out,
                    else_body: else_out,
                    info: info.clone(),
                });
            }
            other => out.push(map_stmt_exprs(other, &|e| resolve_expr(e, instances))),
        }
    }
    Ok(())
}

/// Rewrites `inst.port` references into the inlined wire names.
fn resolve_expr(expr: &Expr, instances: &HashMap<String, String>) -> Expr {
    match expr {
        Expr::SubField(base, field) => {
            if let Expr::Ref(root) = base.as_ref() {
                if instances.contains_key(root) {
                    return Expr::Ref(format!("{root}${field}"));
                }
            }
            Expr::SubField(Box::new(resolve_expr(base, instances)), field.clone())
        }
        Expr::SubIndex(base, index) => {
            Expr::SubIndex(Box::new(resolve_expr(base, instances)), *index)
        }
        Expr::SubAccess(base, index) => Expr::SubAccess(
            Box::new(resolve_expr(base, instances)),
            Box::new(resolve_expr(index, instances)),
        ),
        Expr::Mux(s, h, l) => Expr::Mux(
            Box::new(resolve_expr(s, instances)),
            Box::new(resolve_expr(h, instances)),
            Box::new(resolve_expr(l, instances)),
        ),
        Expr::ValidIf(c, v) => Expr::ValidIf(
            Box::new(resolve_expr(c, instances)),
            Box::new(resolve_expr(v, instances)),
        ),
        Expr::Prim { op, args, params } => Expr::Prim {
            op: *op,
            args: args.iter().map(|a| resolve_expr(a, instances)).collect(),
            params: params.clone(),
        },
        other => other.clone(),
    }
}

/// Applies `f` to every expression position of a statement (whens handled
/// by the caller).
fn map_stmt_exprs(stmt: &Stmt, f: &dyn Fn(&Expr) -> Expr) -> Stmt {
    match stmt {
        Stmt::Reg {
            name,
            ty,
            clock,
            reset,
            info,
        } => Stmt::Reg {
            name: name.clone(),
            ty: ty.clone(),
            clock: f(clock),
            reset: reset.as_ref().map(|(c, i)| (f(c), f(i))),
            info: info.clone(),
        },
        Stmt::Node { name, value, info } => Stmt::Node {
            name: name.clone(),
            value: f(value),
            info: info.clone(),
        },
        Stmt::Connect { loc, value, info } => Stmt::Connect {
            loc: f(loc),
            value: f(value),
            info: info.clone(),
        },
        Stmt::Invalidate { loc, info } => Stmt::Invalidate {
            loc: f(loc),
            info: info.clone(),
        },
        Stmt::Stop {
            name,
            clock,
            en,
            code,
            info,
        } => Stmt::Stop {
            name: name.clone(),
            clock: f(clock),
            en: f(en),
            code: *code,
            info: info.clone(),
        },
        Stmt::Printf {
            name,
            clock,
            en,
            fmt,
            args,
            info,
        } => Stmt::Printf {
            name: name.clone(),
            clock: f(clock),
            en: f(en),
            fmt: fmt.clone(),
            args: args.iter().map(f).collect(),
            info: info.clone(),
        },
        other => other.clone(),
    }
}

/// Prefixes every local name in an already-inlined child statement.
fn rename_stmt(stmt: &Stmt, prefix: &str) -> Stmt {
    let rename = |e: &Expr| rename_expr(e, prefix);
    match stmt {
        Stmt::Wire { name, ty, info } => Stmt::Wire {
            name: format!("{prefix}{name}"),
            ty: ty.clone(),
            info: info.clone(),
        },
        Stmt::Reg {
            name,
            ty,
            clock,
            reset,
            info,
        } => Stmt::Reg {
            name: format!("{prefix}{name}"),
            ty: ty.clone(),
            clock: rename(clock),
            reset: reset.as_ref().map(|(c, i)| (rename(c), rename(i))),
            info: info.clone(),
        },
        Stmt::Mem(decl) => {
            let mut decl = decl.clone();
            decl.name = format!("{prefix}{}", decl.name);
            Stmt::Mem(decl)
        }
        Stmt::Node { name, value, info } => Stmt::Node {
            name: format!("{prefix}{name}"),
            value: rename(value),
            info: info.clone(),
        },
        Stmt::Connect { loc, value, info } => Stmt::Connect {
            loc: rename(loc),
            value: rename(value),
            info: info.clone(),
        },
        Stmt::Invalidate { loc, info } => Stmt::Invalidate {
            loc: rename(loc),
            info: info.clone(),
        },
        Stmt::When {
            cond,
            then_body,
            else_body,
            info,
        } => Stmt::When {
            cond: rename(cond),
            then_body: then_body.iter().map(|s| rename_stmt(s, prefix)).collect(),
            else_body: else_body.iter().map(|s| rename_stmt(s, prefix)).collect(),
            info: info.clone(),
        },
        Stmt::Stop {
            name,
            clock,
            en,
            code,
            info,
        } => Stmt::Stop {
            name: format!("{prefix}{name}"),
            clock: rename(clock),
            en: rename(en),
            code: *code,
            info: info.clone(),
        },
        Stmt::Printf {
            name,
            clock,
            en,
            fmt,
            args,
            info,
        } => Stmt::Printf {
            name: format!("{prefix}{name}"),
            clock: rename(clock),
            en: rename(en),
            fmt: fmt.clone(),
            args: args.iter().map(rename).collect(),
            info: info.clone(),
        },
        Stmt::Inst { .. } => unreachable!("children are fully inlined before splicing"),
        Stmt::Skip => Stmt::Skip,
    }
}

fn rename_expr(expr: &Expr, prefix: &str) -> Expr {
    match expr {
        Expr::Ref(name) => Expr::Ref(format!("{prefix}{name}")),
        Expr::SubField(base, field) => {
            Expr::SubField(Box::new(rename_expr(base, prefix)), field.clone())
        }
        Expr::SubIndex(base, index) => Expr::SubIndex(Box::new(rename_expr(base, prefix)), *index),
        Expr::SubAccess(base, index) => Expr::SubAccess(
            Box::new(rename_expr(base, prefix)),
            Box::new(rename_expr(index, prefix)),
        ),
        Expr::Mux(s, h, l) => Expr::Mux(
            Box::new(rename_expr(s, prefix)),
            Box::new(rename_expr(h, prefix)),
            Box::new(rename_expr(l, prefix)),
        ),
        Expr::ValidIf(c, v) => Expr::ValidIf(
            Box::new(rename_expr(c, prefix)),
            Box::new(rename_expr(v, prefix)),
        ),
        Expr::Prim { op, args, params } => Expr::Prim {
            op: *op,
            args: args.iter().map(|a| rename_expr(a, prefix)).collect(),
            params: params.clone(),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::passes::lower_types;
    use crate::printer::print_circuit;

    fn lower_and_inline(src: &str) -> Circuit {
        run(lower_types::run(parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn inlines_single_level() {
        let c = lower_and_inline("circuit O :\n  module I :\n    input a : UInt<4>\n    output b : UInt<4>\n    b <= not(a)\n  module O :\n    input x : UInt<4>\n    output y : UInt<4>\n    inst u of I\n    u.a <= x\n    y <= u.b\n");
        assert_eq!(c.modules.len(), 1);
        let text = print_circuit(&c);
        assert!(text.contains("wire u$a : UInt<4>"), "{text}");
        assert!(text.contains("u$b <= not(u$a)"), "{text}");
        assert!(text.contains("u$a <= x"), "{text}");
        assert!(text.contains("y <= u$b"), "{text}");
    }

    #[test]
    fn inlines_two_levels_with_nested_prefixes() {
        let c = lower_and_inline("circuit T :\n  module Leaf :\n    input a : UInt<2>\n    output b : UInt<2>\n    b <= a\n  module Mid :\n    input a : UInt<2>\n    output b : UInt<2>\n    inst l of Leaf\n    l.a <= a\n    b <= l.b\n  module T :\n    input x : UInt<2>\n    output y : UInt<2>\n    inst m of Mid\n    m.a <= x\n    y <= m.b\n");
        let text = print_circuit(&c);
        assert!(text.contains("wire m$l$a : UInt<2>"), "{text}");
        assert!(text.contains("m$l$a <= m$a"), "{text}");
    }

    #[test]
    fn inlines_registers_and_mems_with_prefix() {
        let c = lower_and_inline("circuit O :\n  module Cnt :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<4>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    q <= r\n  module O :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<4>\n    inst c of Cnt\n    c.clock <= clock\n    c.reset <= reset\n    q <= c.q\n");
        let text = print_circuit(&c);
        assert!(text.contains("reg c$r : UInt<4>, c$clock"), "{text}");
    }

    #[test]
    fn two_instances_of_same_module_are_independent() {
        let c = lower_and_inline("circuit D :\n  module I :\n    input a : UInt<1>\n    output b : UInt<1>\n    b <= a\n  module D :\n    input x : UInt<1>\n    output y : UInt<1>\n    output z : UInt<1>\n    inst p of I\n    inst q of I\n    p.a <= x\n    q.a <= p.b\n    y <= p.b\n    z <= q.b\n");
        let text = print_circuit(&c);
        assert!(text.contains("wire p$a"), "{text}");
        assert!(text.contains("wire q$a"), "{text}");
        assert!(text.contains("q$a <= p$b"), "{text}");
    }

    #[test]
    fn instance_inside_when_keeps_guarded_connects() {
        // The child's body is unconditional (module semantics); only the
        // parent's connects stay under the when.
        let c = lower_and_inline("circuit W :\n  module I :\n    input a : UInt<1>\n    output b : UInt<1>\n    b <= a\n  module W :\n    input c : UInt<1>\n    input x : UInt<1>\n    output y : UInt<1>\n    inst u of I\n    u.a <= UInt<1>(0)\n    when c :\n      u.a <= x\n    y <= u.b\n");
        let text = print_circuit(&c);
        assert!(text.contains("when c :"), "{text}");
        assert!(text.contains("u$a <= x"), "{text}");
    }

    #[test]
    fn rejects_recursion() {
        let src = "circuit R :\n  module R :\n    input a : UInt<1>\n    output b : UInt<1>\n    inst u of R\n    u.a <= a\n    b <= u.b\n";
        let lowered = lower_types::run(parse(src).unwrap()).unwrap();
        let e = run(lowered).unwrap_err();
        assert!(e.message.contains("recursive"), "{e}");
    }
}
