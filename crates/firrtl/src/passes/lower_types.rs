//! **LowerTypes**: flattens aggregate (bundle/vector) types into ground
//! signals.
//!
//! Each aggregate declaration becomes one declaration per leaf, named by
//! joining the access path with underscores (`io.resp.data` → lowered
//! signal `io_resp_data`, `v[2]` → `v_2`). Connects between aggregates
//! expand leaf-by-leaf, honoring `flip` orientations (flipped leaves
//! connect in the reverse direction). Dynamic vector reads (`v[i]`) become
//! multiplexer chains over the lowered elements; dynamic writes become
//! per-element `when` statements (resolved later by ExpandWhens).
//!
//! Memory and instance references keep their structured two-level form
//! (`m.r.data`, `u.port`) because the netlist layer and the inliner give
//! those names special meaning; everything else becomes a flat [`Expr::Ref`].
//!
//! # Unsupported
//!
//! * aggregate-typed memories (`data-type` must be ground);
//! * `SubAccess` that is not the last element of a reference path
//!   (`v[i].f`): flatten the design or index the leaf vectors directly.

use crate::ast::*;
use crate::passes::symbols::{SymbolKind, Symbols};
use crate::passes::LowerError;
use std::collections::HashMap;

const PASS: &str = "LowerTypes";

fn err<T>(message: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError::new(PASS, message))
}

/// One element of a reference path.
#[derive(Debug, Clone, PartialEq)]
enum Elem {
    Field(String),
    Index(usize),
    Access(Expr),
}

/// Runs the pass over every module of the circuit.
pub fn run(circuit: Circuit) -> Result<Circuit, LowerError> {
    let port_types: HashMap<String, Vec<Port>> = circuit
        .modules
        .iter()
        .map(|m| (m.name.clone(), m.ports.clone()))
        .collect();
    let modules = circuit
        .modules
        .into_iter()
        .map(|m| lower_module(m, &port_types))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Circuit {
        name: circuit.name,
        modules,
        info: circuit.info,
    })
}

/// Enumerates the ground leaves of a type as (path, ground type,
/// orientation-flipped) triples.
fn leaves(ty: &Type) -> Vec<(Vec<Elem>, Type, bool)> {
    match ty {
        Type::Bundle(fields) => {
            let mut out = Vec::new();
            for f in fields {
                for (mut path, g, flip) in leaves(&f.ty) {
                    path.insert(0, Elem::Field(f.name.clone()));
                    out.push((path, g, flip ^ f.flip));
                }
            }
            out
        }
        Type::Vector(elem, n) => {
            let mut out = Vec::new();
            for k in 0..*n {
                for (mut path, g, flip) in leaves(elem) {
                    path.insert(0, Elem::Index(k));
                    out.push((path, g, flip));
                }
            }
            out
        }
        ground => vec![(Vec::new(), ground.clone(), false)],
    }
}

/// Joins a name with a static path: `io` + `[.resp, [2]]` → `io_resp_2`.
fn join_name(base: &str, path: &[Elem]) -> String {
    let mut out = base.to_string();
    for elem in path {
        match elem {
            Elem::Field(f) => {
                out.push('_');
                out.push_str(f);
            }
            Elem::Index(i) => {
                out.push('_');
                out.push_str(&i.to_string());
            }
            Elem::Access(_) => unreachable!("join_name requires a static path"),
        }
    }
    out
}

/// Appends path elements to an expression, producing the sub-reference.
fn apply_path(mut expr: Expr, path: &[Elem]) -> Expr {
    for elem in path {
        expr = match elem {
            Elem::Field(f) => Expr::SubField(Box::new(expr), f.clone()),
            Elem::Index(i) => Expr::SubIndex(Box::new(expr), *i),
            Elem::Access(e) => Expr::SubAccess(Box::new(expr), Box::new(e.clone())),
        };
    }
    expr
}

/// Splits a reference chain into its root name and path elements.
fn decompose(expr: &Expr) -> Result<(String, Vec<Elem>), LowerError> {
    match expr {
        Expr::Ref(name) => Ok((name.clone(), Vec::new())),
        Expr::SubField(base, field) => {
            let (root, mut path) = decompose(base)?;
            path.push(Elem::Field(field.clone()));
            Ok((root, path))
        }
        Expr::SubIndex(base, index) => {
            let (root, mut path) = decompose(base)?;
            path.push(Elem::Index(*index));
            Ok((root, path))
        }
        Expr::SubAccess(base, index) => {
            let (root, mut path) = decompose(base)?;
            path.push(Elem::Access((**index).clone()));
            Ok((root, path))
        }
        other => err(format!(
            "expected a reference, found `{}`",
            crate::printer::print_expr(other)
        )),
    }
}

struct Lowerer<'a> {
    symbols: &'a Symbols,
}

impl Lowerer<'_> {
    /// Lowers a ground-typed expression (aggregate references inside have
    /// been resolved to leaf names; dynamic accesses become mux chains).
    fn lower_expr(&self, expr: &Expr) -> Result<Expr, LowerError> {
        match expr {
            Expr::UIntLit { .. } | Expr::SIntLit { .. } => Ok(expr.clone()),
            Expr::Mux(sel, high, low) => Ok(Expr::Mux(
                Box::new(self.lower_expr(sel)?),
                Box::new(self.lower_expr(high)?),
                Box::new(self.lower_expr(low)?),
            )),
            Expr::ValidIf(cond, value) => Ok(Expr::ValidIf(
                Box::new(self.lower_expr(cond)?),
                Box::new(self.lower_expr(value)?),
            )),
            Expr::Prim { op, args, params } => Ok(Expr::Prim {
                op: *op,
                args: args
                    .iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<Vec<_>, _>>()?,
                params: params.clone(),
            }),
            _ => self.lower_ref(expr),
        }
    }

    /// Lowers a reference chain to a ground leaf.
    fn lower_ref(&self, expr: &Expr) -> Result<Expr, LowerError> {
        let (root, path) = decompose(expr)?;
        let symbol = self
            .symbols
            .get(&root)
            .ok_or_else(|| LowerError::new(PASS, format!("undeclared `{root}`")))?;
        match &symbol.kind {
            SymbolKind::Mem(_) => {
                // Memory port fields stay structured: m.port.field.
                if path.len() != 2 {
                    return err(format!(
                        "memory `{root}` must be accessed as {root}.port.field"
                    ));
                }
                Ok(apply_path(Expr::Ref(root), &path))
            }
            SymbolKind::Instance(_) => {
                // Instance port paths become u.<joined>: the child module's
                // LowerTypes produces exactly the joined names.
                if path.iter().any(|e| matches!(e, Elem::Access(_))) {
                    return err(format!(
                        "dynamic access into instance `{root}` ports is not supported"
                    ));
                }
                if path.is_empty() {
                    return err(format!("instance `{root}` used as a value"));
                }
                Ok(Expr::SubField(
                    Box::new(Expr::Ref(root.clone())),
                    join_name("", &path)[1..].to_string(),
                ))
            }
            _ => {
                // Ordinary local: flatten static prefix; a trailing dynamic
                // access becomes a mux chain.
                if let Some(pos) = path.iter().position(|e| matches!(e, Elem::Access(_))) {
                    if pos != path.len() - 1 {
                        return err(
                            "dynamic access must be the last element of a reference path \
                             (e.g. `v[i]`, not `v[i].f`)",
                        );
                    }
                    let static_path = &path[..pos];
                    let vec_ty = self
                        .symbols
                        .type_of(&apply_path(Expr::Ref(root.clone()), static_path))?;
                    let (elem_ty, n) = match vec_ty {
                        Type::Vector(elem, n) => (*elem, n),
                        other => return err(format!("subaccess on non-vector {other}")),
                    };
                    if !elem_ty.is_ground() {
                        return err("dynamic access requires ground-typed elements");
                    }
                    let idx = match &path[pos] {
                        Elem::Access(e) => self.lower_expr(e)?,
                        _ => unreachable!(),
                    };
                    let base = join_name(&root, static_path);
                    return Ok(build_select_chain(&base, n, &idx));
                }
                Ok(Expr::Ref(join_name(&root, &path)))
            }
        }
    }

    /// Projects an aggregate-valued expression onto one leaf path.
    fn lower_leaf(&self, expr: &Expr, path: &[Elem]) -> Result<Expr, LowerError> {
        match expr {
            Expr::Mux(sel, high, low) => Ok(Expr::Mux(
                Box::new(self.lower_expr(sel)?),
                Box::new(self.lower_leaf(high, path)?),
                Box::new(self.lower_leaf(low, path)?),
            )),
            Expr::ValidIf(cond, value) => Ok(Expr::ValidIf(
                Box::new(self.lower_expr(cond)?),
                Box::new(self.lower_leaf(value, path)?),
            )),
            _ if expr.is_reference() => self.lower_ref(&apply_path(expr.clone(), path)),
            other => err(format!(
                "cannot project `{}` onto a leaf path",
                crate::printer::print_expr(other)
            )),
        }
    }

    fn lower_stmts(&self, stmts: &[Stmt], out: &mut Vec<Stmt>) -> Result<(), LowerError> {
        for stmt in stmts {
            self.lower_stmt(stmt, out)?;
        }
        Ok(())
    }

    fn lower_stmt(&self, stmt: &Stmt, out: &mut Vec<Stmt>) -> Result<(), LowerError> {
        match stmt {
            Stmt::Wire { name, ty, info } => {
                for (path, gty, _flip) in leaves(ty) {
                    out.push(Stmt::Wire {
                        name: join_name(name, &path),
                        ty: gty,
                        info: info.clone(),
                    });
                }
            }
            Stmt::Reg {
                name,
                ty,
                clock,
                reset,
                info,
            } => {
                let clock = self.lower_expr(clock)?;
                for (path, gty, _flip) in leaves(ty) {
                    let reset = match reset {
                        Some((cond, init)) => Some((
                            self.lower_expr(cond)?,
                            self.lower_leaf_or_ground(init, &path)?,
                        )),
                        None => None,
                    };
                    out.push(Stmt::Reg {
                        name: join_name(name, &path),
                        ty: gty,
                        clock: clock.clone(),
                        reset,
                        info: info.clone(),
                    });
                }
            }
            Stmt::Mem(decl) => {
                if !decl.data_type.is_ground() {
                    return err(format!(
                        "memory `{}` has aggregate data-type {}; only ground-typed memories \
                         are supported",
                        decl.name, decl.data_type
                    ));
                }
                out.push(Stmt::Mem(decl.clone()));
            }
            Stmt::Inst { .. } => out.push(stmt.clone()),
            Stmt::Node { name, value, info } => {
                let ty = self.symbols.type_of(value)?;
                if ty.is_ground() {
                    out.push(Stmt::Node {
                        name: name.clone(),
                        value: self.lower_expr(value)?,
                        info: info.clone(),
                    });
                } else {
                    for (path, _gty, _flip) in leaves(&ty) {
                        out.push(Stmt::Node {
                            name: join_name(name, &path),
                            value: self.lower_leaf(value, &path)?,
                            info: info.clone(),
                        });
                    }
                }
            }
            Stmt::Connect { loc, value, info } => {
                let ty = self.symbols.type_of(loc)?;
                self.expand_connect(loc, value, &ty, false, info, out)?;
            }
            Stmt::Invalidate { loc, info } => {
                let ty = self.symbols.type_of(loc)?;
                for (path, _gty, flip) in leaves(&ty) {
                    if flip {
                        continue; // flipped leaves are sources of `loc`
                    }
                    let full = apply_path(loc.clone(), &path);
                    if has_access(&full) {
                        return err("cannot invalidate a dynamically-indexed location");
                    }
                    out.push(Stmt::Invalidate {
                        loc: self.lower_ref(&full)?,
                        info: info.clone(),
                    });
                }
            }
            Stmt::When {
                cond,
                then_body,
                else_body,
                info,
            } => {
                let mut then_out = Vec::new();
                self.lower_stmts(then_body, &mut then_out)?;
                let mut else_out = Vec::new();
                self.lower_stmts(else_body, &mut else_out)?;
                out.push(Stmt::When {
                    cond: self.lower_expr(cond)?,
                    then_body: then_out,
                    else_body: else_out,
                    info: info.clone(),
                });
            }
            Stmt::Stop {
                name,
                clock,
                en,
                code,
                info,
            } => out.push(Stmt::Stop {
                name: name.clone(),
                clock: self.lower_expr(clock)?,
                en: self.lower_expr(en)?,
                code: *code,
                info: info.clone(),
            }),
            Stmt::Printf {
                name,
                clock,
                en,
                fmt,
                args,
                info,
            } => out.push(Stmt::Printf {
                name: name.clone(),
                clock: self.lower_expr(clock)?,
                en: self.lower_expr(en)?,
                fmt: fmt.clone(),
                args: args
                    .iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<Vec<_>, _>>()?,
                info: info.clone(),
            }),
            Stmt::Skip => {}
        }
        Ok(())
    }

    /// Lowers a register init: project onto the leaf when the init is an
    /// aggregate reference/mux; pass through when already ground (a leaf
    /// path on a ground init means the init was a literal reused for every
    /// leaf, which FIRRTL does not allow — but a ground init with an empty
    /// path is the common case).
    fn lower_leaf_or_ground(&self, init: &Expr, path: &[Elem]) -> Result<Expr, LowerError> {
        if path.is_empty() {
            self.lower_expr(init)
        } else {
            self.lower_leaf(init, path)
        }
    }

    /// Expands a connect leaf-by-leaf, honoring flip orientation.
    fn expand_connect(
        &self,
        loc: &Expr,
        value: &Expr,
        ty: &Type,
        flipped: bool,
        info: &Info,
        out: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        match ty {
            Type::Bundle(fields) => {
                for f in fields {
                    self.expand_connect(
                        &Expr::SubField(Box::new(loc.clone()), f.name.clone()),
                        &Expr::SubField(Box::new(value.clone()), f.name.clone()),
                        &f.ty,
                        flipped ^ f.flip,
                        info,
                        out,
                    )?;
                }
                Ok(())
            }
            Type::Vector(elem, n) => {
                for k in 0..*n {
                    self.expand_connect(
                        &Expr::SubIndex(Box::new(loc.clone()), k),
                        &Expr::SubIndex(Box::new(value.clone()), k),
                        elem,
                        flipped,
                        info,
                        out,
                    )?;
                }
                Ok(())
            }
            _ => {
                let (sink, src) = if flipped { (value, loc) } else { (loc, value) };
                self.emit_ground_connect(sink, src, info, out)
            }
        }
    }

    /// Emits one ground connect; a dynamically-indexed sink becomes a
    /// per-element `when` chain.
    fn emit_ground_connect(
        &self,
        sink: &Expr,
        src: &Expr,
        info: &Info,
        out: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        let (root, path) = decompose(sink)?;
        if let Some(pos) = path.iter().position(|e| matches!(e, Elem::Access(_))) {
            if pos != path.len() - 1 {
                return err(
                    "dynamic access must be the last element of a connect target \
                     (e.g. `v[i] <= x`)",
                );
            }
            let static_path = &path[..pos];
            let vec_ty = self
                .symbols
                .type_of(&apply_path(Expr::Ref(root.clone()), static_path))?;
            let n = match vec_ty {
                Type::Vector(_, n) => n,
                other => return err(format!("subaccess write on non-vector {other}")),
            };
            let idx = match &path[pos] {
                Elem::Access(e) => self.lower_expr(e)?,
                _ => unreachable!(),
            };
            let idx_w = crate::passes::symbols::addr_width(n);
            let value = self.lower_expr(src)?;
            for k in 0..n {
                let mut p = static_path.to_vec();
                p.push(Elem::Index(k));
                let target = self.lower_ref(&apply_path(Expr::Ref(root.clone()), &p))?;
                out.push(Stmt::When {
                    cond: Expr::Prim {
                        op: PrimOp::Eq,
                        args: vec![idx.clone(), Expr::uint(k as u64, idx_w)],
                        params: vec![],
                    },
                    then_body: vec![Stmt::Connect {
                        loc: target,
                        value: value.clone(),
                        info: info.clone(),
                    }],
                    else_body: vec![],
                    info: info.clone(),
                });
            }
            Ok(())
        } else {
            out.push(Stmt::Connect {
                loc: self.lower_ref(sink)?,
                value: self.lower_expr(src)?,
                info: info.clone(),
            });
            Ok(())
        }
    }
}

fn has_access(expr: &Expr) -> bool {
    match expr {
        Expr::SubAccess(..) => true,
        Expr::SubField(base, _) | Expr::SubIndex(base, _) => has_access(base),
        _ => false,
    }
}

/// Builds the mux chain selecting `base_k` by `idx`: element 0 is tested
/// first; out-of-range indices read the last element (a don't-care in
/// well-formed designs).
fn build_select_chain(base: &str, n: usize, idx: &Expr) -> Expr {
    let idx_w = crate::passes::symbols::addr_width(n);
    let mut acc = Expr::Ref(format!("{base}_{}", n - 1));
    for k in (0..n - 1).rev() {
        acc = Expr::Mux(
            Box::new(Expr::Prim {
                op: PrimOp::Eq,
                args: vec![idx.clone(), Expr::uint(k as u64, idx_w)],
                params: vec![],
            }),
            Box::new(Expr::Ref(format!("{base}_{k}"))),
            Box::new(acc),
        );
    }
    acc
}

fn lower_module(
    module: Module,
    port_types: &HashMap<String, Vec<Port>>,
) -> Result<Module, LowerError> {
    let symbols = Symbols::build(&module, port_types)?;
    let lowerer = Lowerer { symbols: &symbols };

    let mut ports = Vec::new();
    for port in &module.ports {
        for (path, gty, flip) in leaves(&port.ty) {
            ports.push(Port {
                name: join_name(&port.name, &path),
                direction: if flip {
                    port.direction.flip()
                } else {
                    port.direction
                },
                ty: gty,
                info: port.info.clone(),
            });
        }
    }

    let mut body = Vec::new();
    lowerer.lower_stmts(&module.body, &mut body)?;
    Ok(Module {
        name: module.name,
        ports,
        body,
        info: module.info,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print_circuit;

    fn lower_src(src: &str) -> Circuit {
        run(parse(src).unwrap()).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
    }

    #[test]
    fn flattens_bundle_ports_with_flips() {
        let c = lower_src("circuit B :\n  module B :\n    input io : { a : UInt<8>, flip b : UInt<4> }\n    io.b <= bits(io.a, 3, 0)\n");
        let m = c.top();
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.ports[0].name, "io_a");
        assert_eq!(m.ports[0].direction, Direction::Input);
        assert_eq!(m.ports[1].name, "io_b");
        assert_eq!(m.ports[1].direction, Direction::Output);
        match &m.body[0] {
            Stmt::Connect { loc, .. } => assert_eq!(loc, &Expr::Ref("io_b".into())),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bulk_connect_expands_with_orientation() {
        let src = "circuit O :\n  module C :\n    input io : { req : UInt<8>, flip resp : UInt<8> }\n    io.resp <= io.req\n  module O :\n    input x : UInt<8>\n    output y : UInt<8>\n    wire w : { req : UInt<8>, flip resp : UInt<8> }\n    inst c of C\n    c.io <= w\n    w.req <= x\n    y <= w.resp\n";
        let c = lower_src(src);
        let text = print_circuit(&c);
        // Bulk connect splits into a sink-direction and a source-direction
        // leaf connect.
        assert!(text.contains("c.io_req <= w_req"), "{text}");
        assert!(text.contains("w_resp <= c.io_resp"), "{text}");
    }

    #[test]
    fn vector_reads_become_mux_chains() {
        let c = lower_src("circuit V :\n  module V :\n    input v : UInt<8>[4]\n    input i : UInt<2>\n    output o : UInt<8>\n    o <= v[i]\n");
        let text = print_circuit(&c);
        assert!(text.contains("mux(eq(i, UInt<2>(\"h0\")), v_0"), "{text}");
        assert!(text.contains("v_3"), "{text}");
    }

    #[test]
    fn vector_writes_become_when_chains() {
        let c = lower_src("circuit V :\n  module V :\n    input i : UInt<2>\n    input x : UInt<8>\n    output v : UInt<8>[4]\n    v[0] <= UInt<8>(0)\n    v[1] <= UInt<8>(0)\n    v[2] <= UInt<8>(0)\n    v[3] <= UInt<8>(0)\n    v[i] <= x\n");
        let text = print_circuit(&c);
        assert!(text.contains("when eq(i, UInt<2>(\"h2\")) :"), "{text}");
        assert!(text.contains("v_2 <= x"), "{text}");
    }

    #[test]
    fn aggregate_registers_split_per_leaf() {
        let c = lower_src("circuit R :\n  module R :\n    input clock : Clock\n    input reset : UInt<1>\n    output o : UInt<4>\n    wire init : { a : UInt<4>, b : UInt<4> }\n    init.a <= UInt<4>(1)\n    init.b <= UInt<4>(2)\n    reg r : { a : UInt<4>, b : UInt<4> }, clock with : (reset => (reset, init))\n    r.a <= r.b\n    r.b <= r.a\n    o <= r.a\n");
        let regs: Vec<_> = c
            .top()
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Reg { name, reset, .. } => Some((name.clone(), reset.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].0, "r_a");
        match &regs[0].1 {
            Some((_, init)) => assert_eq!(init, &Expr::Ref("init_a".into())),
            None => panic!("missing reset"),
        }
    }

    #[test]
    fn aggregate_nodes_split_per_leaf() {
        let c = lower_src("circuit N :\n  module N :\n    input s : UInt<1>\n    input a : { x : UInt<4>, y : UInt<4> }\n    input b : { x : UInt<4>, y : UInt<4> }\n    output o : UInt<4>\n    node m = mux(s, a, b)\n    o <= m.x\n");
        let text = print_circuit(&c);
        assert!(text.contains("node m_x = mux(s, a_x, b_x)"), "{text}");
        assert!(text.contains("node m_y = mux(s, a_y, b_y)"), "{text}");
        assert!(text.contains("o <= m_x"), "{text}");
    }

    #[test]
    fn invalidate_expands_to_sink_leaves_only() {
        let c = lower_src("circuit I :\n  module I :\n    output io : { o : UInt<4>, flip i : UInt<4> }\n    io is invalid\n    io.o <= io.i\n");
        let invalidated: Vec<_> = c
            .top()
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Invalidate { loc, .. } => Some(loc.clone()),
                _ => None,
            })
            .collect();
        // Only io_o is a sink of this module; io_i (flipped under output)
        // is an input.
        assert_eq!(invalidated, vec![Expr::Ref("io_o".into())]);
    }

    #[test]
    fn mem_access_stays_structured() {
        let c = lower_src("circuit M :\n  module M :\n    input clock : Clock\n    input a : UInt<4>\n    output o : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 16\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= a\n    m.w.clk <= clock\n    m.w.en <= UInt<1>(0)\n    m.w.addr <= a\n    m.w.data <= UInt<8>(0)\n    m.w.mask <= UInt<1>(1)\n    o <= m.r.data\n");
        let text = print_circuit(&c);
        assert!(text.contains("m.r.addr <= a"), "{text}");
        assert!(text.contains("o <= m.r.data"), "{text}");
    }

    #[test]
    fn rejects_mid_path_dynamic_access() {
        let src = "circuit X :\n  module X :\n    input v : { f : UInt<4> }[2]\n    input i : UInt<1>\n    output o : UInt<4>\n    o <= v[i].f\n";
        let e = run(parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("dynamic access"), "{e}");
    }

    #[test]
    fn rejects_aggregate_mem() {
        let src = "circuit M :\n  module M :\n    mem m :\n      data-type => { a : UInt<4> }\n      depth => 4\n      read-latency => 0\n      write-latency => 1\n      reader => r\n";
        let e = run(parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("aggregate data-type"), "{e}");
    }

    #[test]
    fn nested_vector_of_bundle_flattens_fully() {
        let c = lower_src("circuit Z :\n  module Z :\n    input v : { a : UInt<2>, flip b : UInt<2> }[2]\n    v[0].b <= v[0].a\n    v[1].b <= v[1].a\n");
        let names: Vec<_> = c.top().ports.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names, vec!["v_0_a", "v_0_b", "v_1_a", "v_1_b"]);
        assert_eq!(c.top().ports[1].direction, Direction::Output);
    }
}
