//! A FIRRTL frontend: lexer, parser, AST, pretty-printer, and lowering
//! passes.
//!
//! [FIRRTL] is the intermediate representation for hardware used by Chisel
//! and related hardware construction languages. ESSENT — the simulator
//! generator this workspace reproduces — consumes FIRRTL, so this crate
//! provides everything needed to go from FIRRTL source text to the flat,
//! ground-typed, single-module form (`LoFIRRTL`-like) that
//! `essent-netlist` turns into a design graph.
//!
//! # Pipeline
//!
//! 1. [`parse`] — text to [`ast::Circuit`].
//! 2. [`passes::lower`] — runs, in order:
//!    * **LowerTypes**: bundles and vectors become ground-typed scalars
//!      (`io.out` → `io_out`, `v[2]` → `v_2`), dynamic `SubAccess` reads
//!      become mux trees and writes become per-element conditional
//!      connects;
//!    * **InlineInstances**: the module hierarchy is flattened into the
//!      top module with dotted-prefix names;
//!    * **ExpandWhens**: `when`/`else` blocks with last-connect semantics
//!      become explicit multiplexers, leaving exactly one driver per sink.
//! 3. The result is a [`ast::Circuit`] with a single module containing only
//!    ports, registers, memories, nodes, connects, stops, and printfs —
//!    ready for `essent-netlist`.
//!
//! # Supported dialect
//!
//! FIRRTL 1.x as emitted by Chisel-era toolchains, excluding: `extmodule`,
//! analog/`attach`, CHIRRTL (`cmem`/`smem`/`mport`), asynchronous reset
//! semantics (parsed, treated as synchronous), and width *inference*
//! (declarations must carry widths; expression widths are computed by the
//! spec rules in `essent-netlist`). Memories must have read latency 0 and
//! write latency 1.
//!
//! [FIRRTL]: https://github.com/chipsalliance/firrtl
//!
//! # Examples
//!
//! ```
//! let src = "circuit Pass :\n  module Pass :\n    input a : UInt<8>\n    output b : UInt<8>\n    b <= a\n";
//! let circuit = essent_firrtl::parse(src)?;
//! let flat = essent_firrtl::passes::lower(circuit)?;
//! assert_eq!(flat.modules.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod printer;

pub use ast::{Circuit, Direction, Expr, Field, MemDecl, Module, Port, PrimOp, Stmt, Type};
pub use parser::{parse, ParseError};
pub use printer::{print_circuit, print_expr};
